"""Section 4.1: genotype-phenotype correlation and latent analysis.

Builds a genome space from a MAP over samples whose metadata carries a
phenotype (karyotype = cancer/normal, with planted cancer-specific
binding), then:

* correlates every gene's binding profile with the phenotype (Welch
  t-test + Benjamini-Hochberg), recovering the planted cancer genes;
* runs latent semantic analysis, whose first factors separate the
  cancer-specific regulatory program from the shared one.

Run with:  python examples/phenotype_correlation.py
"""

import numpy as np

from repro.analysis import (
    GenomeSpace,
    benjamini_hochberg,
    correlate_phenotype,
    latent_semantic_analysis,
    phenotype_vector,
)
from repro.gdm import Dataset, Metadata, RegionSchema, STR, Sample, region
from repro.gmql import Count, map_regions
from repro.simulate import generator

N_GENES = 40
N_CANCER_GENES = 8
N_SAMPLES = 16


def build_world():
    rng = generator(99, "phenotype")
    genes = Dataset(
        "GENES",
        RegionSchema.of(("name", STR)),
        [
            Sample(
                1,
                [
                    region("chr1", i * 10_000, i * 10_000 + 2_000, "+",
                           f"gene{i:02d}")
                    for i in range(N_GENES)
                ],
                Metadata({"annType": "gene"}),
            )
        ],
    )
    cancer_genes = {f"gene{i:02d}" for i in range(N_CANCER_GENES)}
    experiments = Dataset("EXPS", RegionSchema.empty())
    for sample_id in range(1, N_SAMPLES + 1):
        is_cancer = sample_id <= N_SAMPLES // 2
        regions = []
        for i in range(N_GENES):
            name = f"gene{i:02d}"
            # Cancer-specific genes bind only in cancer samples (clean
            # signal); the rest bind everywhere with dropout noise.
            if name in cancer_genes:
                active = is_cancer
            else:
                active = rng.random() < 0.7
            if active:
                center = i * 10_000 + int(rng.integers(0, 2_000))
                regions.append(region("chr1", center, center + 200))
        experiments.add_sample(
            Sample(
                sample_id,
                regions,
                Metadata({"karyotype": "cancer" if is_cancer else "normal"}),
            )
        )
    return genes, experiments, cancer_genes


def main() -> None:
    genes, experiments, cancer_genes = build_world()
    mapped = map_regions(genes, experiments, {"hits": (Count(), None)})
    space = GenomeSpace.from_map_result(mapped, label_attribute="name")
    phenotype = phenotype_vector(mapped, "right.karyotype")
    print(f"Genome space: {space.n_regions} genes x "
          f"{space.n_experiments} samples "
          f"({phenotype.count('cancer')} cancer / "
          f"{phenotype.count('normal')} normal)")
    print()

    associations = correlate_phenotype(space, phenotype)
    survivors = benjamini_hochberg(associations, alpha=0.05)
    called = {a.region for a in survivors}
    print(f"Phenotype-associated genes after FDR control: {len(called)}")
    hits = called & cancer_genes
    print(f"  planted cancer genes recovered: {len(hits)}/{len(cancer_genes)}")
    print("  top associations:")
    for a in survivors[:5]:
        print(f"    {a.region}: effect {a.effect:+.2f}, p = {a.p_value:.2e}")
    print()

    model = latent_semantic_analysis(space, k=2)
    print(f"Latent semantic analysis (k=2): "
          f"{model.explained_variance:.0%} variance explained")
    # Factor 0 captures global activity; factor 1 is the contrast factor
    # separating the cancer-specific program.
    top_contrast = model.top_regions(1, top=N_CANCER_GENES)
    recovered = sum(1 for name, __ in top_contrast if name in cancer_genes)
    print(f"  top {N_CANCER_GENES} genes on the contrast factor: "
          f"{recovered}/{N_CANCER_GENES} are the planted cancer genes")
    for name, loading in top_contrast[:4]:
        print(f"    {name}: loading {loading:+.2f}")
    print()
    print("The factor dominated by the planted cancer program shows how")
    print("'advanced latent semantic analysis and topic modelling' (sec 4.1)")
    print("surface regulatory programs directly from genome spaces.")


if __name__ == "__main__":
    main()
