"""Section 4.4: federated query processing (experiment E9).

Three organisations each own part of the data: a consortium node hosts
the big ENCODE-like experiment repository, an annotation provider hosts
the UCSC-like annotations, and a clinical site wants the mapped result.
The example runs the same analysis under data shipping and query shipping
and prints the traffic bill of each, plus the compile-time estimates the
planner used.

Run with:  python examples/federated_query.py
"""

from repro.federation import FederatedClient, FederationNode, Network
from repro.repository import Catalog
from repro.simulate import EncodeRepository, GenomeLayout

PROGRAM = """
PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
MAPPED = MAP(peak_count AS COUNT) PROMS CHIP;
BEST = ORDER(order; top: 3) MAPPED;
MATERIALIZE BEST;
"""


def main() -> None:
    layout = GenomeLayout.generate(seed=8, n_genes=150, n_enhancers=60)
    repo = EncodeRepository.generate(seed=8, n_samples=40,
                                     peaks_per_sample_mean=300, layout=layout)
    network = Network()

    consortium = Catalog("consortium")
    consortium.register(repo.encode)
    provider = Catalog("provider")
    provider.register(repo.annotations)

    nodes = [
        FederationNode("consortium", consortium, network),
        FederationNode("provider", provider, network),
    ]
    client = FederatedClient(nodes, network, name="clinic")

    print("Federation layout:")
    for name, node_name in sorted(client.discover().items()):
        size = client.nodes[node_name].catalog.get(name).estimated_size_bytes()
        print(f"  {name:<12} at {node_name:<11} ({size / 1024:.0f} KiB)")
    print()

    estimates = client.estimate_strategies(PROGRAM)
    print("Compile-time estimates (protocol item 2 of section 4.4):")
    for strategy, size in sorted(estimates.items()):
        print(f"  {strategy:<15} ~{size / 1024:.0f} KiB moved")
    print()

    for runner in (client.run_data_shipping, client.run_query_shipping):
        outcome = runner(PROGRAM)
        print(f"{outcome.strategy}:")
        print(f"  executed at:   {outcome.executing_node}")
        print(f"  bytes moved:   {outcome.bytes_moved:,}")
        print(f"  messages:      {outcome.message_count}")
        print()

    chosen = client.run(PROGRAM)
    print(f"Planner's choice: {chosen.strategy} "
          f"(moved {chosen.bytes_moved:,} bytes)")
    print()
    print(f"Total simulated network time: "
          f"{network.log.simulated_seconds:.2f} s over "
          f"{network.log.message_count()} messages")


if __name__ == "__main__":
    main()
