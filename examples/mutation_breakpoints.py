"""Section 3, problem 1: mutations, breakpoints and gene dis-regulation
(experiment E6).

The paper's hypothesis chain: oncogene induction dis-regulates genes ->
their loci become fragile -> DNA breaks accumulate -> mutations occur at
the breaks.  This example plants that chain, then runs the GMQL pipeline
the paper sketches ("GMQL can extract differentially dis-regulated genes,
intersect them with regions where string breaks occur, and then count the
mutations") and reports the measured enrichment.

Run with:  python examples/mutation_breakpoints.py
"""

from repro.simulate import CancerScenario, fragility_analysis


def main() -> None:
    scenario = CancerScenario.generate(seed=2026)
    print("Planted world:")
    print(f"  genes:                {len(scenario.layout.genes)}")
    print(f"  dis-regulated genes:  {len(scenario.disregulated)}")
    print(f"  breakpoints:          {scenario.breakpoints.region_count()}")
    print(f"  mutations:            {scenario.mutations.region_count()}")
    print()

    analysis = fragility_analysis(scenario)
    called = analysis["called_disregulated"]
    truth = scenario.disregulated
    true_positive = len(called & truth)
    print("Step 1 -- differentially dis-regulated genes (fold >= 2):")
    print(f"  called {len(called)}; {true_positive} match the planted set "
          f"(precision {true_positive / len(called):.2f}, "
          f"recall {true_positive / len(truth):.2f})")

    target = analysis["target_genes"]
    print()
    print("Step 2 -- intersect with string-break regions:")
    print(f"  {len(target)} dis-regulated genes carry breakpoints")

    print()
    print("Step 3 -- count mutations (MAP) and compare densities:")
    per_gene = analysis["per_gene"]
    target_mutations = sum(per_gene[g]["mutations"] for g in target)
    rest = set(per_gene) - target
    rest_mutations = sum(per_gene[g]["mutations"] for g in rest)
    print(f"  mutations at target genes:      {target_mutations}")
    print(f"  mutations at remaining genes:   {rest_mutations}")
    print(f"  per-kb enrichment ratio:        "
          f"{analysis['mutation_enrichment']:.1f}x")
    print()
    print("Replication timing check (fragile loci replicate late):")
    timings = {
        (r.left, r.chrom): r.values[0]
        for r in scenario.replication[1].regions
    }
    fragile_like = [
        per_gene[g] for g in target
    ]
    print(f"  target genes found: {len(fragile_like)}; the planted model ties"
          f" their loci to delayed replication domains")


if __name__ == "__main__":
    main()
