"""Figure 4: MAP -> genome space -> gene network (experiment E5).

Maps a batch of ChIP-seq experiments onto gene bodies, builds the genome
space (regions x experiments), converts it into a co-activity gene
network, and reports hubs, communities and interaction strengths --
"regulatory gene activities typically depend on multiple interacting
genes" (paper, section 4.1).

Run with:  python examples/gene_network.py
"""

from repro.analysis import (
    GenomeSpace,
    genome_space_to_network,
    hub_genes,
    interaction_strengths,
    kmeans_regions,
    network_communities,
    network_summary,
)
from repro.gmql import run
from repro.simulate import EncodeRepository, GenomeLayout


def main() -> None:
    layout = GenomeLayout.generate(seed=5, n_genes=120, n_enhancers=60)
    repo = EncodeRepository.generate(
        seed=5, n_samples=30, peaks_per_sample_mean=500, layout=layout,
        promoter_binding_fraction=0.6,
    )
    results = run(
        """
        GENES = SELECT(annType == 'promoter') ANNOTATIONS;
        CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
        SPACE = MAP(hits AS COUNT) GENES CHIP;
        MATERIALIZE SPACE;
        """,
        {"ANNOTATIONS": repo.annotations, "ENCODE": repo.encode},
    )
    mapped = results["SPACE"]
    print(f"MAP produced {len(mapped)} samples x "
          f"{len(mapped[1])} gene regions")

    space = GenomeSpace.from_map_result(
        mapped, label_attribute="name", column_attribute="right.antibody"
    ).filter_active_regions(min_total=1)
    print(f"Genome space: {space.n_regions} active genes x "
          f"{space.n_experiments} experiments")
    print()
    print("Genome space sample (first 5 genes x first 6 experiments):")
    header = "  " + " ".join(f"{c[:7]:>8}" for c in space.column_labels[:6])
    print(f"{'gene':<10}{header}")
    for label, row in list(zip(space.region_labels, space.matrix))[:5]:
        cells = " ".join(f"{int(v):>8}" for v in row[:6])
        print(f"{label:<10}  {cells}")

    # Edge = co-active in at least ~85% of the experiments: high enough
    # that only genes sharing most binding profiles connect.
    threshold = max(3, int(space.n_experiments * 0.85))
    graph = genome_space_to_network(space, method="coactivity",
                                    threshold=threshold)
    summary = network_summary(graph)
    print()
    print(f"Gene network (co-active in >= {threshold} experiments): "
          f"{summary['nodes']} nodes, {summary['edges']} edges, "
          f"{summary['components']} components")
    print()
    print("Strongest gene-gene interactions:")
    for a, b, weight in interaction_strengths(graph)[:5]:
        print(f"  {a} -- {b}   strength {weight:.0f}")
    print()
    print("Hub genes (weighted degree):")
    for gene, degree in hub_genes(graph, top=5):
        print(f"  {gene}: {degree:.0f}")
    communities = network_communities(graph)
    big = [c for c in communities if len(c) > 1]
    print()
    print(f"Communities with >1 gene: {len(big)} "
          f"(largest has {max((len(c) for c in big), default=0)} genes)")

    clustering = kmeans_regions(space, k=4, seed=1)
    sizes = sorted((len(v) for v in clustering["clusters"].values()),
                   reverse=True)
    print(f"k-means region clustering (k=4) cluster sizes: {sizes}")


if __name__ == "__main__":
    main()
