"""Quickstart: GDM in five minutes, then the paper's three-operation query.

Builds the exact PEAKS dataset of the paper's Figure 2, renders it in the
figure's two-table layout, then generates a small ENCODE-like repository
and runs the Section 2 query verbatim::

    PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
    PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
    RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;

Run with:  python examples/quickstart.py
"""

from repro.gdm import (
    Dataset,
    FLOAT,
    Metadata,
    RegionSchema,
    Sample,
    region,
    render_tables,
)
from repro.gmql import run
from repro.simulate import EncodeRepository


def build_figure2_dataset() -> Dataset:
    """The PEAKS dataset of Figure 2: 2 samples, 9 regions, 7 metadata."""
    schema = RegionSchema.of(("p_value", FLOAT))
    sample1 = Sample(
        1,
        [
            region("chr1", 100, 350, "+", 1e-5),
            region("chr1", 400, 750, "-", 2e-4),
            region("chr1", 900, 1200, "+", 3e-6),
            region("chr2", 150, 400, "+", 5e-5),
            region("chr2", 600, 900, "-", 7e-4),
        ],
        Metadata({"cell": "HeLa-S3", "karyotype": "cancer",
                  "antibody": "CTCF", "dataType": "ChipSeq"}),
    )
    sample2 = Sample(
        2,
        [
            region("chr1", 120, 380, "*", 4e-5),
            region("chr1", 500, 800, "*", 1e-3),
            region("chr2", 200, 450, "*", 2e-5),
            region("chr2", 700, 950, "*", 9e-4),
        ],
        Metadata({"cell": "GM12878", "sex": "female", "dataType": "ChipSeq"}),
    )
    return Dataset("PEAKS", schema, [sample1, sample2])


def main() -> None:
    print("=" * 72)
    print("1. The Genomic Data Model (paper, Figure 2)")
    print("=" * 72)
    peaks = build_figure2_dataset()
    print(render_tables(peaks))

    print()
    print("=" * 72)
    print("2. The Section 2 query over a synthetic ENCODE repository")
    print("=" * 72)
    repo = EncodeRepository.generate(seed=7, n_samples=24,
                                     peaks_per_sample_mean=150)
    program = """
    PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
    PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
    RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
    MATERIALIZE RESULT;
    """
    results = run(program, {"ANNOTATIONS": repo.annotations,
                            "ENCODE": repo.encode})
    result = results["RESULT"]
    print(f"ENCODE samples:          {len(repo.encode)}")
    print(f"ChIP-seq samples kept:   {repo.chipseq_sample_count()}")
    print(f"Promoter regions:        {repo.promoter_count()}")
    print(f"RESULT samples:          {len(result)}"
          f"  (= promoter samples x ChIP samples)")
    print(f"RESULT regions:          {result.region_count()}")
    print(f"RESULT schema:           {list(result.schema.names)}")
    sample = result[1]
    busiest = sorted(sample.regions, key=lambda r: -r.values[-1])[:5]
    print("Top promoters of the first output sample by peak_count:")
    for r in busiest:
        print(f"  {r.values[0]:<10} {r.chrom}:{r.left}-{r.right}"
              f"  peak_count={r.values[-1]}")

    print()
    print("Provenance of RESULT sample 1:")
    from repro.gmql import explain as explain_provenance

    print(explain_provenance(result, 1))

    print()
    print("Genome-browser export (bedGraph) of the first sample's counts:")
    from repro.formats import dataset_to_bedgraph
    from repro.gdm import Dataset as _Dataset

    one = _Dataset("RESULT_S1", result.schema, [sample], validate=False)
    for line in dataset_to_bedgraph(one, "peak_count").splitlines()[:5]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
