"""Figure 1: the full primary -> secondary -> tertiary chain (experiment E1).

Simulates a genome with planted transcription-factor binding sites at
gene promoters, sequences ChIP-enriched reads (primary), aligns them and
calls peaks and SNVs (secondary), then loads everything into GDM and runs
a GMQL MAP of peaks onto promoters (tertiary) -- showing one data model
mediating the entire chain.

Run with:  python examples/ngs_pipeline.py
"""

from repro.ngs import run_pipeline


def main() -> None:
    result = run_pipeline(
        seed=3,
        n_reads=15_000,
        n_binding_sites=15,
        n_genes=24,
        call_snvs=True,
    )
    print("Phase timings (paper, Figure 1):")
    for phase in ("primary", "secondary", "tertiary"):
        print(f"  {phase:<10} {result.timings[phase]:.2f} s")
    print()
    print("Primary analysis:")
    print(f"  reads simulated:     {len(result.reads):,}")
    print()
    print("Secondary analysis:")
    print(f"  alignment rate:      {result.metrics['alignment_rate']:.1%}")
    print(f"  alignment accuracy:  {result.metrics['alignment_accuracy']:.1%}")
    print(f"  peaks called:        {result.peaks.region_count()}")
    print(f"  binding-site recall: {result.metrics['peak_recall']:.1%}")
    variants = result.metrics.get("variants", {})
    if variants:
        print(f"  SNVs called:         {variants['called']} "
              f"(recall {variants['recall']:.1%}, "
              f"precision {variants['precision']:.1%})")
    print()
    print("Tertiary analysis (GMQL MAP of peaks onto promoters):")
    print(f"  bound promoters with peaks:   "
          f"{result.metrics['tertiary_bound_promoters_hit']}")
    print(f"  unbound promoters with peaks: "
          f"{result.metrics['tertiary_unbound_promoters_hit']}")
    mapped = result.mapped[1]
    print()
    print("  First promoters of the RESULT sample:")
    for region in mapped.regions[:6]:
        print(f"    {region.values[0]:<9} {region.chrom}:{region.left}-"
              f"{region.right}  peak_count={region.values[-1]}")


if __name__ == "__main__":
    main()
