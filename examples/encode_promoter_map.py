"""The Section 2 headline query at scale (experiment E3).

The paper reports: 2,423 ENCODE ChIP-seq samples, 83,899,526 peaks mapped
to 131,780 promoters, producing 29 GB of results.  This example runs the
query on a scaled synthetic repository and extrapolates the measured
result size to paper scale -- the cardinality arithmetic of MAP makes
that extrapolation exact (output regions = promoters x ChIP samples).

Run with:  python examples/encode_promoter_map.py
"""

import time

from repro.gmql import run
from repro.simulate import (
    EncodeRepository,
    GenomeLayout,
    PAPER_PEAKS,
    PAPER_PROMOTERS,
    PAPER_RESULT_BYTES,
    PAPER_SAMPLES,
)

PROGRAM = """
PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
MATERIALIZE RESULT;
"""


def run_at_scale(n_samples: int, n_genes: int, peaks_mean: float,
                 engine: str) -> dict:
    layout = GenomeLayout.generate(seed=42, n_genes=n_genes,
                                   n_enhancers=n_genes // 2)
    repo = EncodeRepository.generate(
        seed=42, n_samples=n_samples, peaks_per_sample_mean=peaks_mean,
        layout=layout,
    )
    started = time.perf_counter()
    result = run(PROGRAM, {"ANNOTATIONS": repo.annotations,
                           "ENCODE": repo.encode}, engine=engine)["RESULT"]
    elapsed = time.perf_counter() - started
    chip_samples = repo.chipseq_sample_count()
    measured_bytes = result.estimated_size_bytes()
    # Result size scales as (#promoters x #chip samples); extrapolate.
    paper_cells = PAPER_PROMOTERS * PAPER_SAMPLES
    our_cells = repo.promoter_count() * chip_samples
    extrapolated = measured_bytes * (paper_cells / our_cells)
    return {
        "encode_samples": n_samples,
        "chip_samples": chip_samples,
        "peaks": repo.chipseq_peak_count(),
        "promoters": repo.promoter_count(),
        "result_samples": len(result),
        "result_regions": result.region_count(),
        "result_bytes": measured_bytes,
        "extrapolated_gb": extrapolated / 1024**3,
        "seconds": elapsed,
    }


def main() -> None:
    print("Paper (Section 2):")
    print(f"  {PAPER_SAMPLES:,} ChIP samples; {PAPER_PEAKS:,} peaks; "
          f"{PAPER_PROMOTERS:,} promoters; "
          f"{PAPER_RESULT_BYTES / 1024**3:.0f} GB result")
    print()
    header = (f"{'samples':>8} {'chip':>6} {'peaks':>9} {'promoters':>9} "
              f"{'out_regions':>11} {'MB':>8} {'paper-scale GB':>14} "
              f"{'seconds':>8}")
    print(header)
    print("-" * len(header))
    for n_samples, n_genes, peaks_mean in (
        (12, 200, 150),
        (24, 400, 300),
        (48, 800, 600),
    ):
        row = run_at_scale(n_samples, n_genes, peaks_mean, engine="columnar")
        print(
            f"{row['encode_samples']:>8} {row['chip_samples']:>6} "
            f"{row['peaks']:>9,} {row['promoters']:>9,} "
            f"{row['result_regions']:>11,} "
            f"{row['result_bytes'] / 1024**2:>8.2f} "
            f"{row['extrapolated_gb']:>14.1f} {row['seconds']:>8.2f}"
        )
    print()
    print("The extrapolated result size should sit near the paper's 29 GB;")
    print("the shape (output samples = promoter samples x ChIP samples,")
    print("output regions = promoters per sample) holds exactly at any scale.")


if __name__ == "__main__":
    main()
