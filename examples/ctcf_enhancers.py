"""Figure 3: CTCF loops, enhancer marks and gene regulation (experiment E4).

Plants a genome where some gene-enhancer pairs sit inside CTCF loops,
generates H3K27ac/H3K4me1/H3K4me3 mark samples, renders a Figure-3-style
track view of one loop, then runs the loop-aware GMQL analysis and
compares it against a distance-only baseline on precision/recall.

Run with:  python examples/ctcf_enhancers.py
"""

from repro.gdm import Dataset, Metadata, RegionSchema, STR, Sample, render_tracks
from repro.search import precision_recall
from repro.simulate import (
    CtcfScenario,
    distance_baseline_pairs,
    extract_candidate_pairs,
)


def show_one_loop(scenario: CtcfScenario) -> None:
    """Render the marks inside the first regulatory loop, Figure-3 style."""
    loops = [r for s in scenario.loops for r in s.regions
             if str(r.values[0]).startswith("loop")]
    if not loops:
        return
    loop = loops[0]
    window = Dataset("VIEW", scenario.marks.schema)
    for sample in scenario.marks:
        antibody = sample.meta.first("antibody")
        window.add_sample(
            Sample(sample.id, sample.regions,
                   Metadata({"name": antibody})),
            validate=False,
        )
    loop_track = Dataset(
        "LOOP",
        RegionSchema.of(("name", STR)),
        [Sample(1, [loop], Metadata({"name": "CTCF loop"}))],
    )
    print(f"One regulatory CTCF loop ({loop.chrom}:{loop.left:,}-"
          f"{loop.right:,}):")
    print(render_tracks(loop_track, loop.chrom, loop.left - 2_000,
                        loop.right + 2_000))
    print(render_tracks(window, loop.chrom, loop.left - 2_000,
                        loop.right + 2_000).split("\n", 2)[2])


def main() -> None:
    scenario = CtcfScenario.generate(seed=11, n_loops=60)
    print(f"Planted regulatory gene-enhancer pairs: "
          f"{len(scenario.true_pairs)}")
    print()
    show_one_loop(scenario)
    print()

    candidates = extract_candidate_pairs(scenario)
    baseline = distance_baseline_pairs(scenario)
    truth = scenario.true_pairs

    loop_metrics = precision_recall(list(candidates), truth)
    base_metrics = precision_recall(list(baseline), truth)
    print(f"{'method':<26} {'pairs':>6} {'precision':>10} {'recall':>8} "
          f"{'F1':>6}")
    print("-" * 60)
    print(f"{'loop-aware GMQL query':<26} {len(candidates):>6} "
          f"{loop_metrics['precision']:>10.2f} {loop_metrics['recall']:>8.2f} "
          f"{loop_metrics['f1']:>6.2f}")
    print(f"{'distance-only baseline':<26} {len(baseline):>6} "
          f"{base_metrics['precision']:>10.2f} {base_metrics['recall']:>8.2f} "
          f"{base_metrics['f1']:>6.2f}")
    print()
    print("Enclosing enhancers and promoters within CTCF loops (the paper's")
    print("'spatial condition [that] may favor the enhancer-to-gene")
    print("relationship') buys precision that distance alone cannot.")


if __name__ == "__main__":
    main()
