"""Section 4.3: integrated access to curated repositories.

Stands up a repository service over an ENCODE-like catalog and exercises
the four improvements the paper promises: compatible metadata (shared
index + ontology annotations), custom queries, private user uploads, and
deferred chunked retrieval from bounded staging.

Run with:  python examples/repository_service.py
"""

from repro.gdm import Dataset, Metadata, RegionSchema, Sample, region
from repro.repository import Catalog, CustomQuery, RepositoryService
from repro.simulate import EncodeRepository


def main() -> None:
    repo = EncodeRepository.generate(seed=77, n_samples=16,
                                     peaks_per_sample_mean=120)
    catalog = Catalog("curated")
    catalog.register(repo.encode)
    catalog.register(repo.annotations)
    service = RepositoryService(catalog, staging_budget_bytes=2_000_000)

    print("Public datasets:")
    for summary in service.list_datasets():
        print(f"  {summary['name']:<12} {summary['samples']:>3} samples, "
              f"{summary['regions']:>6} regions")
    print()

    print("Ontology annotations make metadata compatible across datasets:")
    hela_terms = service.annotations["ENCODE"].get(1, set())
    interesting = sorted(t for t in hela_terms if t.startswith(("C:", "A:")))
    print(f"  sample ENCODE[1] closure: {interesting[:6]} ...")
    print()

    service.register_custom_query(
        CustomQuery(
            "promoter-map",
            """
            PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
            CHIP = SELECT(dataType == 'ChipSeq'; cell == '{cell}') ENCODE;
            OUT = MAP(peak_count AS COUNT) PROMS CHIP;
            MATERIALIZE OUT;
            """,
            description="map one cell line's ChIP peaks onto promoters",
            parameters=("cell",),
        )
    )
    print("Custom queries on offer:")
    for name, description, parameters in service.custom_queries():
        print(f"  {name}({', '.join(parameters)}) -- {description}")
    print()

    cell = next(
        sample.meta.first("cell")
        for sample in repo.encode
        if sample.meta.first("dataType") == "ChipSeq"
    )
    outputs = service.run_custom_query("promoter-map", {"cell": cell})
    ticket = outputs["OUT"]["ticket"]
    print(f"promoter-map(cell={cell}): "
          f"{outputs['OUT']['summary']['samples']} "
          f"sample(s) staged under ticket {ticket}")
    chunk0 = service.retrieve_chunk(ticket, 0)
    print(f"  first chunk retrieved: {len(chunk0)} bytes "
          f"(client-paced deferred retrieval)")
    print()

    session = service.open_session()
    mine = Dataset(
        "MY_REGIONS",
        RegionSchema.empty(),
        [Sample(1, [region("chr1", 0, 2_000_000)],
                Metadata({"owner": "clinic-42"}))],
    )
    service.upload_sample_data(session, mine)
    private = service.run_personal_query(
        "HITS = MAP() MY_REGIONS ENCODE; MATERIALIZE HITS;", session=session
    )
    print(f"Private query over an uploaded sample: "
          f"{private['HITS']['summary']['samples']} result sample(s)")
    listed = {s["name"] for s in service.list_datasets()}
    print(f"  'MY_REGIONS' publicly listed? {'MY_REGIONS' in listed}")
    service.close_session(session)
    print("  session closed; private data discarded")


if __name__ == "__main__":
    main()
