"""Section 4.5: the Internet of Genomes (experiment E12).

Six research centres publish genomic datasets under the simple publishing
protocol; a third-party search service crawls them (with a politeness
budget and a mirror budget), indexes the metadata, and answers queries
with snippets and mirror indications; a user locates a dataset and
downloads it asynchronously from its owning host.

Run with:  python examples/internet_of_genomes.py
"""

from repro.federation import Network
from repro.search import Crawler, GenomeHost, GenomeSearchService
from repro.simulate import EncodeRepository, GenomeLayout


def main() -> None:
    network = Network()
    layout = GenomeLayout.generate(seed=21, n_genes=80, n_enhancers=40)
    hosts = []
    for index in range(6):
        host = GenomeHost(f"center{index}", network)
        repo = EncodeRepository.generate(
            seed=100 + index, n_samples=4, peaks_per_sample_mean=60,
            layout=layout, name=f"EXPERIMENTS_{index}",
        )
        host.publish(repo.encode)
        host.publish(repo.annotations.with_name(f"ANNOTATIONS_{index}"))
        hosts.append(host)

    service = GenomeSearchService()
    crawler = Crawler(hosts, network, mirror_budget_bytes=60_000)

    print("Crawling with a budget of 3 hosts per pass:")
    for crawl_pass in range(1, 4):
        report = crawler.crawl(service, max_hosts=3)
        print(f"  pass {crawl_pass}: visited {report.hosts_visited} hosts, "
              f"indexed {report.links_new_or_updated} new links, "
              f"mirrored {report.datasets_mirrored}, "
              f"coverage {service.coverage(hosts):.0%}")
    print()

    print("Search: 'CTCF HeLa ChipSeq'")
    for result in service.search("CTCF HeLa ChipSeq", limit=5):
        mirrored = "mirrored" if result["mirrored"] else "remote"
        print(f"  [{result['score']:.2f}] {result['dataset']} @ "
              f"{result['host']} ({mirrored})")
        print(f"       {result['snippet']}")
    print()

    name = "EXPERIMENTS_2"
    owners = service.locate(name)
    print(f"Locating {name}: published by {owners}")
    owner = next(h for h in hosts if h.name == owners[0])
    dataset = owner.download(name, "user")
    print(f"Asynchronous download complete: {len(dataset)} samples, "
          f"{dataset.region_count()} regions")
    print()

    # Staleness: a host republishes; the next crawl refreshes the index.
    repo = EncodeRepository.generate(seed=999, n_samples=5,
                                     peaks_per_sample_mean=60, layout=layout,
                                     name="EXPERIMENTS_0")
    hosts[0].update(repo.encode)
    print(f"After an update at center0: freshness "
          f"{service.freshness(hosts):.0%}")
    crawler.crawl(service)
    print(f"After one more crawl pass:  freshness "
          f"{service.freshness(hosts):.0%}")
    print()
    print(f"Total crawl+download traffic: "
          f"{network.log.bytes_total / 1024:.0f} KiB in "
          f"{network.log.message_count()} transfers")


if __name__ == "__main__":
    main()
