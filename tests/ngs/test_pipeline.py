"""Tests for the NGS substrate: genome, reads, aligner, callers, pipeline."""

import pytest

from repro.errors import SimulationError
from repro.ngs import (
    Aligner,
    ReferenceGenome,
    alignments_to_dataset,
    call_peaks,
    call_variants,
    decode_sequence,
    encode_sequence,
    peak_recall,
    run_pipeline,
    simulate_reads,
    variant_accuracy,
)


@pytest.fixture(scope="module")
def genome():
    return ReferenceGenome.generate(seed=1, chromosome_sizes={"chr1": 30_000,
                                                              "chr2": 30_000})


class TestGenome:
    def test_sizes(self, genome):
        assert genome.size("chr1") == 30_000
        assert genome.total_size() == 60_000

    def test_deterministic(self):
        a = ReferenceGenome.generate(seed=2, chromosome_sizes={"chr1": 1_000})
        b = ReferenceGenome.generate(seed=2, chromosome_sizes={"chr1": 1_000})
        assert a.fetch("chr1", 0, 100) == b.fetch("chr1", 0, 100)

    def test_encode_decode_round_trip(self):
        assert decode_sequence(encode_sequence("ACGTAC")) == "ACGTAC"

    def test_bad_base_rejected(self):
        with pytest.raises(SimulationError):
            encode_sequence("ACGN")

    def test_variants_applied(self, genome):
        original = genome.fetch("chr1", 100, 101)
        alt = "A" if original != "A" else "C"
        donor = genome.with_variants([("chr1", 100, alt)])
        assert donor.fetch("chr1", 100, 101) == alt
        assert genome.fetch("chr1", 100, 101) == original  # copy, not mutation


class TestReads:
    def test_read_count_and_length(self, genome):
        reads = simulate_reads(genome, n_reads=50, read_length=40, seed=3)
        assert len(reads) == 50
        assert all(len(r) == 40 for r in reads)

    def test_error_free_reads_match_reference(self, genome):
        reads = simulate_reads(genome, n_reads=20, error_rate=0.0, seed=4)
        for read in reads:
            reference = genome.fetch(
                read.true_chrom, read.true_position,
                read.true_position + len(read),
            )
            if read.strand == "+":
                assert read.sequence == reference
            else:
                complement = {"A": "T", "C": "G", "G": "C", "T": "A"}
                rc = "".join(complement[b] for b in reversed(reference))
                assert read.sequence == rc

    def test_enrichment_concentrates_reads(self, genome):
        sites = [("chr1", 15_000)]
        enriched = simulate_reads(
            genome, n_reads=400, seed=5, binding_sites=sites, enrichment=0.8
        )
        near = sum(
            1
            for r in enriched
            if r.true_chrom == "chr1" and abs(r.true_position - 15_000) < 1_000
        )
        assert near > 100

    def test_bad_parameters(self, genome):
        with pytest.raises(SimulationError):
            simulate_reads(genome, n_reads=1, read_length=5)
        with pytest.raises(SimulationError):
            simulate_reads(genome, n_reads=1, enrichment=2.0)


class TestAligner:
    @pytest.fixture(scope="class")
    def aligner(self, genome):
        return Aligner(genome)

    def test_error_free_reads_align_perfectly(self, genome, aligner):
        reads = simulate_reads(genome, n_reads=30, error_rate=0.0, seed=6)
        alignments = aligner.align(reads)
        assert len(alignments) == 30
        assert all(a.correct for a in alignments)
        assert all(a.mismatches == 0 for a in alignments)

    def test_noisy_reads_mostly_align(self, genome, aligner):
        reads = simulate_reads(genome, n_reads=60, error_rate=0.02, seed=7)
        alignments = aligner.align(reads)
        assert len(alignments) > 50
        accuracy = sum(1 for a in alignments if a.correct) / len(alignments)
        assert accuracy > 0.95

    def test_garbage_read_unmapped(self, genome, aligner):
        from repro.ngs import Read

        garbage = Read("junk", "ACGT" * 13, "chr1", 0, "+")
        # A specific random 52-mer is essentially never in a 60 kb genome
        # with fewer than 10% mismatches at a seeded position.
        result = aligner.align_read(garbage)
        assert result is None or not result.correct

    def test_alignments_dataset_schema(self, genome, aligner):
        reads = simulate_reads(genome, n_reads=10, error_rate=0.0, seed=8)
        dataset = alignments_to_dataset(aligner.align(reads))
        assert "mapq" in dataset.schema
        assert dataset.region_count() == 10


class TestCallers:
    def test_peaks_found_at_binding_sites(self, genome):
        sites = [("chr1", 8_000), ("chr1", 20_000), ("chr2", 12_000)]
        reads = simulate_reads(
            genome, n_reads=3_000, seed=9, binding_sites=sites, enrichment=0.7
        )
        aligner = Aligner(genome)
        aligned = alignments_to_dataset(aligner.align(reads))
        peaks = call_peaks(aligned, genome_size=genome.total_size())
        assert peaks.region_count() >= 3
        assert peak_recall(peaks, sites) == 1.0
        assert "p_value" in peaks.schema

    def test_variants_recovered(self, genome):
        planted = [("chr1", 5_000, "A"), ("chr2", 7_500, "T")]
        planted = [
            (chrom, pos, alt)
            for chrom, pos, alt in planted
            if genome.fetch(chrom, pos, pos + 1) != alt
        ] or [("chr1", 5_000, "C" if genome.fetch("chr1", 5_000, 5_001) != "C"
               else "G")]
        donor = genome.with_variants(planted)
        reads = simulate_reads(donor, n_reads=6_000, error_rate=0.005, seed=10)
        aligner = Aligner(genome)
        aligned = alignments_to_dataset(aligner.align(reads))
        variants = call_variants(aligned, genome)
        accuracy = variant_accuracy(variants, planted)
        assert accuracy["recall"] == 1.0
        assert accuracy["precision"] > 0.5


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_pipeline(seed=2, n_reads=6_000, call_snvs=False)

    def test_phases_timed(self, result):
        assert set(result.timings) == {"primary", "secondary", "tertiary"}
        assert all(t > 0 for t in result.timings.values())

    def test_alignment_quality(self, result):
        assert result.metrics["alignment_rate"] > 0.9
        assert result.metrics["alignment_accuracy"] > 0.95

    def test_peak_recall(self, result):
        assert result.metrics["peak_recall"] > 0.7

    def test_tertiary_signal(self, result):
        """Bound promoters accumulate peaks; unbound mostly do not."""
        assert result.metrics["tertiary_bound_promoters_hit"] > 0
        assert (
            result.metrics["tertiary_bound_promoters_hit"]
            > result.metrics["tertiary_unbound_promoters_hit"]
        )

    def test_mapped_dataset_shape(self, result):
        assert result.mapped.schema.names[-1] == "peak_count"
        assert len(result.mapped) == 1
