"""Tests for metadata search, feature search and retrieval evaluation."""

import pytest

from repro.errors import SearchError
from repro.gdm import Dataset, Metadata, RegionSchema, Sample, region
from repro.search import (
    MetadataSearch,
    RegionSearch,
    average_precision,
    precision_at_k,
    precision_recall,
    tf_idf_scores,
)


@pytest.fixture()
def corpus():
    """A labelled corpus: cancer ChIP samples vs normal RNA samples."""
    ds = Dataset("CORPUS", RegionSchema.empty())
    entries = [
        (1, {"cell": "HeLa-S3", "dataType": "ChipSeq", "antibody": "CTCF",
             "karyotype": "cancer"}),
        (2, {"cell": "K562", "dataType": "ChipSeq", "antibody": "CTCF"}),
        (3, {"cell": "GM12878", "dataType": "RnaSeq", "karyotype": "normal"}),
        (4, {"cell": "H1-hESC", "dataType": "RnaSeq"}),
        (5, {"cell": "HeLa-S3", "dataType": "DnaseSeq"}),
    ]
    for sample_id, meta in entries:
        regions = [region("chr1", i * 100, i * 100 + 50) for i in range(sample_id)]
        ds.add_sample(Sample(sample_id, regions, Metadata(meta)))
    return ds


class TestMetadataSearch:
    @pytest.fixture()
    def search(self, corpus):
        s = MetadataSearch()
        s.add_dataset(corpus)
        return s

    def test_keyword_and_semantics(self, search):
        hits = search.keyword_search("chipseq", "ctcf")
        assert {key[1] for key in hits} == {1, 2}

    def test_keyword_no_match(self, search):
        assert search.keyword_search("nonexistent") == []

    def test_free_text_ranking(self, search):
        ranked = search.free_text_search("HeLa CTCF cancer")
        assert ranked[0][1] == 1  # matches all three tokens

    def test_free_text_limit(self, search):
        assert len(search.free_text_search("hela", limit=1)) == 1

    def test_ontology_expansion_finds_specialisations(self, search):
        """Searching 'cancer' must find HeLa/K562 samples even where the
        literal word is absent (sample 2 has no karyotype pair)."""
        plain = {k[1] for k in search.free_text_search("cancer")}
        expanded = {k[1] for k in search.ontology_search("cancer")}
        assert 2 not in plain
        assert {1, 2} <= expanded

    def test_snippet_mentions_matching_pairs(self, search):
        snippet = search.snippet(("CORPUS", 1), "CTCF")
        assert "antibody=CTCF" in snippet

    def test_precision_recall_evaluation(self, search):
        relevant = {("CORPUS", 1), ("CORPUS", 2)}
        retrieved = search.keyword_search("chipseq")
        metrics = precision_recall(retrieved, relevant)
        assert metrics == {"precision": 1.0, "recall": 1.0, "f1": 1.0}


class TestRegionSearch:
    @pytest.fixture()
    def search(self, corpus):
        s = RegionSearch()
        s.add_dataset(corpus)
        return s

    def test_search_by_region_count(self, search):
        results = search.search({"region_count": 5}, limit=1)
        assert results[0][1] == 5  # sample 5 has five regions

    def test_multi_feature_targets(self, search):
        results = search.search({"region_count": 1, "mean_length": 50})
        assert results[0][1] == 1

    def test_candidates_restrict_computation(self, search):
        search.search({"region_count": 3},
                      candidates=[("CORPUS", 1), ("CORPUS", 2)])
        stats = search.cache_stats()
        assert stats["computations"] == 2  # only candidates were evaluated

    def test_cache_avoids_recomputation(self, search):
        search.search({"region_count": 3})
        first = search.cache_stats()["computations"]
        search.search({"region_count": 4})
        assert search.cache_stats()["computations"] == first  # all cached

    def test_precompute_indexes_features(self, corpus):
        s = RegionSearch()
        s.add_dataset(corpus, precompute=("region_count",))
        assert s.cache_stats()["cached_values"] == len(corpus)

    def test_custom_feature(self, search):
        search.register_feature(
            "total_span", lambda sample: float(sum(r.length for r in sample))
        )
        results = search.search({"total_span": 250.0}, limit=1)
        assert results[0][1] == 5

    def test_unknown_feature_raises(self, search):
        with pytest.raises(SearchError):
            search.search({"frobnication": 1.0})

    def test_empty_targets_rejected(self, search):
        with pytest.raises(SearchError):
            search.search({})


class TestEvaluation:
    def test_precision_recall_basics(self):
        metrics = precision_recall(["a", "b", "c"], {"a", "d"})
        assert metrics["precision"] == pytest.approx(1 / 3)
        assert metrics["recall"] == pytest.approx(1 / 2)

    def test_empty_cases(self):
        assert precision_recall([], {"a"})["precision"] == 0.0
        assert precision_recall(["a"], set())["recall"] == 0.0

    def test_average_precision_order_sensitive(self):
        good = average_precision(["a", "b", "x"], {"a", "b"})
        bad = average_precision(["x", "a", "b"], {"a", "b"})
        assert good > bad

    def test_precision_at_k(self):
        assert precision_at_k(["a", "x", "b"], {"a", "b"}, 2) == 0.5

    def test_tf_idf_prefers_rare_terms(self):
        documents = {
            1: ["common", "rare"],
            2: ["common", "common"],
            3: ["common"],
        }
        ranked = tf_idf_scores(["rare"], documents)
        assert ranked[0][0] == 1


class TestRankRegions:
    def test_rank_by_length(self, corpus):
        service = RegionSearch()
        ranked = service.rank_regions(corpus, lambda r: r.length, top=3)
        assert len(ranked) == 3
        lengths = [value for __, __r, value in ranked]
        assert lengths == sorted(lengths, reverse=True)

    def test_ascending_order(self, corpus):
        service = RegionSearch()
        ranked = service.rank_regions(
            corpus, lambda r: r.left, descending=False
        )
        lefts = [value for __, __r, value in ranked]
        assert lefts == sorted(lefts)
