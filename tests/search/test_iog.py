"""Tests for the Internet of Genomes: publish, crawl, index, search."""

import pytest

from repro.errors import SearchError
from repro.federation import Network
from repro.gdm import Dataset, Metadata, RegionSchema, Sample, region
from repro.search import Crawler, GenomeHost, GenomeSearchService


def make_dataset(name, cell, n_regions=5):
    ds = Dataset(name, RegionSchema.empty())
    ds.add_sample(
        Sample(
            1,
            [region("chr1", i * 100, i * 100 + 60) for i in range(n_regions)],
            Metadata({"cell": cell, "dataType": "ChipSeq"}),
        )
    )
    return ds


@pytest.fixture()
def world():
    network = Network()
    hosts = []
    for index in range(4):
        host = GenomeHost(f"center{index}", network)
        host.publish(make_dataset(f"DS{index}A", "HeLa-S3"))
        host.publish(make_dataset(f"DS{index}B", "K562"))
        hosts.append(host)
    service = GenomeSearchService()
    crawler = Crawler(hosts, network, mirror_budget_bytes=2_000)
    return hosts, service, crawler, network


class TestPublishing:
    def test_publish_builds_link(self, world):
        hosts, *_ = world
        link = hosts[0].publish(make_dataset("NEW", "HepG2"))
        assert link.url == "genome://center0/NEW"
        assert ("cell", "HepG2") in link.metadata_pairs

    def test_private_links_invisible_to_crawlers(self, world):
        hosts, service, crawler, __ = world
        hosts[0].publish(make_dataset("SECRET", "HeLa-S3"), public=False)
        crawler.crawl(service)
        assert "genome://center0/SECRET" not in service.links

    def test_download_accounted(self, world):
        hosts, __, __c, network = world
        before = network.log.bytes_total
        hosts[0].download("DS0A", "user")
        assert network.log.bytes_total > before

    def test_unknown_download(self, world):
        hosts, *_ = world
        with pytest.raises(SearchError):
            hosts[0].download("NOPE", "user")


class TestCrawling:
    def test_full_crawl_covers_everything(self, world):
        hosts, service, crawler, __ = world
        report = crawler.crawl(service)
        assert report.hosts_visited == 4
        assert report.links_new_or_updated == 8
        assert service.coverage(hosts) == 1.0

    def test_budgeted_crawl_partial_coverage(self, world):
        hosts, service, crawler, __ = world
        crawler.crawl(service, max_hosts=2)
        assert 0 < service.coverage(hosts) < 1.0
        crawler.crawl(service, max_hosts=2)
        assert service.coverage(hosts) == 1.0  # LRU order reaches the rest

    def test_recrawl_sees_updates(self, world):
        hosts, service, crawler, __ = world
        crawler.crawl(service)
        hosts[0].update(make_dataset("DS0A", "HeLa-S3", n_regions=9))
        assert service.freshness(hosts) < 1.0
        report = crawler.crawl(service)
        assert report.links_new_or_updated == 1
        assert service.freshness(hosts) == 1.0

    def test_mirroring_respects_budget(self, world):
        hosts, service, crawler, __ = world
        crawler.crawl(service)
        assert service.mirrored_bytes() <= crawler.mirror_budget_bytes
        assert len(service.mirrors) >= 1


class TestCrawlReportAccounting:
    """Per-host accounting has one source of truth: host_outcomes."""

    def test_counts_derive_from_outcomes(self, world):
        hosts, service, crawler, __ = world
        report = crawler.crawl(service)
        assert report.hosts_planned == len(report.host_outcomes) == 4
        assert report.hosts_visited + report.hosts_failed == report.hosts_planned
        assert report.retries == 0
        assert report.failed_hosts() == []

    def test_offline_host_consistent_with_budgeted_pass(self, world):
        hosts, service, crawler, __ = world
        hosts[0].offline = True
        report = crawler.crawl(service, max_hosts=2)
        assert report.hosts_planned == 2            # bounded by the budget
        assert report.hosts_visited + report.hosts_failed == 2
        assert report.failed_hosts() == ["center0"]
        outcome = next(o for o in report.host_outcomes if not o.ok)
        assert outcome.reason == "SearchError"
        assert outcome.attempts == 1                # offline is not retried

    def test_coverage_denominator_unmoved_by_failures(self, world):
        """A failed host must not inflate (or deflate) coverage."""
        hosts, service, crawler, __ = world
        hosts[1].offline = True
        crawler.crawl(service)
        # 3 of 4 hosts indexed, 2 public links each.
        assert service.coverage(hosts) == pytest.approx(6 / 8)
        hosts[1].offline = False
        crawler.crawl(service)
        assert service.coverage(hosts) == 1.0

    def test_failed_host_not_marked_crawled(self, world):
        hosts, service, crawler, __ = world
        hosts[2].offline = True
        crawler.crawl(service)
        assert "center2" not in service.last_crawled
        hosts[2].offline = False
        report = crawler.crawl(service)     # retried first, LRU order
        assert report.host_outcomes[0].host == "center2"


class TestSearchService:
    def test_search_with_snippets_and_mirror_flag(self, world):
        hosts, service, crawler, __ = world
        crawler.crawl(service)
        results = service.search("HeLa")
        assert results
        top = results[0]
        assert "cell=HeLa-S3" in top["snippet"]
        assert isinstance(top["mirrored"], bool)
        assert top["host"].startswith("center")

    def test_locate_datasets_across_hosts(self, world):
        hosts, service, crawler, __ = world
        hosts[1].publish(make_dataset("DS0A", "HeLa-S3"))  # same name elsewhere
        crawler.crawl(service)
        assert service.locate("DS0A") == ["center0", "center1"]

    def test_async_user_download_via_locate(self, world):
        hosts, service, crawler, __ = world
        crawler.crawl(service)
        (owner,) = service.locate("DS2B")
        host = next(h for h in hosts if h.name == owner)
        dataset = host.download("DS2B", "user")
        assert dataset.name == "DS2B"

    def test_search_before_crawl_is_empty(self, world):
        __, service, *_ = world
        assert service.search("HeLa") == []


class TestMirrorFeatureSearch:
    def test_feature_search_over_mirrors(self, world):
        hosts, service, crawler, __ = world
        crawler.crawl(service)
        assert service.mirrors  # budget allowed some mirroring
        results = service.feature_search({"region_count": 5}, limit=3)
        assert results
        assert {"url", "dataset", "sample_id"} <= set(results[0])
        assert results[0]["url"] in service.mirrors

    def test_unprecomputed_feature_rejected(self, world):
        hosts, service, crawler, __ = world
        crawler.crawl(service)
        with pytest.raises(SearchError, match="not precomputed"):
            service.feature_search({"max_length": 10})
