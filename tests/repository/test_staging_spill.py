"""Staging with a persistent store root: spill files, honest accounting."""

import pytest

from repro.errors import RepositoryError
from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region
from repro.repository import StagingArea
from repro.store.persist import reset_residency_ledger, set_store_root


@pytest.fixture(autouse=True)
def isolated_store_state():
    set_store_root(None)
    reset_residency_ledger(None)
    yield
    set_store_root(None)
    reset_residency_ledger(None)


@pytest.fixture()
def peaks():
    schema = RegionSchema.of(("p_value", FLOAT))
    return Dataset(
        "PEAKS",
        schema,
        [
            Sample(1, [region("chr1", 0, 100, "*", 1e-5)],
                   Metadata({"cell": "HeLa-S3", "dataType": "ChipSeq"})),
            Sample(2, [region("chr1", 200, 300, "*", 1e-3)],
                   Metadata({"cell": "K562", "dataType": "ChipSeq"})),
        ],
    )


class TestSpilledStaging:
    def test_spilled_result_serves_identical_bytes(self, peaks, tmp_path):
        memory = StagingArea(budget_bytes=100_000, chunk_bytes=64)
        expected = memory.retrieve_all(memory.stage(peaks))

        spilled = StagingArea(
            budget_bytes=100_000, chunk_bytes=64, spill_dir=str(tmp_path)
        )
        ticket = spilled.stage(peaks)
        assert spilled.retrieve_all(ticket) == expected
        assert spilled.retrieve_metadata(ticket) + spilled.retrieve_regions(
            ticket
        ) == expected

    def test_spilled_results_charge_no_budget(self, peaks, tmp_path):
        staging = StagingArea(
            budget_bytes=100_000, chunk_bytes=64, spill_dir=str(tmp_path)
        )
        ticket = staging.stage(peaks)
        assert staging.used_bytes() == 0
        assert staging.mapped_bytes() > 0
        assert len(staging.retrieve_all(ticket)) == staging.mapped_bytes()

    def test_small_budget_stages_repository_scale_results(
        self, peaks, tmp_path
    ):
        # In-memory this result would be refused outright; spilled, a
        # tiny-budget host can stage it.
        with pytest.raises(RepositoryError):
            StagingArea(budget_bytes=10).stage(peaks)
        staging = StagingArea(budget_bytes=10, spill_dir=str(tmp_path))
        ticket = staging.stage(peaks)
        assert staging.chunk_count(ticket) >= 1

    def test_release_closes_map_and_frees_accounting(self, peaks, tmp_path):
        staging = StagingArea(
            budget_bytes=100_000, spill_dir=str(tmp_path)
        )
        ticket = staging.stage(peaks)
        assert staging.mapped_bytes() > 0
        staging.release(ticket)
        assert staging.mapped_bytes() == 0
        assert staging.used_bytes() == 0
        with pytest.raises(RepositoryError):
            staging.retrieve_all(ticket)

    def test_spill_file_is_content_addressed_and_reused(
        self, peaks, tmp_path
    ):
        staging = StagingArea(
            budget_bytes=100_000, spill_dir=str(tmp_path)
        )
        staging.stage(peaks)
        files = sorted(p.name for p in tmp_path.iterdir())
        staging.stage(peaks)   # identical content -> same file
        assert sorted(p.name for p in tmp_path.iterdir()) == files
        assert len(files) == 1
        assert files[0] == f"{peaks.store().digest()}.staged"

    def test_spill_dir_defaults_under_store_root(self, peaks, tmp_path):
        set_store_root(str(tmp_path))
        staging = StagingArea(budget_bytes=100_000)
        assert staging.spill_dir == f"{tmp_path}/staging"
        ticket = staging.stage(peaks)
        assert staging.used_bytes() == 0
        assert (tmp_path / "staging").is_dir()
        assert staging.retrieve_all(ticket)

    def test_no_root_stays_in_memory(self, peaks):
        staging = StagingArea(budget_bytes=100_000)
        assert staging.spill_dir is None
        ticket = staging.stage(peaks)
        assert staging.mapped_bytes() == 0
        assert staging.used_bytes() > 0
        staging.release(ticket)
        assert staging.used_bytes() == 0
