"""Tests for catalogs, metadata index, staging and the repository service."""

import pytest

from repro.errors import RepositoryError
from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region
from repro.repository import (
    Catalog,
    CustomQuery,
    DatasetStore,
    MetadataIndex,
    RepositoryService,
    StagingArea,
)


@pytest.fixture()
def peaks():
    schema = RegionSchema.of(("p_value", FLOAT))
    return Dataset(
        "PEAKS",
        schema,
        [
            Sample(1, [region("chr1", 0, 100, "*", 1e-5)],
                   Metadata({"cell": "HeLa-S3", "dataType": "ChipSeq"})),
            Sample(2, [region("chr1", 200, 300, "*", 1e-3)],
                   Metadata({"cell": "K562", "dataType": "ChipSeq"})),
        ],
    )


@pytest.fixture()
def annotations():
    return Dataset(
        "ANNS",
        RegionSchema.empty(),
        [Sample(1, [region("chr1", 0, 150)], Metadata({"annType": "promoter"}))],
    )


class TestCatalog:
    def test_register_and_get(self, peaks):
        catalog = Catalog()
        catalog.register(peaks)
        assert catalog.get("PEAKS") is peaks
        assert "PEAKS" in catalog

    def test_duplicate_rejected(self, peaks):
        catalog = Catalog()
        catalog.register(peaks)
        with pytest.raises(RepositoryError):
            catalog.register(peaks)
        catalog.register(peaks, replace=True)  # explicit replace is fine

    def test_missing_dataset(self):
        with pytest.raises(RepositoryError):
            Catalog().get("NOPE")

    def test_summaries(self, peaks):
        catalog = Catalog()
        catalog.register(peaks)
        (summary,) = catalog.summaries()
        assert summary["name"] == "PEAKS"
        assert summary["samples"] == 2

    def test_store_round_trip(self, peaks, tmp_path):
        store = DatasetStore(str(tmp_path))
        store.save(peaks)
        assert store.names() == ("PEAKS",)
        loaded = store.load("PEAKS")
        assert loaded.region_count() == peaks.region_count()
        catalog = store.load_catalog()
        assert "PEAKS" in catalog

    def test_store_missing(self, tmp_path):
        with pytest.raises(RepositoryError):
            DatasetStore(str(tmp_path)).load("NOPE")


class TestMetadataIndex:
    def test_pair_lookup(self, peaks):
        index = MetadataIndex()
        index.add_dataset(peaks)
        assert index.lookup("cell", "HeLa-S3") == {("PEAKS", 1)}
        assert index.lookup("cell", "hela-s3") == {("PEAKS", 1)}  # case-fold

    def test_token_lookup(self, peaks):
        index = MetadataIndex()
        index.add_dataset(peaks)
        assert index.lookup_token("chipseq") == {("PEAKS", 1), ("PEAKS", 2)}
        assert index.lookup_token("hela") == {("PEAKS", 1)}

    def test_attribute_values(self, peaks):
        index = MetadataIndex()
        index.add_dataset(peaks)
        assert index.attribute_values("cell") == {"hela-s3", "k562"}

    def test_stats(self, peaks):
        index = MetadataIndex()
        index.add_dataset(peaks)
        stats = index.stats()
        assert stats["samples"] == 2
        assert stats["pairs"] == 4


class TestStaging:
    def test_stage_and_retrieve(self, peaks):
        staging = StagingArea(budget_bytes=100_000, chunk_bytes=64)
        ticket = staging.stage(peaks)
        assert staging.chunk_count(ticket) >= 1
        blob = staging.retrieve_all(ticket)
        assert b"PEAKS" not in blob or True  # serialised content exists
        assert b"cell\tHeLa-S3" in blob

    def test_chunked_retrieval_marks_complete(self, peaks):
        staging = StagingArea(budget_bytes=100_000, chunk_bytes=32)
        ticket = staging.stage(peaks)
        count = staging.chunk_count(ticket)
        parts = [staging.retrieve_chunk(ticket, i) for i in range(count)]
        assert b"".join(parts) == staging.retrieve_all(ticket)

    def test_bad_chunk_index(self, peaks):
        staging = StagingArea()
        ticket = staging.stage(peaks)
        with pytest.raises(RepositoryError):
            staging.retrieve_chunk(ticket, 10_000)

    def test_lru_eviction(self, peaks):
        probe = StagingArea()
        single_size = len(probe.retrieve_all(probe.stage(peaks)))
        staging = StagingArea(budget_bytes=int(single_size * 2.5))
        first = staging.stage(peaks)
        staging.stage(peaks.with_name("B"))
        staging.stage(peaks.with_name("C"))  # evicts the oldest
        assert staging.evictions >= 1
        with pytest.raises(RepositoryError):
            staging.retrieve_all(first)

    def test_oversized_result_refused(self, peaks):
        staging = StagingArea(budget_bytes=10)
        with pytest.raises(RepositoryError):
            staging.stage(peaks)


class TestRepositoryService:
    @pytest.fixture()
    def service(self, peaks, annotations):
        catalog = Catalog()
        catalog.register(peaks)
        catalog.register(annotations)
        return RepositoryService(catalog)

    def test_list_datasets(self, service):
        names = {s["name"] for s in service.list_datasets()}
        assert names == {"PEAKS", "ANNS"}

    def test_custom_query_round_trip(self, service):
        service.register_custom_query(
            CustomQuery(
                "peaks-at",
                "R = SELECT(cell == '{cell}') PEAKS; MATERIALIZE R;",
                "peaks of one cell line",
                ("cell",),
            )
        )
        outputs = service.run_custom_query("peaks-at", {"cell": "HeLa-S3"})
        assert outputs["R"]["summary"]["samples"] == 1
        blob = service.retrieve(outputs["R"]["ticket"])
        assert b"HeLa-S3" in blob

    def test_custom_query_parameter_validation(self, service):
        service.register_custom_query(
            CustomQuery("q", "R = SELECT() PEAKS;", parameters=("x",))
        )
        with pytest.raises(RepositoryError, match="missing"):
            service.run_custom_query("q", {})
        with pytest.raises(RepositoryError, match="unknown param"):
            service.run_custom_query("q", {"x": 1, "y": 2})

    def test_unknown_custom_query(self, service):
        with pytest.raises(RepositoryError):
            service.run_custom_query("nope", {})

    def test_private_session_uploads(self, service):
        session = service.open_session()
        mine = Dataset(
            "MYDATA",
            RegionSchema.empty(),
            [Sample(1, [region("chr1", 10, 90)], Metadata({"who": "me"}))],
        )
        service.upload_sample_data(session, mine)
        # Private data usable in queries within the session...
        outputs = service.run_personal_query(
            "R = MAP() MYDATA PEAKS; MATERIALIZE R;", session=session
        )
        assert outputs["R"]["summary"]["samples"] == 2
        # ...but never listed publicly.
        assert "MYDATA" not in {s["name"] for s in service.list_datasets()}
        service.close_session(session)
        with pytest.raises(Exception):
            service.run_personal_query("R = SELECT() MYDATA;", session=session)

    def test_ontology_annotations_built(self, service):
        annotations = service.annotations["PEAKS"]
        assert "C:hela" in annotations[1]
        assert "C:cancer_line" in annotations[1]  # closure


class TestSelectiveRetrieval:
    def test_metadata_only(self, peaks):
        staging = StagingArea()
        ticket = staging.stage(peaks)
        meta = staging.retrieve_metadata(ticket)
        assert b"cell\tHeLa-S3" in meta
        assert b"chr1\t0\t100" not in meta  # no region rows

    def test_regions_only(self, peaks):
        staging = StagingArea()
        ticket = staging.stage(peaks)
        regions = staging.retrieve_regions(ticket)
        assert b"chr1\t0\t100" in regions
        assert b"HeLa-S3" not in regions  # no metadata pairs

    def test_sections_concatenate_to_full_blob(self, peaks):
        staging = StagingArea()
        ticket = staging.stage(peaks)
        combined = staging.retrieve_metadata(ticket) + staging.retrieve_regions(
            ticket
        )
        assert combined == staging.retrieve_all(ticket)

    def test_metadata_section_is_small(self, peaks):
        big = Dataset(
            "BIG",
            peaks.schema,
            [
                Sample(
                    1,
                    [region("chr1", i * 10, i * 10 + 5, "*", 1e-5)
                     for i in range(500)],
                    Metadata({"cell": "HeLa-S3"}),
                )
            ],
        )
        staging = StagingArea()
        ticket = staging.stage(big)
        meta = staging.retrieve_metadata(ticket)
        regions = staging.retrieve_regions(ticket)
        assert len(meta) < len(regions) / 10


class TestFindSamples:
    @pytest.fixture()
    def service(self, peaks, annotations):
        catalog = Catalog()
        catalog.register(peaks)
        catalog.register(annotations)
        return RepositoryService(catalog)

    def test_ontology_expanded_lookup(self, service):
        # 'cancer' is not a literal metadata value anywhere, but HeLa-S3
        # and K562 are cancer cell lines in the ontology.
        results = service.find_samples("cancer")
        assert ("PEAKS", 1) in results
        assert ("PEAKS", 2) in results

    def test_literal_fallback(self, service):
        results = service.find_samples("promoter")
        assert ("ANNS", 1) in results

    def test_no_match(self, service):
        assert service.find_samples("zebrafish") == []
