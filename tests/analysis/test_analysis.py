"""Tests for genome spaces, networks, clustering, stats and correlation."""

import numpy as np
import pytest

from repro.analysis import (
    GenomeSpace,
    benjamini_hochberg,
    binomial_region_enrichment,
    correlate_phenotype,
    genome_space_to_network,
    hierarchical_regions,
    hub_genes,
    hypergeometric_gene_enrichment,
    interaction_strengths,
    kmeans_regions,
    network_communities,
    network_summary,
    phenotype_vector,
    relationship_count,
    silhouette,
)
from repro.errors import EvaluationError
from repro.gdm import Dataset, Metadata, RegionSchema, STR, Sample, region
from repro.gmql import Count, map_regions


@pytest.fixture(scope="module")
def mapped():
    """A MAP result: 4 gene regions x 4 experiments with planted pattern.

    Genes g1,g2 are co-active in experiments 1-2; genes g3,g4 in 3-4.
    """
    genes = Dataset(
        "GENES",
        RegionSchema.of(("name", STR)),
        [
            Sample(
                1,
                [
                    region("chr1", 0, 100, "+", "g1"),
                    region("chr1", 200, 300, "+", "g2"),
                    region("chr1", 400, 500, "+", "g3"),
                    region("chr1", 600, 700, "+", "g4"),
                ],
                Metadata({"annType": "gene"}),
            )
        ],
    )
    schema = RegionSchema.empty()
    experiments = Dataset("EXPS", schema)
    pattern = {
        1: [(10, 60), (210, 260)],         # hits g1, g2
        2: [(20, 70), (220, 270)],         # hits g1, g2
        3: [(410, 460), (610, 660)],       # hits g3, g4
        4: [(420, 470), (620, 670)],       # hits g3, g4
    }
    for sample_id, spans in pattern.items():
        experiments.add_sample(
            Sample(
                sample_id,
                [region("chr1", l, r) for l, r in spans],
                Metadata(
                    {
                        "karyotype": "cancer" if sample_id <= 2 else "normal",
                        "dose": float(sample_id),
                    }
                ),
            )
        )
    return map_regions(genes, experiments, {"hits": (Count(), None)})


class TestGenomeSpace:
    def test_shape(self, mapped):
        space = GenomeSpace.from_map_result(mapped, label_attribute="name")
        assert space.n_regions == 4
        assert space.n_experiments == 4
        assert space.region_labels == ["g1", "g2", "g3", "g4"]

    def test_matrix_values(self, mapped):
        space = GenomeSpace.from_map_result(mapped, label_attribute="name")
        assert space.row("g1").tolist() == [1, 1, 0, 0]
        assert space.row("g3").tolist() == [0, 0, 1, 1]

    def test_column_labels_from_metadata(self, mapped):
        space = GenomeSpace.from_map_result(
            mapped, label_attribute="name",
            column_attribute="right.karyotype",
        )
        assert space.column_labels == ["cancer", "cancer", "normal", "normal"]

    def test_filter_active(self, mapped):
        space = GenomeSpace.from_map_result(mapped, label_attribute="name")
        filtered = space.filter_active_regions(min_total=3)
        assert filtered.n_regions == 0 or filtered.n_regions < space.n_regions

    def test_coactivity_similarity(self, mapped):
        space = GenomeSpace.from_map_result(mapped, label_attribute="name")
        similarity = space.similarity_matrix("coactivity")
        # g1,g2 co-active in 2 experiments; g1,g3 in none.
        assert similarity[0, 1] == 2
        assert similarity[0, 2] == 0

    def test_non_map_result_rejected(self):
        ds = Dataset(
            "BAD",
            RegionSchema.of(("v", "INT")),
            [
                Sample(1, [region("chr1", 0, 10, "*", 1)]),
                Sample(2, [region("chr2", 0, 10, "*", 1)]),
            ],
        )
        with pytest.raises(EvaluationError):
            GenomeSpace.from_map_result(ds)

    def test_default_row_labels_are_coordinates(self, mapped):
        space = GenomeSpace.from_map_result(mapped)
        assert space.region_labels[0] == "chr1:0-100"


class TestNetwork:
    @pytest.fixture()
    def space(self, mapped):
        return GenomeSpace.from_map_result(mapped, label_attribute="name")

    def test_figure4_network(self, space):
        graph = genome_space_to_network(space, "coactivity", threshold=2)
        assert graph.has_edge("g1", "g2")
        assert graph.has_edge("g3", "g4")
        assert not graph.has_edge("g1", "g3")

    def test_edge_weights_are_strengths(self, space):
        graph = genome_space_to_network(space, "coactivity", threshold=2)
        strengths = interaction_strengths(graph)
        assert strengths[0][2] == 2.0

    def test_hubs(self, space):
        graph = genome_space_to_network(space, "coactivity", threshold=1)
        hubs = hub_genes(graph, top=2)
        assert len(hubs) == 2

    def test_communities_recover_planted_modules(self, space):
        graph = genome_space_to_network(space, "coactivity", threshold=2)
        communities = network_communities(graph)
        as_sets = [frozenset(c) for c in communities]
        assert frozenset({"g1", "g2"}) in as_sets
        assert frozenset({"g3", "g4"}) in as_sets

    def test_summary(self, space):
        graph = genome_space_to_network(space, "coactivity", threshold=2)
        summary = network_summary(graph)
        assert summary["nodes"] == 4
        assert summary["edges"] == 2
        assert summary["components"] == 2

    def test_relationship_count_paper_arithmetic(self):
        assert relationship_count(10_000) == 100_000_000


class TestClustering:
    @pytest.fixture()
    def space(self, mapped):
        return GenomeSpace.from_map_result(mapped, label_attribute="name")

    def test_kmeans_recovers_modules(self, space):
        result = kmeans_regions(space, k=2, seed=1)
        clusters = [sorted(v) for v in result["clusters"].values()]
        assert sorted(clusters) == [["g1", "g2"], ["g3", "g4"]]

    def test_kmeans_bad_k(self, space):
        with pytest.raises(EvaluationError):
            kmeans_regions(space, k=10)

    def test_hierarchical_recovers_modules(self, space):
        result = hierarchical_regions(space, n_clusters=2)
        clusters = [sorted(v) for v in result["clusters"].values()]
        assert sorted(clusters) == [["g1", "g2"], ["g3", "g4"]]

    def test_silhouette_high_for_planted(self, space):
        result = kmeans_regions(space, k=2, seed=1)
        assert silhouette(space, result["labels"]) > 0.5


class TestEnrichment:
    def test_binomial_enrichment_detects_signal(self):
        domains = [region("chr1", 1000 * i, 1000 * i + 100) for i in range(10)]
        hits = [region("chr1", 1000 * i + 20, 1000 * i + 60) for i in range(8)]
        background = [region("chr1", 500_000 + i * 300, 500_000 + i * 300 + 50)
                      for i in range(2)]
        result = binomial_region_enrichment(hits + background, domains,
                                            genome_size=1_000_000)
        assert result.observed == 8
        assert result.fold > 100
        assert result.significant()

    def test_binomial_no_signal(self):
        domains = [region("chr1", 0, 500_000)]  # half the genome
        query = [region("chr1", i * 3_990, i * 3_990 + 100) for i in range(250)]
        result = binomial_region_enrichment(query, domains,
                                            genome_size=1_000_000)
        assert 0.3 < result.fraction_null < 0.7
        assert not result.significant(alpha=1e-6)

    def test_hypergeometric(self):
        all_genes = {f"g{i}" for i in range(100)}
        annotated = {f"g{i}" for i in range(10)}
        hit = {f"g{i}" for i in range(8)} | {"g50", "g51"}
        result = hypergeometric_gene_enrichment(hit, annotated, all_genes)
        assert result.observed == 8
        assert result.significant()

    def test_empty_universe_rejected(self):
        with pytest.raises(EvaluationError):
            hypergeometric_gene_enrichment(set(), set(), set())


class TestCorrelation:
    def test_binary_phenotype_associations(self, mapped):
        space = GenomeSpace.from_map_result(mapped, label_attribute="name")
        phenotype = phenotype_vector(mapped, "right.karyotype")
        associations = correlate_phenotype(space, phenotype)
        # g1/g2 are active exactly in the cancer samples: strongest effect.
        top_regions = {a.region for a in associations[:2]}
        assert top_regions <= {"g1", "g2", "g3", "g4"}
        assert abs(associations[0].effect) == 1.0

    def test_numeric_phenotype_correlation(self, mapped):
        space = GenomeSpace.from_map_result(mapped, label_attribute="name")
        phenotype = phenotype_vector(mapped, "right.dose")
        associations = correlate_phenotype(space, phenotype)
        by_region = {a.region: a for a in associations}
        assert by_region["g3"].effect > 0.5   # active at high dose
        assert by_region["g1"].effect < -0.5  # active at low dose

    def test_length_mismatch_rejected(self, mapped):
        space = GenomeSpace.from_map_result(mapped)
        with pytest.raises(EvaluationError):
            correlate_phenotype(space, ["x"])

    def test_benjamini_hochberg_keeps_prefix(self, mapped):
        space = GenomeSpace.from_map_result(mapped, label_attribute="name")
        phenotype = phenotype_vector(mapped, "right.karyotype")
        associations = correlate_phenotype(space, phenotype)
        survivors = benjamini_hochberg(associations, alpha=0.9)
        assert len(survivors) <= len(associations)


class TestGenomeSpaceToDataset:
    def test_round_trip_to_gdm(self, mapped):
        space = GenomeSpace.from_map_result(mapped, label_attribute="name")
        dataset = space.to_dataset("SPACE")
        assert len(dataset) == space.n_experiments
        assert dataset.schema.names == ("label", "value")
        sample = dataset[1]
        assert len(sample) == space.n_regions
        assert sample.regions[0].values[0] == space.region_labels[0]

    def test_result_is_queryable_with_gmql(self, mapped):
        from repro.gmql import RegionCompare, select

        space = GenomeSpace.from_map_result(mapped, label_attribute="name")
        dataset = space.to_dataset()
        active = select(
            dataset, region_predicate=RegionCompare("value", ">", 0)
        )
        total_active = sum(len(s) for s in active)
        expected = int((space.matrix > 0).sum())
        assert total_active == expected
