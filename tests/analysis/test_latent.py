"""Tests for latent semantic analysis over genome spaces."""

import numpy as np
import pytest

from repro.analysis import GenomeSpace, latent_semantic_analysis
from repro.errors import EvaluationError


@pytest.fixture()
def block_space():
    """Two planted programs: regions 0-3 active in experiments 0-3,
    regions 4-7 in experiments 4-7 (rank-2 structure plus noise)."""
    rng = np.random.default_rng(3)
    matrix = np.zeros((8, 8))
    matrix[:4, :4] = 5.0
    matrix[4:, 4:] = 3.0
    matrix += rng.normal(0, 0.05, size=matrix.shape)
    return GenomeSpace(
        matrix,
        [f"g{i}" for i in range(8)],
        [f"e{j}" for j in range(8)],
        [("chr1", i * 10, i * 10 + 5, "+") for i in range(8)],
    )


class TestLatentModel:
    def test_rank2_captures_block_structure(self, block_space):
        model = latent_semantic_analysis(block_space, k=2)
        assert model.explained_variance > 0.98

    def test_topics_recover_planted_programs(self, block_space):
        model = latent_semantic_analysis(block_space, k=2)
        topics = model.region_topics()
        groups = sorted(sorted(v) for v in topics.values())
        assert groups == [
            ["g0", "g1", "g2", "g3"],
            ["g4", "g5", "g6", "g7"],
        ]

    def test_top_regions_per_factor(self, block_space):
        model = latent_semantic_analysis(block_space, k=2)
        for factor in (0, 1):
            top = model.top_regions(factor, top=4)
            labels = {label for label, __ in top}
            assert labels in (
                {"g0", "g1", "g2", "g3"},
                {"g4", "g5", "g6", "g7"},
            )

    def test_reconstruction_close(self, block_space):
        model = latent_semantic_analysis(block_space, k=2)
        approx = model.reconstruct()
        original = np.nan_to_num(block_space.matrix)
        error = np.abs(approx - original).max()
        assert error < 0.5

    def test_low_rank_similarity_separates_blocks(self, block_space):
        model = latent_semantic_analysis(block_space, k=2)
        similarity = model.low_rank_similarity()
        assert similarity[0, 1] > 0.95   # same program
        assert abs(similarity[0, 5]) < 0.2  # different programs

    def test_bad_k_rejected(self, block_space):
        with pytest.raises(EvaluationError):
            latent_semantic_analysis(block_space, k=0)
        with pytest.raises(EvaluationError):
            latent_semantic_analysis(block_space, k=99)

    def test_full_rank_explains_everything(self, block_space):
        model = latent_semantic_analysis(block_space, k=8)
        assert model.explained_variance == pytest.approx(1.0)
