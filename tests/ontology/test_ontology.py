"""Tests for the ontology layer: graph, closure, annotation, expansion."""

import pytest

from repro.errors import OntologyError
from repro.gdm import Metadata
from repro.ontology import (
    IS_A,
    Ontology,
    Term,
    annotate_metadata,
    builtin_ontology,
    expand_query_terms,
    ontology_match,
    semantic_closure_annotation,
)


class TestGraph:
    def test_add_and_lookup(self):
        onto = Ontology()
        onto.add_term(Term("X:1", "thing", ("object",)))
        assert onto.term("X:1").name == "thing"
        assert onto.find("OBJECT") == ["X:1"]

    def test_duplicate_id_rejected(self):
        onto = Ontology()
        onto.add_term(Term("X:1", "a"))
        with pytest.raises(OntologyError):
            onto.add_term(Term("X:1", "b"))

    def test_unknown_term_rejected(self):
        onto = Ontology()
        with pytest.raises(OntologyError):
            onto.term("nope")

    def test_cycle_rejected(self):
        onto = Ontology()
        onto.add_term(Term("X:1", "a"))
        onto.add_term(Term("X:2", "b"))
        onto.add_relation("X:1", IS_A, "X:2")
        with pytest.raises(OntologyError):
            onto.add_relation("X:2", IS_A, "X:1")

    def test_self_relation_rejected(self):
        onto = Ontology()
        onto.add_term(Term("X:1", "a"))
        with pytest.raises(OntologyError):
            onto.add_relation("X:1", IS_A, "X:1")

    def test_closure_multi_hop(self):
        onto = builtin_ontology()
        closure = onto.closure({"C:hela"})
        assert "C:cancer_line" in closure
        assert "C:cell_line" in closure
        assert "C:cell" in closure
        assert "T:cervix" in closure  # part_of also closes

    def test_descendants(self):
        onto = builtin_ontology()
        descendants = onto.descendants("C:cancer_line")
        assert "C:hela" in descendants
        assert "C:gm12878" not in descendants

    def test_is_a(self):
        onto = builtin_ontology()
        assert onto.is_a("A:chipseq", "A:assay")
        assert not onto.is_a("A:assay", "A:chipseq")


class TestAnnotation:
    @pytest.fixture(scope="class")
    def onto(self):
        return builtin_ontology()

    def test_annotate_matches_values(self, onto):
        meta = Metadata({"cell": "HeLa-S3", "dataType": "ChipSeq"})
        terms = annotate_metadata(meta, onto)
        assert "C:hela" in terms
        assert "A:chipseq" in terms

    def test_synonyms_match(self, onto):
        meta = Metadata({"cell": "HeLa"})
        assert "C:hela" in annotate_metadata(meta, onto)

    def test_closure_annotation_reaches_ancestors(self, onto):
        meta = Metadata({"cell": "K562"})
        closed = semantic_closure_annotation(meta, onto)
        assert "C:cancer_line" in closed
        assert "T:blood" in closed

    def test_unmatched_values_ignored(self, onto):
        meta = Metadata({"lab": "SomeUnknownLab"})
        assert annotate_metadata(meta, onto) == set()


class TestExpansionAndMatch:
    @pytest.fixture(scope="class")
    def onto(self):
        return builtin_ontology()

    def test_expand_goes_down(self, onto):
        expanded = expand_query_terms("cancer", onto)
        assert "C:hela" in expanded
        assert "C:k562" in expanded
        assert "C:gm12878" not in expanded

    def test_match_general_query_to_specific_samples(self, onto):
        annotations = {
            1: semantic_closure_annotation(Metadata({"cell": "HeLa-S3"}), onto),
            2: semantic_closure_annotation(Metadata({"cell": "GM12878"}), onto),
        }
        matches = ontology_match("cancer", annotations, onto)
        assert matches == [1]

    def test_match_ranks_by_overlap(self, onto):
        annotations = {
            1: semantic_closure_annotation(
                Metadata({"cell": "HeLa-S3", "antibody": "CTCF"}), onto
            ),
            2: semantic_closure_annotation(Metadata({"antibody": "CTCF"}), onto),
        }
        matches = ontology_match("CTCF transcription factor", annotations, onto)
        assert matches[0] in (1, 2)
        assert set(matches) == {1, 2}
