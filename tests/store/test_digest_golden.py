"""Golden digest pin: the store's content address must never drift.

``DatasetStore.digest()`` keys everything durable: persisted store
directories (``<digest>-b<bin>``), result-cache fingerprints, and staged
spill files.  An accidental change to the digest recipe would silently
orphan every existing store directory and cached result -- queries would
still be *correct*, but every warm path would go cold with no error
anywhere.  This test pins the digest of the committed example dataset so
any recipe change has to be made consciously (bump the prefix, update
the golden value here, and accept that on-disk stores rebuild).
"""

from pathlib import Path

from repro.formats import read_dataset
from repro.gdm import Dataset

EXAMPLE = str(
    Path(__file__).resolve().parents[2] / "examples" / "data" / "CHIP"
)

#: blake2b-128 of the committed CHIP example under digest recipe v3
#: (typed column encoding; v2 hashed per-region formatted strings).
GOLDEN_DIGEST = "5b9064b2fe739ccf8e1aa513b2c20099"


def test_example_dataset_digest_is_pinned():
    dataset = read_dataset(EXAMPLE)
    assert dataset.store().digest() == GOLDEN_DIGEST


def test_digest_ignores_bin_size_and_dataset_name():
    dataset = read_dataset(EXAMPLE)
    assert dataset.store(64).digest() == GOLDEN_DIGEST
    renamed = Dataset(
        "SOMETHING_ELSE",
        dataset.schema,
        list(dataset),
        validate=False,
    )
    assert renamed.store().digest() == GOLDEN_DIGEST


def test_digest_changes_with_content():
    dataset = read_dataset(EXAMPLE)
    samples = list(dataset)
    truncated = Dataset(
        dataset.name, dataset.schema, samples[:-1], validate=False
    )
    assert truncated.store().digest() != GOLDEN_DIGEST
