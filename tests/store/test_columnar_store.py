"""Unit tests for the columnar store: blocks, zone maps, digests."""

import numpy as np
import pytest

from repro.gdm import Dataset, GenomicRegion, Metadata, RegionSchema, Sample
from repro.gdm.schema import AttributeDef, FLOAT
from repro.store import (
    DatasetStore,
    SampleBlocks,
    count_overlaps_blocks,
    depth_segments,
    occupied_bins,
)


def region(chrom, left, right, strand="*", *values):
    return GenomicRegion(chrom, left, right, strand, tuple(values))


def dataset(name="D", samples=None, schema=None):
    return Dataset(
        name,
        schema or RegionSchema.empty(),
        samples or (),
        validate=False,
    )


class TestOccupiedBins:
    def test_single_bin(self):
        bins = occupied_bins(np.array([10]), np.array([20]), 100)
        assert bins.tolist() == [0]

    def test_spanning_region_includes_middle_bins(self):
        # [50, 450) with bin 100 touches bins 0..4 -- including middle
        # bins 1..3, which is what keeps pruning sound for regions that
        # fully contain a bin.
        bins = occupied_bins(np.array([50]), np.array([450]), 100)
        assert bins.tolist() == [0, 1, 2, 3, 4]

    def test_region_ending_on_bin_edge(self):
        # [0, 100) ends exactly at the edge: bin 0 only.
        bins = occupied_bins(np.array([0]), np.array([100]), 100)
        assert bins.tolist() == [0]

    def test_zero_length_occupies_point_bin(self):
        bins = occupied_bins(np.array([150]), np.array([150]), 100)
        assert bins.tolist() == [1]

    def test_empty(self):
        assert occupied_bins(np.array([]), np.array([]), 100).size == 0

    def test_matches_bin_span(self):
        from repro.intervals.bins import bin_span

        rng = np.random.default_rng(7)
        starts = rng.integers(0, 5000, size=50)
        widths = rng.integers(0, 600, size=50)
        stops = starts + widths
        expected = sorted(
            {
                index
                for left, right in zip(starts, stops)
                for index in bin_span(int(left), int(right), 128)
            }
        )
        assert occupied_bins(starts, stops, 128).tolist() == expected


class TestSampleBlocks:
    def test_struct_of_arrays_layout(self):
        sample = Sample(
            1,
            [
                region("chr2", 30, 60),
                region("chr1", 100, 200),
                region("chr1", 50, 80),
            ],
            Metadata({}),
        )
        blocks = SampleBlocks(1, sample.regions, 100)
        assert blocks.n_regions == 3
        chr1 = blocks.block("chr1")
        assert chr1.starts.tolist() == [100, 50]
        assert chr1.stops.tolist() == [200, 80]
        # index maps back into the sample's region order.
        assert chr1.index.tolist() == [1, 2]
        assert blocks.block("chr2").index.tolist() == [0]

    def test_sorted_views_and_max_width(self):
        blocks = SampleBlocks(
            1, [region("chr1", 100, 350), region("chr1", 20, 60)], 100
        )
        block = blocks.block("chr1")
        assert block.sorted_starts.tolist() == [20, 100]
        assert block.sorted_stops.tolist() == [60, 350]
        assert block.max_width == 250

    def test_zone_map_entries(self):
        blocks = SampleBlocks(
            1,
            [region("chr1", 50, 450), region("chr7", 10, 20)],
            100,
        )
        entry = blocks.zone_map.entry("chr1")
        assert (entry.min_start, entry.max_stop) == (50, 450)
        assert entry.partitions == 5
        assert blocks.zone_map.entry("chrX") is None

    def test_window_overlaps_point_feature(self):
        blocks = SampleBlocks(1, [region("chr1", 100, 100)], 100)
        entry = blocks.zone_map.entry("chr1")
        # A zero-length point at 100 is a candidate for [60, 140).
        assert entry.window_overlaps(60, 140)
        assert not entry.window_overlaps(100, 200)


class TestCountOverlapsBlocks:
    def test_counts_and_pruning(self):
        ref = SampleBlocks(
            1,
            [
                region("chr1", 10, 50),
                region("chr1", 200, 260),
                region("chr9", 0, 40),
            ],
            100,
        )
        probe = SampleBlocks(
            2, [region("chr1", 30, 40), region("chr1", 45, 220)], 100
        )
        counts, pruned = count_overlaps_blocks(ref, probe)
        assert counts.tolist() == [2, 1, 0]
        # chr9 has no probe entry: its single partition is pruned.
        assert pruned == 1

    def test_bin_level_pruning_keeps_counts_exact(self):
        # Far-apart clusters on one chromosome: bins prune, counts stay.
        ref = SampleBlocks(
            1,
            [region("chr1", 100, 150), region("chr1", 100_000_000, 100_000_050)],
            100,
        )
        probe = SampleBlocks(2, [region("chr1", 120, 130)], 100)
        counts, pruned = count_overlaps_blocks(ref, probe)
        assert counts.tolist() == [1, 0]
        assert pruned >= 1

    def test_zero_length_probe_matches_region_semantics(self):
        # Half-open overlap: a point feature overlaps intervals strictly
        # containing its position, but not ones that merely touch it.
        ref = SampleBlocks(1, [region("chr1", 0, 100)], 100)
        inside = SampleBlocks(2, [region("chr1", 50, 50)], 100)
        counts, __ = count_overlaps_blocks(ref, inside)
        assert counts.tolist() == [1]
        at_edge = SampleBlocks(3, [region("chr1", 100, 100)], 100)
        counts, __ = count_overlaps_blocks(ref, at_edge)
        assert counts.tolist() == [0]


class TestDepthSegments:
    def test_event_sweep(self):
        segments = list(
            depth_segments(
                "chr1", np.array([0, 10, 20]), np.array([30, 25, 40])
            )
        )
        assert segments == [
            (0, 10, 1), (10, 20, 2), (20, 25, 3), (25, 30, 2), (30, 40, 1),
        ]

    def test_empty(self):
        assert list(depth_segments("chr1", np.array([]), np.array([]))) == []


class TestDatasetStore:
    def make(self):
        return dataset(
            samples=[
                Sample(1, [region("chr1", 0, 50)], Metadata({"cell": "A"})),
                Sample(2, [region("chr2", 10, 90)], Metadata({"cell": "B"})),
            ]
        )

    def test_blocks_memoised_per_sample(self):
        ds = self.make()
        store = ds.store()
        first = store.blocks(ds[1])
        again = store.blocks(ds[1])
        assert first is again
        assert store.blocks_built == 1

    def test_store_memoised_on_dataset(self):
        ds = self.make()
        assert ds.store() is ds.store()
        assert ds.store(50) is not ds.store()

    def test_add_sample_invalidates_store(self):
        ds = self.make()
        before = ds.store()
        ds.add_sample(Sample(3, [region("chr3", 0, 10)], Metadata({})))
        after = ds.store()
        assert after is not before
        assert "chr3" in after.zone_map().chromosomes

    def test_digest_stable_and_name_independent(self):
        ds = self.make()
        clone = self.make()
        assert ds.store().digest() == clone.store().digest()
        renamed = ds.with_name("OTHER")
        assert renamed.store().digest() == ds.store().digest()

    def test_digest_changes_with_content(self):
        ds = self.make()
        base = ds.store().digest()
        # Region coordinates.
        moved = dataset(
            samples=[
                Sample(1, [region("chr1", 0, 51)], Metadata({"cell": "A"})),
                Sample(2, [region("chr2", 10, 90)], Metadata({"cell": "B"})),
            ]
        )
        assert moved.store().digest() != base
        # Metadata.
        relabelled = dataset(
            samples=[
                Sample(1, [region("chr1", 0, 50)], Metadata({"cell": "Z"})),
                Sample(2, [region("chr2", 10, 90)], Metadata({"cell": "B"})),
            ]
        )
        assert relabelled.store().digest() != base
        # Strand.
        stranded = dataset(
            samples=[
                Sample(1, [region("chr1", 0, 50, "+")], Metadata({"cell": "A"})),
                Sample(2, [region("chr2", 10, 90)], Metadata({"cell": "B"})),
            ]
        )
        assert stranded.store().digest() != base

    def test_digest_sees_values(self):
        schema = RegionSchema((AttributeDef("score", FLOAT),))
        one = dataset(
            samples=[Sample(1, [region("chr1", 0, 10, "*", 1.0)], Metadata({}))],
            schema=schema,
        )
        two = dataset(
            samples=[Sample(1, [region("chr1", 0, 10, "*", 2.0)], Metadata({}))],
            schema=schema,
        )
        assert one.store().digest() != two.store().digest()

    def test_union_blocks_cover_all_samples(self):
        ds = self.make()
        union = ds.store().union_blocks()
        assert union.n_regions == 2
        assert set(union.zone_map.chromosomes) == {"chr1", "chr2"}

    def test_partitions(self):
        ds = self.make()
        assert ds.store().partitions() == 2

    def test_custom_bin_size(self):
        ds = dataset(
            samples=[Sample(1, [region("chr1", 0, 1000)], Metadata({}))]
        )
        coarse = DatasetStore(ds, bin_size=1000)
        fine = DatasetStore(ds, bin_size=10)
        assert coarse.partitions() == 1
        assert fine.partitions() == 100
