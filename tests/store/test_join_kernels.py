"""Differential tests of the vectorised genometric join kernels.

The oracle is the naive operator stack itself:
:meth:`GenometricCondition.matches_for_anchor` over a
:class:`NearestIndex`, which defines both the *set* of matching pairs
and their *order* (the columnar/parallel backends must be byte-identical
to the naive engine, so ties in the final stable sort must arrive in the
same sequence).  Every kernel assertion therefore compares ordered pair
lists, not sets.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdm import GenomicRegion
from repro.gmql.genometric import (
    DistGreater,
    DistLess,
    Downstream,
    GenometricCondition,
    MinDistance,
    Upstream,
)
from repro.intervals import NearestIndex
from repro.store import SampleBlocks
from repro.store.join_kernels import (
    expand_windows,
    group_offsets,
    join_pairs,
    overlap_pairs,
    segment_counts,
    segment_median_positions,
    segment_reduce,
)

BIN = 64

#: Clause sets covering every condition shape the language can produce.
CONDITIONS = (
    (DistLess(10),),
    (DistLess(0),),
    (DistLess(-1),),
    (DistGreater(3),),
    (DistLess(15), DistGreater(2)),
    (MinDistance(1),),
    (MinDistance(3),),
    (MinDistance(2), DistLess(15)),
    (Upstream(),),
    (Downstream(),),
    (DistLess(25), Upstream()),
    (MinDistance(2), Upstream()),
    (MinDistance(1), Downstream(), DistGreater(1)),
    (Upstream(), Downstream()),
)

_SPEC = st.lists(
    st.tuples(
        st.integers(0, 300),
        st.integers(0, 50),
        st.sampled_from(["+", "-", "*"]),
    ),
    max_size=25,
)


def make(spec, chrom="chr1"):
    return [
        GenomicRegion(chrom, left, left + width, strand)
        for left, width, strand in spec
    ]


def _clause_flags(condition):
    return {
        "max_distance": condition.max_distance(),
        "min_distance": condition.min_distance(),
        "md_k": condition.min_distance_k(),
        "upstream": any(isinstance(c, Upstream) for c in condition.clauses),
        "downstream": any(
            isinstance(c, Downstream) for c in condition.clauses
        ),
    }


def _kernel_pairs(anchors, experiment, condition):
    """Ordered ``(anchor_row, experiment_row, gap)`` pairs via the kernel."""
    a_blocks = SampleBlocks(None, anchors, BIN)
    e_blocks = SampleBlocks(None, experiment, BIN)
    flags = _clause_flags(condition)
    out = []
    for chrom, a_block in a_blocks.chroms.items():
        e_block = e_blocks.block(chrom)
        if e_block is None:
            continue
        a_rows, e_pos, gaps = join_pairs(
            a_block.starts, a_block.stops, a_block.strands,
            e_block.sorted_starts, e_block.left_stops,
            e_block.sorted_stops if flags["md_k"] is not None else None,
            max_distance=flags["max_distance"],
            min_distance=flags["min_distance"],
            md_k=flags["md_k"],
            upstream=flags["upstream"],
            downstream=flags["downstream"],
        )
        a_index = a_block.index[a_rows]
        e_index = e_block.index[e_block.left_order[e_pos]]
        out.extend(zip(a_index.tolist(), e_index.tolist(), gaps.tolist()))
    return out


def _naive_pairs(anchors, experiment, condition):
    """The oracle: naive per-anchor matching, in naive candidate order."""
    index = NearestIndex(experiment)
    positions = {id(region): i for i, region in enumerate(experiment)}
    out = []
    for a_row, region in enumerate(anchors):
        for hit, gap in condition.matches_for_anchor(region, index):
            out.append((a_row, positions[id(hit)], gap))
    return out


class TestJoinPairsDifferential:
    @given(_SPEC, _SPEC, st.sampled_from(range(len(CONDITIONS))))
    @settings(max_examples=200, deadline=None)
    def test_matches_naive_in_order(self, a_spec, e_spec, which):
        condition = GenometricCondition(*CONDITIONS[which])
        anchors = make(a_spec)
        experiment = make(e_spec)
        assert _kernel_pairs(anchors, experiment, condition) == _naive_pairs(
            anchors, experiment, condition
        )

    @given(_SPEC, _SPEC, st.sampled_from(range(len(CONDITIONS))))
    @settings(max_examples=60, deadline=None)
    def test_multi_chromosome(self, a_spec, e_spec, which):
        condition = GenometricCondition(*CONDITIONS[which])
        half = len(a_spec) // 2
        anchors = make(a_spec[:half]) + make(a_spec[half:], "chr2")
        half = len(e_spec) // 2
        experiment = make(e_spec[:half]) + make(e_spec[half:], "chr2")
        kernel = _kernel_pairs(anchors, experiment, condition)
        naive = _naive_pairs(anchors, experiment, condition)
        # Kernel iterates chromosomes, naive iterates anchors; compare
        # per-anchor ordered runs (the backend sorts whole samples
        # afterwards, so inter-anchor interleaving never surfaces).
        by_anchor_kernel: dict = {}
        for a, e, gap in kernel:
            by_anchor_kernel.setdefault(a, []).append((e, gap))
        by_anchor_naive: dict = {}
        for a, e, gap in naive:
            by_anchor_naive.setdefault(a, []).append((e, gap))
        assert by_anchor_kernel == by_anchor_naive

    def test_strandless_upstream_means_left(self):
        # UP on a strandless ("*") anchor behaves like "+": candidates
        # strictly before the anchor's start.
        anchors = [GenomicRegion("chr1", 100, 120, "*")]
        experiment = [
            GenomicRegion("chr1", 0, 50),     # before: upstream
            GenomicRegion("chr1", 150, 160),  # after: downstream
            GenomicRegion("chr1", 110, 130),  # overlapping: neither
        ]
        condition = GenometricCondition(Upstream())
        pairs = _kernel_pairs(anchors, experiment, condition)
        assert pairs == _naive_pairs(anchors, experiment, condition)
        assert [e for __, e, __g in pairs] == [0]

    def test_negative_strand_flips_direction(self):
        anchors = [GenomicRegion("chr1", 100, 120, "-")]
        experiment = [
            GenomicRegion("chr1", 0, 50),
            GenomicRegion("chr1", 150, 160),
        ]
        up = _kernel_pairs(
            anchors, experiment, GenometricCondition(Upstream())
        )
        assert [e for __, e, __g in up] == [1]
        down = _kernel_pairs(
            anchors, experiment, GenometricCondition(Downstream())
        )
        assert [e for __, e, __g in down] == [0]

    def test_coincident_points_and_md_ties(self):
        # Several coincident zero-length candidates: MD(k) tie-breaking
        # must match the naive (gap, left, right, position) sort.
        anchors = [GenomicRegion("chr1", 100, 100)]
        experiment = [
            GenomicRegion("chr1", 90, 90),
            GenomicRegion("chr1", 110, 110),
            GenomicRegion("chr1", 90, 90),
            GenomicRegion("chr1", 110, 110),
        ]
        for k in (1, 2, 3, 4):
            condition = GenometricCondition(MinDistance(k))
            assert _kernel_pairs(
                anchors, experiment, condition
            ) == _naive_pairs(anchors, experiment, condition)

    def test_bin_straddling_intervals(self):
        # Intervals spanning zone-map bin boundaries (the BIN=64 grid).
        anchors = [GenomicRegion("chr1", 60, 70), GenomicRegion("chr1", 0, 200)]
        experiment = [
            GenomicRegion("chr1", 63, 65),
            GenomicRegion("chr1", 0, 128),
            GenomicRegion("chr1", 127, 129),
        ]
        condition = GenometricCondition(DistLess(-1))
        assert _kernel_pairs(anchors, experiment, condition) == _naive_pairs(
            anchors, experiment, condition
        )


class TestOverlapPairs:
    @given(_SPEC, _SPEC)
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force_in_canonical_order(self, r_spec, e_spec):
        refs = make(r_spec)
        experiment = make(e_spec)
        blocks = SampleBlocks(None, experiment, BIN)
        block = blocks.block("chr1")
        got = []
        if block is not None and refs:
            r_starts = np.array([r.left for r in refs], dtype=np.int64)
            r_stops = np.array([r.right for r in refs], dtype=np.int64)
            ref_rows, e_pos = overlap_pairs(
                r_starts, r_stops, block.sorted_starts, block.left_stops
            )
            e_index = block.index[block.left_order[e_pos]]
            got = list(zip(ref_rows.tolist(), e_index.tolist()))
        expected = []
        for i, ref in enumerate(refs):
            hits = [
                (e.left, e.right, j)
                for j, e in enumerate(experiment)
                if e.left < ref.right and e.right > ref.left
            ]
            expected.extend((i, j) for __, ___, j in sorted(hits))
        assert got == expected


class TestSegmentHelpers:
    def test_expand_windows(self):
        lo = np.array([0, 2, 2], dtype=np.int64)
        hi = np.array([2, 2, 5], dtype=np.int64)
        anchor_rows, members = expand_windows(lo, hi)
        assert anchor_rows.tolist() == [0, 0, 2, 2, 2]
        assert members.tolist() == [0, 1, 2, 3, 4]

    def test_group_offsets_and_counts(self):
        ref_rows = np.array([0, 0, 2, 2, 2], dtype=np.int64)
        offsets = group_offsets(ref_rows, 4)
        assert offsets.tolist() == [0, 2, 2, 5, 5]
        assert segment_counts(offsets).tolist() == [2, 0, 3, 0]

    @given(
        st.lists(st.integers(0, 3), max_size=8),
        st.lists(st.integers(-50, 50), min_size=30, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_segment_reduce_matches_python(self, rows, pool):
        ref_rows = np.sort(np.array(rows, dtype=np.int64))
        values = np.array(pool[: len(rows)], dtype=np.int64)
        offsets = group_offsets(ref_rows, 4)
        counts = segment_counts(offsets)
        for how, fn in (("sum", sum), ("min", min), ("max", max)):
            reduced = segment_reduce(values, offsets, how)
            for i in range(4):
                segment = values[offsets[i]:offsets[i + 1]].tolist()
                if counts[i]:
                    assert reduced[i] == fn(segment)

    @given(
        st.lists(st.integers(0, 3), max_size=9),
        st.lists(st.integers(-50, 50), min_size=30, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_segment_median_matches_statistics(self, rows, pool):
        import statistics

        ref_rows = np.sort(np.array(rows, dtype=np.int64))
        values = np.array(pool[: len(rows)], dtype=np.int64)
        offsets = group_offsets(ref_rows, 4)
        counts = segment_counts(offsets)
        ordered, lo, hi = segment_median_positions(values, ref_rows, offsets)
        for i in range(4):
            if not counts[i]:
                continue
            segment = values[offsets[i]:offsets[i + 1]].tolist()
            got = (float(ordered[lo[i]]) + float(ordered[hi[i]])) / 2
            assert got == float(statistics.median(segment))
