"""Result cache: plan tokens, LRU behaviour, fingerprints, integration."""

import pytest

from repro.engine.context import ExecutionContext
from repro.gdm import Dataset, GenomicRegion, Metadata, RegionSchema, Sample
from repro.gmql.lang import compile_program, execute, optimize, plan_program
from repro.store.cache import (
    ResultCache,
    plan_token,
    reset_result_cache,
    result_cache,
)


def region(chrom, left, right):
    return GenomicRegion(chrom, left, right, "*", ())


def make_dataset(name="DATA", shift=0):
    return Dataset(
        name,
        RegionSchema.empty(),
        [
            Sample(
                1,
                [region("chr1", 10 + shift, 60 + shift),
                 region("chr2", 0, 40)],
                Metadata({"cell": "A"}),
            ),
            Sample(
                2,
                [region("chr1", 30, 90)],
                Metadata({"cell": "B"}),
            ),
        ],
        validate=False,
    )


PROGRAM = "OUT = SELECT(cell == 'A') DATA; MATERIALIZE OUT;"


@pytest.fixture(autouse=True)
def isolated_cache():
    reset_result_cache()
    yield
    reset_result_cache()


class TestPlanToken:
    def test_primitives(self):
        assert plan_token(None) == "None"
        assert plan_token(5) == "5"
        assert plan_token("x") == "'x'"

    def test_dict_order_insensitive(self):
        assert plan_token({"a": 1, "b": 2}) == plan_token({"b": 2, "a": 1})

    def test_value_objects(self):
        from repro.gmql.genometric import DistLess

        assert plan_token(DistLess(10)) == plan_token(DistLess(10))
        assert plan_token(DistLess(10)) != plan_token(DistLess(11))


class TestResultCacheLRU:
    def test_hit_miss_counters(self):
        cache = ResultCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", "A")
        assert cache.get("a") == "A"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", "A")
        cache.put("b", "B")
        cache.get("a")            # refresh a
        cache.put("c", "C")       # evicts b
        assert "a" in cache and "c" in cache
        assert cache.get("b") is None
        assert cache.stats()["evictions"] == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", "A")
        assert len(cache) == 0


class TestFingerprints:
    def plan(self, datasets):
        compiled = optimize(compile_program(PROGRAM))
        return plan_program(compiled, engine="naive", datasets=datasets)

    def root(self, datasets):
        return self.plan(datasets).outputs["OUT"]

    def test_stable_across_plannings(self):
        data = make_dataset()
        assert (
            self.root({"DATA": data}).fingerprint
            == self.root({"DATA": data}).fingerprint
        )

    def test_content_equal_datasets_share_fingerprints(self):
        assert (
            self.root({"DATA": make_dataset()}).fingerprint
            == self.root({"DATA": make_dataset()}).fingerprint
        )

    def test_dataset_name_does_not_matter(self):
        renamed = make_dataset().with_name("ELSE")
        assert (
            self.root({"DATA": renamed}).fingerprint
            == self.root({"DATA": make_dataset()}).fingerprint
        )

    def test_content_changes_fingerprint(self):
        assert (
            self.root({"DATA": make_dataset()}).fingerprint
            != self.root({"DATA": make_dataset(shift=1)}).fingerprint
        )

    def test_operator_params_change_fingerprint(self):
        other = "OUT = SELECT(cell == 'B') DATA; MATERIALIZE OUT;"
        compiled = optimize(compile_program(other))
        root = plan_program(
            compiled, engine="naive", datasets={"DATA": make_dataset()}
        ).outputs["OUT"]
        assert root.fingerprint != self.root({"DATA": make_dataset()}).fingerprint

    def test_no_datasets_no_fingerprint(self):
        assert self.root(None).fingerprint is None


class TestCacheIntegration:
    def test_warm_run_hits_and_matches_cold(self):
        data = make_dataset()
        cold_ctx = ExecutionContext(result_cache=True)
        cold = execute(PROGRAM, {"DATA": data}, engine="naive",
                       context=cold_ctx)
        assert cold_ctx.metrics.counter("result_cache.misses") >= 1
        warm_ctx = ExecutionContext(result_cache=True)
        warm = execute(PROGRAM, {"DATA": data}, engine="naive",
                       context=warm_ctx)
        assert warm_ctx.metrics.counter("result_cache.hits") >= 1
        assert (
            list(cold["OUT"].region_rows()) == list(warm["OUT"].region_rows())
        )
        assert cold["OUT"].name == warm["OUT"].name

    def test_cache_disabled_by_default(self):
        data = make_dataset()
        for __ in range(2):
            ctx = ExecutionContext()
            execute(PROGRAM, {"DATA": data}, engine="naive", context=ctx)
            assert ctx.metrics.counter("result_cache.hits") == 0
            assert ctx.metrics.counter("result_cache.misses") == 0
        assert len(result_cache()) == 0

    def test_content_change_misses(self):
        ctx = ExecutionContext(result_cache=True)
        execute(PROGRAM, {"DATA": make_dataset()}, engine="naive", context=ctx)
        ctx2 = ExecutionContext(result_cache=True)
        execute(
            PROGRAM, {"DATA": make_dataset(shift=3)}, engine="naive",
            context=ctx2,
        )
        assert ctx2.metrics.counter("result_cache.hits") == 0

    def test_mutating_a_dataset_invalidates(self):
        data = make_dataset()
        ctx = ExecutionContext(result_cache=True)
        execute(PROGRAM, {"DATA": data}, engine="naive", context=ctx)
        data.add_sample(
            Sample(9, [region("chr1", 0, 5)], Metadata({"cell": "A"}))
        )
        ctx2 = ExecutionContext(result_cache=True)
        results = execute(PROGRAM, {"DATA": data}, engine="naive",
                          context=ctx2)
        assert ctx2.metrics.counter("result_cache.hits") == 0
        # The new sample flows into the fresh result (ids are renumbered
        # by the operator, so count content instead).
        assert len(results["OUT"]) == 2
        assert results["OUT"].region_count() == 3

    def test_analyze_marks_cached_nodes(self):
        from repro.gmql.lang import explain_analyze

        data = make_dataset()
        explain_analyze(
            PROGRAM, {"DATA": data}, engine="naive",
            context=ExecutionContext(result_cache=True),
        )
        __, physical, context = explain_analyze(
            PROGRAM, {"DATA": data}, engine="naive",
            context=ExecutionContext(result_cache=True),
        )
        text = physical.explain(analyze=True)
        assert "backend=cache" in text
        assert "cached" in text
        assert context.metrics.counter("result_cache.hits") >= 1


class TestDiskCache:
    """The second cache level: pickled entries beside the store."""

    def test_put_persists_and_fresh_cache_serves_from_disk(self, tmp_path):
        first = ResultCache(capacity=4, directory=str(tmp_path))
        dataset = make_dataset()
        first.put("fp", dataset)
        assert first.disk_stores == 1
        # A brand-new cache (a fresh process) misses in memory but hits
        # the file -- no recompute.
        second = ResultCache(capacity=4, directory=str(tmp_path))
        loaded = second.get("fp")
        assert loaded is not None
        assert list(loaded.region_rows()) == list(dataset.region_rows())
        assert second.disk_hits == 1
        assert second.hits == 1
        assert second.misses == 0

    def test_disk_hit_enters_memory_lru(self, tmp_path):
        first = ResultCache(capacity=4, directory=str(tmp_path))
        first.put("fp", make_dataset())
        second = ResultCache(capacity=4, directory=str(tmp_path))
        second.get("fp")
        second.get("fp")
        assert second.disk_hits == 1   # second lookup is pure memory
        assert second.hits == 2

    def test_existing_file_never_rewritten(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        cache.put("fp", make_dataset())
        cache.put("fp", make_dataset())
        assert cache.disk_stores == 1  # content-addressed: write once

    def test_corrupt_file_degrades_to_miss(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        cache.put("fp", make_dataset())
        path = cache._path("fp")
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        fresh = ResultCache(capacity=4, directory=str(tmp_path))
        assert fresh.get("fp") is None
        assert fresh.misses == 1

    def test_memory_eviction_keeps_files_clear_removes_them(self, tmp_path):
        import os

        cache = ResultCache(capacity=1, directory=str(tmp_path))
        cache.put("a", make_dataset())
        cache.put("b", make_dataset(shift=5))   # evicts "a" from memory
        assert cache.evictions == 1
        files = [n for n in os.listdir(tmp_path) if n.endswith(".result")]
        assert len(files) == 2                  # the file backs restarts
        cache.clear()
        files = [n for n in os.listdir(tmp_path) if n.endswith(".result")]
        assert files == []

    def test_no_directory_means_no_disk(self):
        cache = ResultCache(capacity=4, directory=None)
        cache.put("fp", make_dataset())
        assert cache.disk_stores == 0
        assert ResultCache(capacity=4, directory=None).get("fp") is None

    def test_directory_defaults_beside_store_root(self, tmp_path):
        from repro.store.persist import set_store_root

        set_store_root(str(tmp_path))
        try:
            cache = ResultCache(capacity=4)
            assert cache.directory == str(tmp_path / "results")
        finally:
            set_store_root(None)

    def test_query_results_survive_a_simulated_restart(self, tmp_path):
        from repro.store.persist import set_store_root

        set_store_root(str(tmp_path), sync=True)
        try:
            # The autouse fixture built the global cache before the root
            # existed; rebuild it so it resolves <root>/results.
            reset_result_cache()
            dataset = make_dataset()
            context = ExecutionContext(result_cache=True)
            cold = execute(PROGRAM, {"DATA": dataset}, engine="columnar",
                           context=context)
            # Simulated restart: fresh global cache, fresh dataset object.
            reset_result_cache()
            context2 = ExecutionContext(result_cache=True)
            warm = execute(PROGRAM, {"DATA": make_dataset()},
                           engine="columnar", context=context2)
            stats = result_cache().stats()
            assert stats["disk_hits"] >= 1
            assert stats["misses"] == 0
            assert list(cold["OUT"].region_rows()) == list(
                warm["OUT"].region_rows()
            )
        finally:
            set_store_root(None)
