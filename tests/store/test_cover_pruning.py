"""Dead-bin pruning for the COVER sweep: soundness and accounting.

``prune_dead_bins`` drops regions whose whole zone-map bin span counts
below the clamped lower threshold -- positions there can never qualify,
so removal must not change a single output row for *any* COVER variant.
These tests hold the pruned sweep byte-identical to the unpruned one,
pin the no-op guards (threshold < 2, missing bin size, pathological bin
spans), and check the ``store.partitions_pruned`` counter reaches the
execution context through both the columnar and parallel backends.
"""

import random

import pytest

from repro.engine.context import ExecutionContext
from repro.gdm import (
    Dataset,
    GenomicRegion,
    Metadata,
    RegionSchema,
    Sample,
    chromosome_sort_key,
    region,
)
from repro.gmql.lang import execute
from repro.store import SampleBlocks
from repro.store import cover_kernels
from repro.store.cover_kernels import (
    block_cover_columns,
    group_cover_rows,
    prune_dead_bins,
)

BIN = 64
VARIANTS = ("COVER", "FLAT", "SUMMIT", "HISTOGRAM")

#: Two coincident regions in the first bin (depth 2 qualifies at lo=2)
#: plus one isolated singleton far away (its bins are dead at lo=2).
SPARSE = [
    [("chr1", 10, 60, "+"), ("chr1", 40 * BIN, 30, "*")],
    [("chr1", 10, 60, "-")],
]


def make_blocks(groups):
    return [
        SampleBlocks(
            None,
            [
                GenomicRegion(chrom, pos, pos + width, strand)
                for chrom, pos, width, strand in spec
            ],
            BIN,
        )
        for spec in groups
    ]


def chr1_parts(groups, variant):
    return [
        block_cover_columns(blocks.chroms["chr1"], variant, with_pairs=True)
        for blocks in make_blocks(groups)
    ]


def sweep_rows(groups, lo, hi, variant, bin_size=None, on_pruned=None):
    return [
        (chrom, left, right, depth)
        for chrom, lefts, rights, depths in group_cover_rows(
            make_blocks(groups), lo, hi, variant,
            bin_size=bin_size, on_pruned=on_pruned,
        )
        for left, right, depth in zip(
            lefts.tolist(), rights.tolist(), depths.tolist()
        )
    ]


class TestPruneDeadBins:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_prunes_isolated_singletons(self, variant):
        parts, pruned = prune_dead_bins(
            chr1_parts(SPARSE, variant), 2, BIN, variant
        )
        assert pruned >= 1
        # The lonely region was dropped from its part outright.
        assert parts[0][0].size == 1
        assert parts[1][0].size == 1

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_threshold_below_two_is_a_no_op(self, variant):
        parts, pruned = prune_dead_bins(
            chr1_parts(SPARSE, variant), 1, BIN, variant
        )
        assert pruned == 0
        assert all(p[0].size == len(spec) for p, spec in zip(parts, SPARSE))

    @pytest.mark.parametrize("bin_size", [None, 0])
    def test_missing_bin_size_is_a_no_op(self, bin_size):
        __, pruned = prune_dead_bins(
            chr1_parts(SPARSE, "COVER"), 2, bin_size, "COVER"
        )
        assert pruned == 0

    def test_pathological_bin_span_skips_pruning(self, monkeypatch):
        # The per-bin count pass allocates O(span); a giant sparse span
        # must fall back to the plain sweep instead.
        monkeypatch.setattr(cover_kernels, "PRUNE_MAX_BINS", 8)
        __, pruned = prune_dead_bins(
            chr1_parts(SPARSE, "COVER"), 2, BIN, "COVER"
        )
        assert pruned == 0

    def test_output_arity_matches_the_sweep_consumers(self):
        cover_parts, __ = prune_dead_bins(
            chr1_parts(SPARSE, "COVER"), 2, BIN, "COVER"
        )
        flat_parts, __ = prune_dead_bins(
            chr1_parts(SPARSE, "FLAT"), 2, BIN, "FLAT"
        )
        # left_stops is kept only where FLAT's extent pass needs it.
        assert {len(part) for part in cover_parts} == {3}
        assert {len(part) for part in flat_parts} == {4}

    def test_zero_length_regions_drop_from_pruned_parts(self):
        groups = [
            [("chr1", 10, 60, "+"), ("chr1", 30, 0, "*"),
             ("chr1", 40 * BIN, 30, "*")],
            [("chr1", 10, 60, "-")],
        ]
        parts, pruned = prune_dead_bins(
            chr1_parts(groups, "COVER"), 2, BIN, "COVER"
        )
        assert pruned >= 1
        assert parts[0][0].size == 1  # zero-length + singleton both gone


def random_sparse_groups(seed):
    """Clusters of coincident regions plus scattered singletons."""
    rng = random.Random(seed)
    groups = []
    for __ in range(rng.randint(1, 4)):
        spec = []
        for __r in range(rng.randint(0, 14)):
            chrom = rng.choice(["chr1", "chr2", "chrX"])
            if rng.random() < 0.5:
                pos = rng.choice([0, BIN - 1, BIN, 2 * BIN])  # clustered
            else:
                pos = rng.randint(0, 200) * BIN  # likely isolated
            spec.append(
                (chrom, pos, rng.choice([0, 1, BIN // 2, 3 * BIN]),
                 rng.choice("+-*"))
            )
        groups.append(spec)
    return groups


class TestPrunedSweepDifferential:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("lo,hi", [(2, 1 << 62), (3, 3)])
    def test_pruned_sweep_is_byte_identical(self, variant, seed, lo, hi):
        groups = random_sparse_groups(seed)
        assert sweep_rows(groups, lo, hi, variant, bin_size=BIN) == \
            sweep_rows(groups, lo, hi, variant, bin_size=None)

    def test_on_pruned_reports_eliminated_bins(self):
        counts = []
        sweep_rows(SPARSE, 2, 1 << 62, "COVER", bin_size=BIN,
                   on_pruned=counts.append)
        assert sum(counts) >= 1


def sparse_dataset() -> Dataset:
    """Three samples: one shared hot cluster, many lonely singletons.

    Singletons sit in distinct ``DEFAULT_BIN_SIZE`` (100 kb) zone-map
    bins, so the engines' dead-bin pass has something to eliminate.
    """
    rng = random.Random(31)
    ds = Dataset("DATA", RegionSchema())
    for sid in range(1, 4):
        regions = [region("chr1", 100, 200, "+")]
        for i in range(12):
            pos = (3 * i + sid) * 300_000 + 5_000
            regions.append(region("chr1", pos, pos + rng.randint(5, 40)))
        regions.sort(
            key=lambda r: (chromosome_sort_key(r.chrom), r.left, r.right)
        )
        ds.add_sample(Sample(sid, regions, Metadata({"s": str(sid)})))
    return ds


class TestCounterThroughEngines:
    PROGRAM = "R = COVER(2, ANY) DATA; MATERIALIZE R;"

    @pytest.mark.parametrize("engine", ["columnar", "parallel"])
    def test_counter_and_identity(self, engine):
        sources = {"DATA": sparse_dataset()}
        expected = execute(self.PROGRAM, dict(sources), engine="naive")
        context = ExecutionContext()
        actual = execute(
            self.PROGRAM, dict(sources), engine=engine, context=context
        )
        assert list(actual["R"].region_rows()) == list(
            expected["R"].region_rows()
        )
        assert context.metrics.counter("store.partitions_pruned") > 0
