"""The persisted store: layout, atomicity, mmap handles, residency budget."""

import json
import os
import threading

import numpy as np
import pytest

from repro.gdm import Dataset, GenomicRegion, Metadata, RegionSchema, Sample
from repro.store import DatasetStore
from repro.store.persist import (
    BLOCK_COLUMNS,
    MANIFEST_NAME,
    SEGMENTS_NAME,
    UNION_KEY,
    PersistedStore,
    ResidencyLedger,
    atomic_write_blob,
    close_opened_segments,
    map_blob,
    mmap_descriptor,
    open_segment,
    persist_store,
    reset_residency_ledger,
    set_store_root,
    store_directory,
    store_root,
)

BIN = 100


@pytest.fixture(autouse=True)
def isolated_store_state():
    """No test leaks a store root, ledger charge or segment memo."""
    set_store_root(None)
    reset_residency_ledger(None)
    yield
    set_store_root(None)
    reset_residency_ledger(None)
    close_opened_segments()


def region(chrom, left, right, strand="*", *values):
    return GenomicRegion(chrom, left, right, strand, tuple(values))


def make_dataset(name="D"):
    samples = [
        Sample(
            1,
            [
                region("chr1", 0, 50),
                region("chr1", 120, 120),   # zero-length
                region("chr2", 30, 260),    # spans bins
            ],
            Metadata({"kind": "ref"}),
        ),
        Sample(
            2,
            [region("chr1", 40, 90), region("chr1", 99, 101)],
            Metadata({"kind": "exp"}),
        ),
    ]
    return Dataset(name, RegionSchema.empty(), samples, validate=False)


def all_columns(blocks):
    """Every persisted column of every chromosome, concrete."""
    out = {}
    for chrom, block in blocks.chroms.items():
        entry = blocks.zone_map.entries[chrom]
        out[chrom] = {
            "starts": block.starts.tolist(),
            "stops": block.stops.tolist(),
            "strands": block.strands.tolist(),
            "index": block.index.tolist(),
            "sorted_starts": block.sorted_starts.tolist(),
            "sorted_stops": block.sorted_stops.tolist(),
            "left_order": block.left_order.tolist(),
            "left_stops": block.left_stops.tolist(),
            "zero_positions": block.zero_positions.tolist(),
            "max_width": block.max_width,
            "bins": entry.bins.tolist(),
            "zone": (entry.count, entry.min_start, entry.max_start,
                     entry.min_stop, entry.max_stop),
        }
    return out


class TestPersistRoundTrip:
    def test_persist_then_open_is_byte_identical(self, tmp_path):
        dataset = make_dataset()
        memory_store = DatasetStore(dataset, BIN, root=None)
        expected = {
            sample.id: all_columns(memory_store.blocks(sample))
            for sample in dataset
        }
        expected_union = all_columns(memory_store.union_blocks())

        disk_store = DatasetStore(
            dataset, BIN, root=str(tmp_path), sync=True
        )
        for sample in dataset:
            disk_store.blocks(sample)   # builds + persists synchronously
        final = store_directory(tmp_path, disk_store.digest(), BIN)
        assert (final / MANIFEST_NAME).is_file()
        assert (final / SEGMENTS_NAME).is_file()

        fresh = DatasetStore(make_dataset(), BIN, root=str(tmp_path))
        for sample in dataset:
            assert all_columns(fresh.blocks(sample)) == expected[sample.id]
        assert all_columns(fresh.union_blocks()) == expected_union
        assert fresh.blocks_mapped == 3  # 2 samples + union
        assert fresh.blocks_built == 0

    def test_mapped_blocks_are_memmap_views_costing_no_residency(
        self, tmp_path
    ):
        dataset = make_dataset()
        store = DatasetStore(dataset, BIN, root=str(tmp_path), sync=True)
        for sample in dataset:
            store.blocks(sample)
        fresh = DatasetStore(make_dataset(), BIN, root=str(tmp_path))
        blocks = fresh.blocks(next(iter(dataset)))
        base = blocks.chroms["chr1"].starts
        while isinstance(getattr(base, "base", None), np.ndarray):
            base = base.base
        assert isinstance(base, np.memmap)
        assert fresh.resident_bytes() == 0

    def test_no_tmp_directory_left_behind(self, tmp_path):
        store = DatasetStore(
            make_dataset(), BIN, root=str(tmp_path), sync=True
        )
        store.union_blocks()
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_persist_is_idempotent_and_race_tolerant(self, tmp_path):
        dataset = make_dataset()
        store = DatasetStore(dataset, BIN, root=str(tmp_path), sync=True)
        store.union_blocks()
        final = store_directory(tmp_path, store.digest(), BIN)
        before = (final / SEGMENTS_NAME).stat().st_mtime_ns
        # A second persist (another thread/process losing the race)
        # observes the final manifest and leaves the store untouched.
        other = DatasetStore(make_dataset(), BIN, root=str(tmp_path))
        assert persist_store(other) == final
        assert (final / SEGMENTS_NAME).stat().st_mtime_ns == before

    def test_manifest_lists_every_column(self, tmp_path):
        store = DatasetStore(
            make_dataset(), BIN, root=str(tmp_path), sync=True
        )
        store.union_blocks()
        final = store_directory(tmp_path, store.digest(), BIN)
        manifest = json.loads((final / MANIFEST_NAME).read_text())
        assert UNION_KEY in manifest["samples"]
        for entry in manifest["samples"].values():
            for info in entry["chroms"].values():
                assert set(info["columns"]) == set(BLOCK_COLUMNS)


class TestOpenRejections:
    def _persisted(self, tmp_path):
        store = DatasetStore(
            make_dataset(), BIN, root=str(tmp_path), sync=True
        )
        store.union_blocks()
        return store.digest()

    def test_missing_directory(self, tmp_path):
        assert PersistedStore.open(tmp_path, "no-such-digest", BIN) is None

    def test_wrong_bin_size(self, tmp_path):
        digest = self._persisted(tmp_path)
        assert PersistedStore.open(tmp_path, digest, BIN + 1) is None

    def test_version_mismatch_degrades_to_none(self, tmp_path):
        digest = self._persisted(tmp_path)
        final = store_directory(tmp_path, digest, BIN)
        manifest = json.loads((final / MANIFEST_NAME).read_text())
        manifest["version"] = 999
        (final / MANIFEST_NAME).write_text(json.dumps(manifest))
        assert PersistedStore.open(tmp_path, digest, BIN) is None

    def test_corrupt_manifest_degrades_to_none(self, tmp_path):
        digest = self._persisted(tmp_path)
        final = store_directory(tmp_path, digest, BIN)
        (final / MANIFEST_NAME).write_text("{not json")
        assert PersistedStore.open(tmp_path, digest, BIN) is None

    def test_missing_segments_degrades_to_none(self, tmp_path):
        digest = self._persisted(tmp_path)
        final = store_directory(tmp_path, digest, BIN)
        os.unlink(final / SEGMENTS_NAME)
        assert PersistedStore.open(tmp_path, digest, BIN) is None

    def test_open_miss_falls_back_to_in_memory_build(self, tmp_path):
        store = DatasetStore(make_dataset(), BIN, root=str(tmp_path))
        blocks = store.blocks(next(iter(store._dataset)))
        assert store.blocks_built == 1
        assert blocks.chroms["chr1"].starts.tolist() == [0, 120]


class TestMmapHandles:
    def test_descriptor_round_trip(self, tmp_path):
        dataset = make_dataset()
        store = DatasetStore(dataset, BIN, root=str(tmp_path), sync=True)
        for sample in dataset:
            store.blocks(sample)
        fresh = DatasetStore(make_dataset(), BIN, root=str(tmp_path))
        for sample in dataset:
            blocks = fresh.blocks(sample)
            for chrom, block in blocks.chroms.items():
                for name in ("starts", "stops", "sorted_starts",
                             "left_stops", "index"):
                    array = getattr(block, name)
                    if array.size == 0:
                        continue
                    descriptor = mmap_descriptor(array)
                    assert descriptor is not None, (sample.id, chrom, name)
                    reopened = open_segment(*descriptor)
                    np.testing.assert_array_equal(reopened, array)

    def test_in_memory_arrays_have_no_descriptor(self):
        assert mmap_descriptor(np.arange(10)) is None
        assert mmap_descriptor(np.empty(0, dtype=np.int64)) is None

    def test_open_segment_memoises_per_path(self, tmp_path):
        dataset = make_dataset()
        store = DatasetStore(dataset, BIN, root=str(tmp_path), sync=True)
        store.union_blocks()
        fresh = DatasetStore(make_dataset(), BIN, root=str(tmp_path))
        blocks = fresh.union_blocks()
        d1 = mmap_descriptor(blocks.chroms["chr1"].starts)
        d2 = mmap_descriptor(blocks.chroms["chr2"].starts)
        close_opened_segments()
        a = open_segment(*d1)
        b = open_segment(*d2)
        assert a.base is not None and b.base is not None
        # One underlying map serves both views of the same segment file.
        assert a.base.base is b.base.base


class TestBackgroundPersist:
    def test_background_thread_persists_eventually(self, tmp_path):
        dataset = make_dataset()
        store = DatasetStore(dataset, BIN, root=str(tmp_path), sync=False)
        store.union_blocks()
        assert isinstance(store._persist_thread, threading.Thread)
        store.wait_for_persist(timeout=30)
        final = store_directory(tmp_path, store.digest(), BIN)
        assert (final / MANIFEST_NAME).is_file()

    def test_no_root_means_no_disk_and_no_thread(self):
        store = DatasetStore(make_dataset(), BIN, root=None)
        store.union_blocks()
        assert store._persist_thread is None
        assert persist_store(store) is None


class TestStagedBlobs:
    def test_blob_round_trip(self, tmp_path):
        path = tmp_path / "x.staged"
        atomic_write_blob(path, (b"meta-bytes", b"region-bytes"))
        mapped, meta_len, region_len = map_blob(path)
        try:
            assert (meta_len, region_len) == (10, 12)
        finally:
            mapped.close()

    def test_foreign_magic_rejected(self, tmp_path):
        path = tmp_path / "x.staged"
        path.write_bytes(b"NOTMAGIC" + b"\0" * 16 + b"payload")
        assert map_blob(path) is None

    def test_missing_and_truncated_files_rejected(self, tmp_path):
        assert map_blob(tmp_path / "absent.staged") is None
        short = tmp_path / "short.staged"
        short.write_bytes(b"RS")
        assert map_blob(short) is None


class TestResidencyLedger:
    def test_budget_evicts_least_recently_used(self, tmp_path):
        dataset = make_dataset()
        probe = DatasetStore(dataset, BIN, root=None)
        one_sample_bytes = probe.blocks(next(iter(dataset))).nbytes()

        reset_residency_ledger(int(one_sample_bytes * 1.5))
        store = DatasetStore(make_dataset(), BIN, root=None)
        samples = list(store._dataset)
        store.blocks(samples[0])
        store.blocks(samples[1])   # overflows: sample 1 evicted
        assert store.blocks_evicted >= 1
        assert samples[0].id not in store._samples
        # Evicted blocks rebuild transparently on next use.
        rebuilt = store.blocks(samples[0])
        assert rebuilt.chroms["chr1"].starts.tolist() == [0, 120]

    def test_freshly_charged_block_is_never_its_own_victim(self):
        reset_residency_ledger(1)  # absurdly small budget
        store = DatasetStore(make_dataset(), BIN, root=None)
        blocks = store.blocks(next(iter(store._dataset)))
        # The block just built must stay resident for the caller.
        assert store._samples  # not evicted out from under us

    def test_mapped_blocks_are_never_charged(self, tmp_path):
        dataset = make_dataset()
        builder = DatasetStore(dataset, BIN, root=str(tmp_path), sync=True)
        for sample in dataset:
            builder.blocks(sample)
        ledger = reset_residency_ledger(None)
        fresh = DatasetStore(make_dataset(), BIN, root=str(tmp_path))
        for sample in dataset:
            fresh.blocks(sample)
        assert fresh.blocks_mapped > 0
        assert ledger.resident_bytes() == 0

    def test_touch_refreshes_recency(self):
        ledger = ResidencyLedger(budget_bytes=250)

        class Owner:
            def __init__(self):
                self.evicted = []

            def _evict_resident(self, key):
                self.evicted.append(key)

        owner = Owner()
        ledger.charge(owner, "a", 100)
        ledger.charge(owner, "b", 100)
        ledger.touch(owner, "a")           # "b" is now least recent
        ledger.charge(owner, "c", 100)     # overflow evicts "b"
        assert owner.evicted == ["b"]
        assert ledger.evictions == 1


class TestStoreRootResolution:
    def test_configured_root_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", "/env/root")
        assert store_root() == "/env/root"
        set_store_root("/configured")
        assert store_root() == "/configured"
        set_store_root(None)
        assert store_root() == "/env/root"

    def test_dataset_store_picks_up_process_root(self, tmp_path):
        set_store_root(str(tmp_path), sync=True)
        store = DatasetStore(make_dataset(), BIN)
        assert store.root == str(tmp_path)
        assert store.sync is True
