"""Differential tests of the event-sweep coverage kernels.

The oracle is the naive interval machinery itself --
:func:`cover_intervals` / :func:`flat_intervals` /
:func:`summit_intervals` / :func:`histogram_intervals` over region
lists, and brute-force :meth:`GenomicRegion.overlaps` for DIFFERENCE --
which defines both the row *set* and the row *order* (the columnar and
parallel backends must be byte-identical to the naive engine).  Inputs
bake in the usual nasties: zero-length regions, coincident starts and
ends, intervals straddling the BIN=64 zone-map grid, mixed strands,
multi-sample splits and chromosomes that appear in one sample only.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdm import GenomicRegion
from repro.intervals import (
    AccumulationBound,
    cover_intervals,
    flat_intervals,
    histogram_intervals,
    summit_intervals,
)
from repro.store import SampleBlocks
from repro.store.cover_kernels import (
    group_cover_rows,
    mask_chrom_events,
    multiset_subtract,
    overlap_any_mask,
    sweep_profile,
    wide_sorted_events,
)

BIN = 64
VARIANTS = ("COVER", "FLAT", "SUMMIT", "HISTOGRAM")
#: ``AccumulationBound.any()`` resolved as an upper bound.
ANY_UPPER = 1 << 62

#: Positions biased toward the BIN=64 grid; widths include zero-length.
_POSITIONS = st.one_of(
    st.integers(0, 6 * BIN),
    st.sampled_from([0, BIN - 1, BIN, BIN + 1, 2 * BIN, 3 * BIN]),
)
_WIDTHS = st.one_of(
    st.integers(0, 3 * BIN),
    st.sampled_from([0, 1, BIN, 2 * BIN]),
)
_INTERVALS = st.tuples(
    st.sampled_from(["chr1", "chr2", "chrX"]),
    _POSITIONS,
    _WIDTHS,
    st.sampled_from(["+", "-", "*"]),
)
#: A COVER group: up to four samples with independent region lists.
_GROUPS = st.lists(
    st.lists(_INTERVALS, max_size=18), min_size=1, max_size=4
)
#: (min_acc, max_acc) pairs, including the resolved ANY upper bound.
_BOUNDS = st.tuples(
    st.integers(0, 4),
    st.sampled_from([1, 2, 3, 4, ANY_UPPER]),
)


def make_regions(spec):
    return [
        GenomicRegion(chrom, pos, pos + width, strand)
        for chrom, pos, width, strand in spec
    ]


def kernel_rows(groups, lo, hi, variant):
    blocks_list = [
        SampleBlocks(None, make_regions(spec), BIN) for spec in groups
    ]
    return [
        (chrom, left, right, depth)
        for chrom, lefts, rights, depths in group_cover_rows(
            blocks_list, lo, hi, variant
        )
        for left, right, depth in zip(
            lefts.tolist(), rights.tolist(), depths.tolist()
        )
    ]


def naive_rows(groups, lo, hi, variant):
    regions = [region for spec in groups for region in make_regions(spec)]
    if variant == "COVER":
        return [
            (chrom, left, right, depth)
            for chrom, left, right, depth, __ in cover_intervals(
                regions, lo, hi
            )
        ]
    if variant == "FLAT":
        return [
            (chrom, left, right, depth)
            for chrom, left, right, depth, __ in flat_intervals(
                regions, lo, hi
            )
        ]
    if variant == "SUMMIT":
        return list(summit_intervals(regions, lo, hi))
    return list(histogram_intervals(regions, lo, hi))


class TestCoverFamilyDifferential:
    @pytest.mark.parametrize("variant", VARIANTS)
    @given(groups=_GROUPS, bounds=_BOUNDS)
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, variant, groups, bounds):
        lo, hi = bounds
        assert kernel_rows(groups, lo, hi, variant) == naive_rows(
            groups, lo, hi, variant
        )

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize(
        "min_acc,max_acc",
        [
            (AccumulationBound.exact(1), AccumulationBound.any()),
            (AccumulationBound.exact(2), AccumulationBound.all()),
            (AccumulationBound.all(offset=1, scale=0.5),
             AccumulationBound.any()),
            (AccumulationBound.all(), AccumulationBound.all()),
        ],
    )
    def test_resolved_any_all_bounds(self, variant, min_acc, max_acc):
        groups = [
            [("chr1", 0, 40, "+"), ("chr1", 20, 40, "-"), ("chr2", 5, 0, "*")],
            [("chr1", 30, 40, "*"), ("chr1", 30, 0, "*")],
            [("chr1", 10, 80, "+"), ("chrX", 64, 64, "-")],
        ]
        lo = min_acc.resolve(len(groups), is_lower=True)
        hi = max_acc.resolve(len(groups), is_lower=False)
        assert kernel_rows(groups, lo, hi, variant) == naive_rows(
            groups, lo, hi, variant
        )

    def test_net_zero_breakpoint_splits_histogram(self):
        # One region ends exactly where another starts: the profile keeps
        # the breakpoint, so HISTOGRAM emits two adjacent equal-depth rows.
        groups = [[("chr1", 0, 5, "+"), ("chr1", 5, 5, "+")]]
        assert kernel_rows(groups, 1, ANY_UPPER, "HISTOGRAM") == [
            ("chr1", 0, 5, 1),
            ("chr1", 5, 10, 1),
        ]
        # ...while COVER merges them into one run.
        assert kernel_rows(groups, 1, ANY_UPPER, "COVER") == [
            ("chr1", 0, 10, 1)
        ]

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_zero_length_only_chromosome_is_absent(self, variant):
        groups = [[("chr1", 10, 0, "+"), ("chr1", 10, 0, "-"),
                   ("chr2", 0, 8, "*")]]
        rows = kernel_rows(groups, 1, ANY_UPPER, variant)
        assert rows == naive_rows(groups, 1, ANY_UPPER, variant)
        assert all(row[0] == "chr2" for row in rows)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_empty_group(self, variant):
        assert kernel_rows([[]], 1, ANY_UPPER, variant) == []

    def test_flat_extends_to_contributing_regions(self):
        # The depth-2 run [20, 30) is contributed to by [0, 30) and
        # [20, 50): FLAT widens it to their full extent.
        groups = [[("chr1", 0, 30, "+")], [("chr1", 20, 30, "-")]]
        assert kernel_rows(groups, 2, ANY_UPPER, "FLAT") == [
            ("chr1", 0, 50, 2)
        ]


class TestMultisetSubtract:
    @given(
        st.lists(st.integers(0, 20), max_size=30),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_counter_subtraction(self, values, data):
        from collections import Counter

        removals = data.draw(
            st.lists(st.sampled_from(values), max_size=len(values))
            if values
            else st.just([])
        )
        counted = Counter(removals)
        if any(count > values.count(v) for v, count in counted.items()):
            removals = [v for v in set(removals)]  # de-dup keeps it a subset
        expected = sorted((Counter(values) - Counter(removals)).elements())
        out = multiset_subtract(
            np.sort(np.asarray(values, dtype=np.int64)),
            np.sort(np.asarray(removals, dtype=np.int64)),
        )
        assert out.tolist() == expected

    def test_wide_sorted_events_drops_zero_length(self):
        regions = make_regions(
            [("chr1", 5, 0, "+"), ("chr1", 5, 10, "+"), ("chr1", 5, 0, "-"),
             ("chr1", 2, 3, "*")]
        )
        block = SampleBlocks(None, regions, BIN).chroms["chr1"]
        starts, stops = wide_sorted_events(
            block.sorted_starts, block.sorted_stops, block.zero_positions
        )
        assert starts.tolist() == [2, 5]
        assert stops.tolist() == [5, 15]
        bounds, depths = sweep_profile(starts, stops)
        assert bounds.tolist() == [2, 5, 15]
        assert depths.tolist() == [1, 1, 0]


# -- DIFFERENCE overlap mask ---------------------------------------------------


def _overlap_oracle(ref_regions, probe_regions):
    return [
        any(ref.overlaps(probe) for probe in probe_regions)
        for ref in ref_regions
    ]


def _kernel_mask(ref_regions, probe_regions):
    ref_block = SampleBlocks(None, ref_regions, BIN).chroms["chr1"]
    probe_block = SampleBlocks(None, probe_regions, BIN).chroms["chr1"]
    ordered = overlap_any_mask(
        ref_block.starts, ref_block.stops, *mask_chrom_events(probe_block)
    )
    out = np.empty(len(ref_regions), dtype=bool)
    out[ref_block.index] = ordered
    return out.tolist()


_CHR1_INTERVALS = st.lists(
    st.tuples(_POSITIONS, _WIDTHS, st.sampled_from(["+", "-", "*"])),
    min_size=1,
    max_size=20,
)


class TestOverlapAnyMask:
    @given(_CHR1_INTERVALS, _CHR1_INTERVALS)
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, ref_spec, probe_spec):
        refs = make_regions([("chr1", *row) for row in ref_spec])
        probes = make_regions([("chr1", *row) for row in probe_spec])
        assert _kernel_mask(refs, probes) == _overlap_oracle(refs, probes)

    def test_point_on_merged_run_seam_does_not_overlap(self):
        # [0,5) + [5,10) merge into one coverage run [0,10), but a point
        # at the internal seam overlaps neither region.
        probes = make_regions([("chr1", 0, 5, "+"), ("chr1", 5, 5, "+")])
        refs = make_regions(
            [("chr1", 5, 0, "*"), ("chr1", 4, 0, "*"), ("chr1", 4, 2, "*")]
        )
        assert _kernel_mask(refs, probes) == [False, True, True]

    def test_coincident_points_never_overlap(self):
        probes = make_regions([("chr1", 7, 0, "+")])
        refs = make_regions([("chr1", 7, 0, "-"), ("chr1", 7, 0, "*")])
        assert _kernel_mask(refs, probes) == [False, False]

    def test_point_reference_at_probe_edges(self):
        probes = make_regions([("chr1", 10, 10, "+")])  # [10, 20)
        refs = make_regions(
            [("chr1", 10, 0, "*"), ("chr1", 19, 0, "*"), ("chr1", 20, 0, "*")]
        )
        assert _kernel_mask(refs, probes) == [False, True, False]

    def test_point_probe_at_reference_edges(self):
        probes = make_regions([("chr1", 30, 0, "+")])
        refs = make_regions(
            [("chr1", 20, 10, "*"), ("chr1", 30, 10, "*"), ("chr1", 29, 2, "*")]
        )
        assert _kernel_mask(refs, probes) == [False, False, True]
