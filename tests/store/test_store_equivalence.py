"""Differential properties: the store, pruning and cache never change results.

Three invariants, checked over hypothesis-generated datasets seeded with
bin-boundary nasties (zero-length regions, regions ending exactly on a
bin edge, bin-spanning regions):

* store on vs store off (``use_store`` config) -- byte-identical on
  every engine that consults the store;
* cached vs cold-cache runs -- byte-identical, names included;
* every engine agrees with the naive reference.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.context import ExecutionContext
from repro.gdm import Dataset, GenomicRegion, Metadata, RegionSchema, Sample
from repro.gmql.lang import execute
from repro.store.cache import reset_result_cache

BIN = 64  # small bin size so spanning/edge cases actually cross bins

PROGRAM = """
A = SELECT(side == 'left') DATA;
B = SELECT(side == 'right') DATA;
M = MAP() A B;
D = DIFFERENCE() A B;
C = COVER(1, ANY) A;
J = JOIN(DLE(50); output: LEFT) A B;
MATERIALIZE M;
MATERIALIZE D;
MATERIALIZE C;
MATERIALIZE J;
"""

#: Interval strategy biased toward bin boundaries: starts at/near
#: multiples of BIN, zero-length intervals, widths ending exactly on an
#: edge, and spans covering several bins.
_POSITIONS = st.one_of(
    st.integers(0, 5 * BIN),
    st.sampled_from([0, BIN - 1, BIN, BIN + 1, 2 * BIN, 3 * BIN]),
)
_WIDTHS = st.one_of(
    st.integers(0, 3 * BIN),            # includes zero-length
    st.sampled_from([0, BIN, 2 * BIN]),  # ends exactly on a bin edge
)
_INTERVALS = st.tuples(
    st.sampled_from(["chr1", "chr2"]), _POSITIONS, _WIDTHS
)


def make_dataset(left_spec, right_spec):
    samples = []
    for sample_id, (side, spec) in enumerate(
        (("left", left_spec), ("right", right_spec)), start=1
    ):
        regions = [
            GenomicRegion(chrom, pos, pos + width, "*", ())
            for chrom, pos, width in spec
        ]
        samples.append(Sample(sample_id, regions, Metadata({"side": side})))
    return Dataset("DATA", RegionSchema.empty(), samples, validate=False)


def run(dataset, engine, use_store=True, result_cache=False, bin_size=BIN):
    context = ExecutionContext(
        bin_size=bin_size,
        result_cache=result_cache,
        config={"use_store": use_store},
    )
    results = execute(PROGRAM, {"DATA": dataset}, engine=engine,
                      context=context)
    return results, context


def rows(results):
    return {
        name: (dataset.name, list(dataset.region_rows()))
        for name, dataset in results.items()
    }


@given(
    st.lists(_INTERVALS, min_size=1, max_size=12),
    st.lists(_INTERVALS, min_size=1, max_size=12),
)
@settings(max_examples=40, deadline=None)
def test_pruned_matches_unpruned_on_columnar(left_spec, right_spec):
    dataset = make_dataset(left_spec, right_spec)
    with_store, context = run(dataset, "columnar", use_store=True)
    without_store, __ = run(
        make_dataset(left_spec, right_spec), "columnar", use_store=False
    )
    assert rows(with_store) == rows(without_store)


@given(
    st.lists(_INTERVALS, min_size=1, max_size=12),
    st.lists(_INTERVALS, min_size=1, max_size=12),
)
@settings(max_examples=40, deadline=None)
def test_columnar_and_auto_match_naive(left_spec, right_spec):
    dataset = make_dataset(left_spec, right_spec)
    reference = rows(run(dataset, "naive")[0])
    for engine in ("columnar", "auto"):
        assert rows(run(dataset, engine)[0]) == reference


@given(
    st.lists(_INTERVALS, min_size=1, max_size=10),
    st.lists(_INTERVALS, min_size=1, max_size=10),
    st.sampled_from(["naive", "columnar", "auto"]),
)
@settings(max_examples=30, deadline=None)
def test_cached_matches_cold(left_spec, right_spec, engine):
    reset_result_cache()
    dataset = make_dataset(left_spec, right_spec)
    cold, cold_ctx = run(dataset, engine, result_cache=True)
    warm, warm_ctx = run(dataset, engine, result_cache=True)
    assert warm_ctx.metrics.counter("result_cache.hits") >= 1
    assert rows(cold) == rows(warm)
    reset_result_cache()


def test_parallel_matches_naive_on_boundary_cases():
    # Process pools are too slow for hypothesis; one hand-built dataset
    # packed with edge cases covers the shipped-array kernels.
    left = [
        ("chr1", 0, BIN),           # ends exactly on the first bin edge
        ("chr1", BIN, 0),           # zero-length on a bin edge
        ("chr1", BIN - 1, 2),       # straddles the edge
        ("chr1", 0, 3 * BIN),       # spans several bins
        ("chr2", 5 * BIN, 10),      # distant chromosome cluster
    ]
    right = [
        ("chr1", BIN // 2, BIN),
        ("chr1", 2 * BIN, 0),
        ("chr2", 0, 10),
    ]
    dataset = make_dataset(left, right)
    reference = rows(run(dataset, "naive")[0])
    parallel, context = run(dataset, "parallel")
    assert rows(parallel) == reference
    parallel_nostore, __ = run(dataset, "parallel", use_store=False)
    assert rows(parallel_nostore) == reference


def test_pruning_fires_on_disjoint_chromosomes():
    left = [("chr1", 0, 40), ("chr2", 0, 40)]
    right = [("chr1", 10, 10)]
    dataset = make_dataset(left, right)
    __, context = run(dataset, "columnar", use_store=True)
    assert context.metrics.counter("store.partitions_pruned") > 0
