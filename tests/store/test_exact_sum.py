"""Property tests of the exact grouped float summation.

:func:`repro.store.segment_fsum` must equal a per-segment ``math.fsum``
**bit for bit** -- including ``-0.0``/``+0.0`` signs, NaN propagation,
denormals, and the exceptions fsum raises (intermediate overflow,
``inf - inf``).  That is the contract that lets the engines' float
SUM/AVG/STD fast path replace the naive per-group Python reduction
without any tolerance.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import segment_fsum

#: Adversarial floats: denormals, signed zeros, huge magnitudes that
#: cancel, values past the 2**1000 fallback gate, NaN and infinities.
_NASTY = [
    0.0, -0.0, 1.0, -1.0, 0.1, -0.1,
    5e-324, -5e-324, 1e-308, -1e-308,
    1e16, -1e16, 1.0 + 2**-52, 2.0**53, -(2.0**53),
    1e308, -1e308, 2.0**1000, -(2.0**1000),
    math.inf, -math.inf, math.nan,
]
_VALUES = st.one_of(
    st.floats(width=64, allow_nan=True, allow_infinity=True),
    st.sampled_from(_NASTY),
)


def _offsets_for(n, data):
    cuts = data.draw(
        st.lists(st.integers(0, n), max_size=6).map(sorted)
    )
    return np.asarray([0] + cuts + [n], dtype=np.int64)


def _oracle(values, offsets):
    out = []
    for i in range(offsets.size - 1):
        segment = values[int(offsets[i]):int(offsets[i + 1])].tolist()
        out.append(math.fsum(segment))
    return out


class TestSegmentFsum:
    @given(st.lists(_VALUES, max_size=40), st.data())
    @settings(max_examples=200, deadline=None)
    def test_bit_identical_to_fsum(self, raw, data):
        values = np.asarray(raw, dtype=np.float64)
        offsets = _offsets_for(values.size, data)
        try:
            expected = _oracle(values, offsets)
        except (OverflowError, ValueError) as exc:
            # fsum raised (intermediate overflow or inf - inf): the
            # kernel must raise the same exception class.
            with pytest.raises(type(exc)):
                segment_fsum(values, offsets)
            return
        out = segment_fsum(values, offsets)
        assert [repr(float(v)) for v in out] == [
            repr(v) for v in expected
        ]

    def test_cancellation_needs_exactness(self):
        # np.sum would return 0.0 here; fsum (and the kernel) keep the 1.0.
        values = np.asarray([1e16, 1.0, -1e16], dtype=np.float64)
        offsets = np.asarray([0, 3], dtype=np.int64)
        assert float(segment_fsum(values, offsets)[0]) == 1.0

    def test_denormal_sums(self):
        values = np.asarray([5e-324, 5e-324, -5e-324, 5e-324] * 3,
                            dtype=np.float64)
        offsets = np.asarray([0, 4, 12], dtype=np.int64)
        out = segment_fsum(values, offsets)
        assert [float(v) for v in out] == [
            math.fsum(values[:4].tolist()), math.fsum(values[4:].tolist())
        ]

    def test_negative_zero_total_normalises_like_fsum(self):
        values = np.asarray([-0.0, -0.0, 1.0, -1.0], dtype=np.float64)
        offsets = np.asarray([0, 2, 4], dtype=np.int64)
        out = segment_fsum(values, offsets)
        assert [repr(float(v)) for v in out] == ["0.0", "0.0"]

    def test_empty_segments_sum_to_zero(self):
        values = np.asarray([3.5], dtype=np.float64)
        offsets = np.asarray([0, 0, 1, 1], dtype=np.int64)
        assert [float(v) for v in segment_fsum(values, offsets)] == [
            0.0, 3.5, 0.0
        ]

    def test_intermediate_overflow_raises_in_parity(self):
        values = np.asarray([1e308, 1e308, -1e308], dtype=np.float64)
        offsets = np.asarray([0, 3], dtype=np.int64)
        with pytest.raises(OverflowError):
            math.fsum(values.tolist())
        with pytest.raises(OverflowError):
            segment_fsum(values, offsets)

    def test_inf_minus_inf_raises_in_parity(self):
        values = np.asarray([math.inf, -math.inf], dtype=np.float64)
        offsets = np.asarray([0, 2], dtype=np.int64)
        with pytest.raises(ValueError):
            math.fsum(values.tolist())
        with pytest.raises(ValueError):
            segment_fsum(values, offsets)

    def test_nan_propagates(self):
        values = np.asarray([math.nan, 1.0], dtype=np.float64)
        offsets = np.asarray([0, 2], dtype=np.int64)
        assert repr(float(segment_fsum(values, offsets)[0])) == "nan"
