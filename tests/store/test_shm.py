"""Lifecycle tests for the shared-memory block protocol.

Covers the :class:`ArrayShipper` handle protocol (segment vs raw
fallback, memoisation, byte accounting), the ``REPRO_SHM`` / config
gates, and -- the part that matters operationally -- that segments are
unlinked when the owning backend closes, including when a pool task
raises mid-flight.

Note: these tests never construct ``SharedMemory`` directly
(``benchmarks/lint_repo.py`` bans that outside ``repro.store.shm``);
existence checks go through :func:`segment_exists`.
"""

import random

import numpy as np
import pytest

from repro.engine import parallel as parallel_mod
from repro.engine.context import ExecutionContext
from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region
from repro.gmql.lang import execute
from repro.store import shm as shm_mod
from repro.store.shm import (
    ArrayShipper,
    materialise,
    segment_exists,
    shm_enabled,
)

BIG = np.arange(4096, dtype=np.int64)  # comfortably over MIN_SHARED_BYTES


class TestShmEnabled:
    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shm_enabled()
        assert not shm_enabled(True)

    def test_config_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert not shm_enabled(False)
        assert shm_enabled(True)
        assert shm_enabled(None)

    def test_env_beats_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shm_enabled(True)


class TestArrayShipper:
    def test_roundtrip_through_segment(self):
        with ArrayShipper(enabled=True) as shipper:
            handle = shipper.ship(BIG)
            assert handle[0] == "shm"
            arrays, release = materialise([handle])
            np.testing.assert_array_equal(arrays[0], BIG)
            release()
            assert shipper.bytes_shared == BIG.nbytes
            assert shipper.bytes_pickled == 0

    def test_small_array_rides_pickle(self):
        with ArrayShipper(enabled=True) as shipper:
            small = np.arange(4, dtype=np.int64)
            handle = shipper.ship(small)
            assert handle[0] == "raw"
            assert handle[1] is small
            assert shipper.bytes_shared == 0
            assert shipper.bytes_pickled == small.nbytes

    def test_non_contiguous_rides_pickle(self):
        with ArrayShipper(enabled=True) as shipper:
            strided = BIG[::2]
            assert not strided.flags.c_contiguous
            assert shipper.ship(strided)[0] == "raw"

    def test_disabled_shipper_never_creates_segments(self):
        with ArrayShipper(enabled=False) as shipper:
            assert shipper.ship(BIG)[0] == "raw"
            assert shipper.segment_names() == []

    def test_handles_memoised_per_array(self):
        with ArrayShipper(enabled=True) as shipper:
            first = shipper.ship(BIG)
            second = shipper.ship(BIG)
            assert first is second
            assert len(shipper.segment_names()) == 1
            assert shipper.bytes_shared == BIG.nbytes

    def test_close_unlinks_and_is_idempotent(self):
        shipper = ArrayShipper(enabled=True)
        shipper.ship(BIG)
        names = shipper.segment_names()
        assert names and all(segment_exists(name) for name in names)
        shipper.close()
        assert shipper.segment_names() == []
        assert not any(segment_exists(name) for name in names)
        shipper.close()  # second close is a no-op

    def test_materialise_raw_passthrough(self):
        values = np.arange(8, dtype=np.int64)
        arrays, release = materialise([("raw", values)])
        assert arrays[0] is values
        release()


def _seed_dataset(seed: int = 7, n_regions: int = 400) -> Dataset:
    rng = random.Random(seed)
    schema = RegionSchema.of(("score", FLOAT))
    samples = []
    for sample_id in (1, 2):
        regions = []
        for __ in range(n_regions):
            left = rng.randint(0, 20_000)
            regions.append(
                region("chr1", left, left + rng.randint(1, 300), "*",
                       float(sample_id))
            )
        samples.append(Sample(sample_id, regions, Metadata({"kind": "t"})))
    return Dataset("DATA", schema, samples)


def _crashing_task(handles):
    arrays, release = materialise(handles)
    try:
        raise RuntimeError("worker crash injected by test")
    finally:
        release()


class TestBackendLifecycle:
    def test_crashing_worker_leaves_no_segments(self, monkeypatch):
        """A raising pool task must not leak shared-memory segments.

        ``execute`` closes the backend in a ``finally``; the shipper is
        closed after the pool drains, so every segment the parent
        created is unlinked even though the task died mid-compute.
        """
        unlinked_names = []

        class RecordingShipper(ArrayShipper):
            def close(self):
                unlinked_names.extend(self.segment_names())
                super().close()

        monkeypatch.setattr(parallel_mod, "ArrayShipper", RecordingShipper)
        monkeypatch.setattr(parallel_mod, "_count_morsel_task", _crashing_task)
        # Ship everything regardless of size so the smoke-scale dataset
        # exercises real segments.
        monkeypatch.setattr(shm_mod, "MIN_SHARED_BYTES", 0)

        dataset = _seed_dataset()
        with pytest.raises(RuntimeError, match="worker crash injected"):
            execute(
                "R = MAP() DATA DATA; MATERIALIZE R;",
                {"DATA": dataset},
                engine="parallel",
                context=ExecutionContext(
                    result_cache=False, config={"use_store": True}
                ),
            )
        assert unlinked_names, "crash path never created shm segments"
        assert not any(segment_exists(name) for name in unlinked_names)

    def test_clean_run_unlinks_segments_on_close(self, monkeypatch):
        unlinked_names = []

        class RecordingShipper(ArrayShipper):
            def close(self):
                unlinked_names.extend(self.segment_names())
                super().close()

        monkeypatch.setattr(parallel_mod, "ArrayShipper", RecordingShipper)
        monkeypatch.setattr(shm_mod, "MIN_SHARED_BYTES", 0)

        dataset = _seed_dataset()
        results = execute(
            "R = MAP() DATA DATA; MATERIALIZE R;",
            {"DATA": dataset},
            engine="parallel",
            context=ExecutionContext(
                result_cache=False, config={"use_store": True}
            ),
        )
        assert results["R"].region_count() > 0
        assert unlinked_names
        assert not any(segment_exists(name) for name in unlinked_names)

    def test_use_shm_config_false_pickles_everything(self, monkeypatch):
        monkeypatch.setattr(shm_mod, "MIN_SHARED_BYTES", 0)
        context = ExecutionContext(
            result_cache=False, config={"use_store": True, "use_shm": False}
        )
        dataset = _seed_dataset()
        execute(
            "R = MAP() DATA DATA; MATERIALIZE R;",
            {"DATA": dataset},
            engine="parallel",
            context=context,
        )
        metrics = context.metrics.snapshot()
        assert metrics.get("shm.bytes_shared", 0) == 0
        assert metrics.get("shm.bytes_pickled", 0) > 0


class TestMmapHandles:
    """Memmap-backed block arrays ship as handles, never as copies."""

    @pytest.fixture(autouse=True)
    def _isolated_store(self, tmp_path):
        from repro.store.persist import (
            close_opened_segments,
            reset_residency_ledger,
            set_store_root,
        )

        set_store_root(None)
        reset_residency_ledger(None)
        yield
        set_store_root(None)
        reset_residency_ledger(None)
        close_opened_segments()

    def _mapped_array(self, tmp_path):
        from repro.store import DatasetStore

        regions = [region("chr1", i * 10, i * 10 + 5) for i in range(64)]
        samples = [Sample(1, regions, Metadata({}))]
        dataset = Dataset("D", RegionSchema.empty(), samples, validate=False)
        builder = DatasetStore(dataset, 100, root=str(tmp_path), sync=True)
        builder.blocks(samples[0])
        fresh_ds = Dataset(
            "D", RegionSchema.empty(),
            [Sample(1, list(regions), Metadata({}))], validate=False,
        )
        fresh = DatasetStore(fresh_ds, 100, root=str(tmp_path))
        blocks = fresh.blocks(next(iter(fresh_ds)))
        return blocks.chroms["chr1"].starts

    def test_mapped_array_ships_as_handle_not_segment(self, tmp_path):
        array = self._mapped_array(tmp_path)
        with ArrayShipper(enabled=True) as shipper:
            handle = shipper.ship(array)
            assert handle[0] == "mmap"
            assert shipper.bytes_mapped == array.nbytes
            assert shipper.bytes_shared == 0
            assert shipper.bytes_pickled == 0
            assert shipper.segment_names() == []

    def test_mmap_handle_beats_shm_even_below_min_shared(
        self, tmp_path, monkeypatch
    ):
        # An mmap handle is free regardless of size: it must win even
        # for arrays the shm gate would refuse to ship.
        monkeypatch.setattr(shm_mod, "MIN_SHARED_BYTES", 10**9)
        array = self._mapped_array(tmp_path)
        with ArrayShipper(enabled=True) as shipper:
            assert shipper.ship(array)[0] == "mmap"

    def test_materialise_reopens_identical_view(self, tmp_path):
        array = self._mapped_array(tmp_path)
        with ArrayShipper(enabled=True) as shipper:
            handle = shipper.ship(array)
        arrays, release = materialise([handle])
        view = arrays[0]
        np.testing.assert_array_equal(view, array)
        # Release never invalidates mmap views: the memoised map stays
        # open for the worker's lifetime (segment files are immutable).
        release()
        np.testing.assert_array_equal(view, array)

    def test_disabled_shipper_still_ships_mmap_handles(self, tmp_path):
        array = self._mapped_array(tmp_path)
        with ArrayShipper(enabled=False) as shipper:
            assert shipper.ship(array)[0] == "mmap"
