"""Tests for federated query processing: protocol, estimator, strategies."""

import pytest

from repro.errors import FederationError
from repro.federation import (
    FederatedClient,
    FederationNode,
    Network,
    estimate_plan,
)
from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, STR, Sample, region
from repro.repository import Catalog
from repro.simulate import EncodeRepository


@pytest.fixture()
def federation():
    """Two nodes: one hosts a big ENCODE-like dataset, one the annotations."""
    from repro.simulate import GenomeLayout

    layout = GenomeLayout.generate(seed=1, n_genes=100, n_enhancers=50)
    repo = EncodeRepository.generate(seed=1, n_samples=30,
                                     peaks_per_sample_mean=250, layout=layout)
    network = Network()
    big_catalog = Catalog("milan")
    big_catalog.register(repo.encode)
    small_catalog = Catalog("ucsc")
    small_catalog.register(repo.annotations)
    milan = FederationNode("milan", big_catalog, network)
    ucsc = FederationNode("ucsc", small_catalog, network)
    client = FederatedClient([milan, ucsc], network)
    return client, milan, ucsc, network


PROGRAM = """
PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
SMALL = ORDER(cell; top: 2) CHIP;
RESULT = MAP(peak_count AS COUNT) PROMS SMALL;
BEST = ORDER(order; top: 1) RESULT;
MATERIALIZE BEST;
"""


class TestProtocol:
    def test_discover(self, federation):
        client, *_ = federation
        locations = client.discover()
        assert locations == {"ENCODE": "milan", "ANNOTATIONS": "ucsc"}

    def test_info_traffic_accounted(self, federation):
        client, milan, __, network = federation
        before = network.log.bytes_total
        milan.handle_info("client")
        assert network.log.bytes_total > before
        kinds = network.log.bytes_by_kind()
        assert "info-request" in kinds and "info-response" in kinds

    def test_compile_returns_estimates(self, federation):
        client, milan, ucsc, __ = federation
        ucsc.ship_dataset("ANNOTATIONS", milan)
        response = milan.handle_compile("client", PROGRAM)
        assert response.ok
        (estimate,) = response.estimates
        name, samples, regions, size = estimate
        assert name == "BEST"
        assert samples >= 1
        assert size > 0

    def test_compile_reports_errors(self, federation):
        __, milan, *_ = federation
        response = milan.handle_compile("client", "THIS IS NOT GMQL")
        assert not response.ok
        assert response.error

    def test_execute_missing_source_raises(self, federation):
        __, milan, *_ = federation
        with pytest.raises(FederationError, match="lacks source"):
            milan.handle_execute("client", "R = SELECT() NOPE; MATERIALIZE R;")


class TestStrategies:
    def test_query_shipping_runs_where_data_is(self, federation):
        client, *_ = federation
        outcome = client.run_query_shipping(PROGRAM)
        assert outcome.executing_node == "milan"  # ENCODE is the big one
        assert outcome.results["BEST"]["size_bytes"] > 0

    def test_data_shipping_moves_sources(self, federation):
        client, *_ = federation
        outcome = client.run_data_shipping(PROGRAM)
        assert outcome.executing_node == "client"
        assert outcome.strategy == "data-shipping"

    def test_query_shipping_moves_fewer_bytes(self, federation):
        """The paper's core argument: results are small, sources are big."""
        client, *_ = federation
        query = client.run_query_shipping(PROGRAM)
        data = client.run_data_shipping(PROGRAM)
        assert query.bytes_moved < data.bytes_moved / 2

    def test_planner_picks_query_shipping_for_small_results(self, federation):
        client, *_ = federation
        estimates = client.estimate_strategies(PROGRAM)
        assert estimates["query-shipping"] < estimates["data-shipping"]
        outcome = client.run(PROGRAM)
        assert outcome.strategy == "query-shipping"

    def test_unknown_source_detected(self, federation):
        client, *_ = federation
        with pytest.raises(FederationError, match="no node hosts"):
            client.run_query_shipping("R = SELECT() NOWHERE; MATERIALIZE R;")


class TestEstimator:
    def test_estimates_scale_with_sources(self):
        from repro.gmql.lang import compile_program

        compiled = compile_program(
            "R = MAP() A B; MATERIALIZE R;"
        )
        small = {
            "A": {"name": "A", "samples": 1, "regions": 100, "schema": ["x"]},
            "B": {"name": "B", "samples": 2, "regions": 100, "schema": ["x"]},
        }
        big = {
            "A": {"name": "A", "samples": 1, "regions": 100, "schema": ["x"]},
            "B": {"name": "B", "samples": 20, "regions": 1000, "schema": ["x"]},
        }
        plan = compiled.outputs["R"]
        assert (
            estimate_plan(plan, big).size_bytes()
            > estimate_plan(plan, small).size_bytes()
        )

    def test_top_k_caps_estimate(self):
        from repro.gmql.lang import compile_program

        summaries = {
            "A": {"name": "A", "samples": 100, "regions": 10_000,
                  "schema": ["x"]},
        }
        full = compile_program("R = SELECT() A; MATERIALIZE R;").outputs["R"]
        top = compile_program(
            "R = ORDER(cell; top: 2) A; MATERIALIZE R;"
        ).outputs["R"]
        assert (
            estimate_plan(top, summaries).samples
            < estimate_plan(full, summaries).samples
        )

    def test_unknown_scan_gets_token_estimate(self):
        from repro.gmql.lang import compile_program

        plan = compile_program("R = SELECT() MYSTERY; MATERIALIZE R;").outputs["R"]
        estimate = estimate_plan(plan, {})
        assert estimate.size_bytes() > 0


class TestNetworkAccounting:
    def test_latency_and_bandwidth(self):
        network = Network(bandwidth_bytes_per_second=1000, latency_seconds=0.5)
        network.send("a", "b", "test", 2000)
        assert network.log.simulated_seconds == pytest.approx(0.5 + 2.0)
        assert network.log.bytes_total == 2000
        assert network.log.message_count() == 1
