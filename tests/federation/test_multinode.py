"""Three-node federation scenario: sources spread across organisations."""

import pytest

from repro.federation import FederatedClient, FederationNode, Network
from repro.gdm import Dataset, Metadata, RegionSchema, STR, Sample, region
from repro.repository import Catalog
from repro.simulate import CancerScenario


@pytest.fixture()
def federation():
    """The Section 3 analysis, federated: expression at a transcriptomics
    lab, breakpoints at a genome-stability lab, mutations at a clinic."""
    scenario = CancerScenario.generate(seed=5)
    network = Network()
    catalogs = {
        "tx-lab": ["EXPRESSION"],
        "gs-lab": ["BREAKPOINTS", "REPLICATION"],
        "clinic": ["MUTATIONS"],
    }
    datasets = {
        "EXPRESSION": scenario.expression,
        "BREAKPOINTS": scenario.breakpoints,
        "REPLICATION": scenario.replication,
        "MUTATIONS": scenario.mutations,
    }
    nodes = []
    for node_name, names in catalogs.items():
        catalog = Catalog(node_name)
        for name in names:
            catalog.register(datasets[name])
        nodes.append(FederationNode(node_name, catalog, network))
    return FederatedClient(nodes, network), scenario


PROGRAM = """
BREAKS_IN_GENES = MAP(breaks AS COUNT) EXPRESSION BREAKPOINTS;
WITH_MUTS = MAP(mutations AS COUNT) BREAKS_IN_GENES MUTATIONS;
MATERIALIZE WITH_MUTS;
"""


class TestThreeNodes:
    def test_discovery_spans_all_nodes(self, federation):
        client, __ = federation
        locations = client.discover()
        assert set(locations.values()) == {"tx-lab", "gs-lab", "clinic"}

    def test_query_shipping_gathers_sources_at_biggest_node(self, federation):
        client, __ = federation
        outcome = client.run_query_shipping(PROGRAM)
        assert outcome.results["WITH_MUTS"]["size_bytes"] > 0
        # The executing node received the other nodes' datasets.
        kinds = dict()
        for __s, __r, kind, size in client.network.log.messages:
            kinds[kind] = kinds.get(kind, 0) + 1
        assert kinds.get("dataset-transfer", 0) >= 2

    def test_both_strategies_agree_on_result_shape(self, federation):
        client, __ = federation
        query = client.run_query_shipping(PROGRAM)
        data = client.run_data_shipping(PROGRAM)
        assert (
            query.results["WITH_MUTS"]["size_bytes"]
            == data.results["WITH_MUTS"]["size_bytes"]
        )

    def test_federated_result_preserves_planted_signal(self, federation):
        """The distributed pipeline must find the same biology: mutation
        counts concentrate at genes with breakpoints."""
        client, scenario = federation
        outcome = client.run_query_shipping(PROGRAM)
        ticket = outcome.results["WITH_MUTS"]["ticket"]
        node = client.nodes[outcome.executing_node]
        blob = node.staging.retrieve_regions(ticket)
        # Regions serialised as: chrom left right strand gene expr breaks muts
        with_breaks_muts = without_breaks_muts = 0
        with_breaks_kb = without_breaks_kb = 0.0
        for line in blob.decode().splitlines():
            if line.startswith("#"):
                continue
            fields = line.split("\t")
            left, right = int(fields[1]), int(fields[2])
            breaks, muts = int(fields[6]), int(fields[7])
            if breaks > 0:
                with_breaks_muts += muts
                with_breaks_kb += (right - left) / 1000
            else:
                without_breaks_muts += muts
                without_breaks_kb += (right - left) / 1000
        density_with = with_breaks_muts / with_breaks_kb
        density_without = (
            without_breaks_muts / without_breaks_kb
            if without_breaks_kb
            else 0.0
        )
        assert density_with > 3 * max(density_without, 1e-9)
