"""Sharded cluster execution over an in-process 3-node federation.

The acceptance bar: a dataset partitioned into (sample, chromosome)
shards across three nodes, executed with pushed sub-plans and streamed
partials, must merge **byte-identically** to a single-node columnar run
-- and node death mid-shard must degrade to exactly the surviving
shards, never to wrong rows.
"""

import pytest

from repro.engine.context import ExecutionContext
from repro.engine.dispatch import get_backend
from repro.errors import FederationError
from repro.federation import (
    FederatedClient,
    FederationNode,
    Network,
    dataset_manifest,
    partition_chromosomes,
    slice_dataset,
)
from repro.gmql.lang import Interpreter, compile_program, optimize
from repro.repository import Catalog
from repro.resilience import FaultInjector
from repro.simulate import CancerScenario

CHAOS_SEED = 7

PROGRAM = """
BREAKS_IN_GENES = MAP(breaks AS COUNT) EXPRESSION BREAKPOINTS;
WITH_MUTS = MAP(mutations AS COUNT) BREAKS_IN_GENES MUTATIONS;
MATERIALIZE WITH_MUTS;
"""


def scenario_datasets() -> dict:
    scenario = CancerScenario.generate(seed=5)
    return {
        "EXPRESSION": scenario.expression,
        "BREAKPOINTS": scenario.breakpoints,
        "MUTATIONS": scenario.mutations,
    }


def sharded_federation(spec="", context=None, node_count=3):
    """Three nodes, each owning one chromosome group of every dataset."""
    datasets = scenario_datasets()
    injector = FaultInjector.from_spec(spec) if spec else None
    network = Network(injector=injector)
    weights: dict = {}
    for ds in datasets.values():
        for chrom, stats in dataset_manifest(ds).chrom_stats().items():
            weights[chrom] = weights.get(chrom, 0) + stats[2]
    groups = partition_chromosomes(weights, node_count)
    nodes = []
    for index in range(node_count):
        catalog = Catalog(f"n{index}")
        group = groups[index] if index < len(groups) else ()
        for ds in datasets.values():
            catalog.register(slice_dataset(ds, group))
        nodes.append(FederationNode(f"n{index}", catalog, network))
    client = FederatedClient(
        nodes, network, seed=CHAOS_SEED, context=context
    )
    return client, datasets, groups, injector


def single_node_run(datasets: dict, program: str = PROGRAM) -> dict:
    backend = get_backend("columnar")
    try:
        return Interpreter(backend, dict(datasets)).run_program(
            optimize(compile_program(program))
        )
    finally:
        backend.close()


def rows(dataset) -> list:
    return list(dataset.region_rows())


class TestShardedIdentity:
    def test_merged_result_is_byte_identical_to_single_node(self):
        client, datasets, __, __i = sharded_federation()
        outcome = client.run_sharded(PROGRAM)
        baseline = single_node_run(datasets)
        assert outcome.strategy == "sharded"
        assert outcome.degraded is False
        merged = outcome.datasets["WITH_MUTS"]
        assert rows(merged) == rows(baseline["WITH_MUTS"])
        assert sorted(merged.metadata_triples()) == sorted(
            baseline["WITH_MUTS"].metadata_triples()
        )

    def test_execution_spans_multiple_nodes(self):
        client, __, groups, __i = sharded_federation()
        outcome = client.run_sharded(PROGRAM)
        assert len(groups) == 3
        assert len(outcome.executing_node.split(",")) > 1
        assert len(outcome.node_seconds) > 1
        assert outcome.cluster_seconds() > 0
        assert outcome.cluster_seconds() <= sum(
            outcome.node_seconds.values()
        ) + outcome.merge_seconds + 1e-9

    def test_max_shards_caps_groups_and_keeps_identity(self):
        client, datasets, __, __i = sharded_federation()
        outcome = client.run_sharded(PROGRAM, max_shards=2)
        baseline = single_node_run(datasets)
        assert outcome.degraded is False
        assert rows(outcome.datasets["WITH_MUTS"]) == rows(
            baseline["WITH_MUTS"]
        )

    def test_metrics_flow_through_the_execution_context(self):
        context = ExecutionContext()
        client, __, __g, __i = sharded_federation(context=context)
        client.run_sharded(PROGRAM)
        assert context.metrics.counter("federation.shards_placed") > 0
        assert context.metrics.counter("federation.shards_skipped") == 0
        # No shared store root in this fixture: partials stream back.
        assert context.metrics.counter("federation.bytes_streamed") > 0
        assert context.metrics.counter("federation.bytes_mapped") == 0

    def test_cover_and_join_shard_identically(self):
        program = """
            HOT = COVER(2, ANY) BREAKPOINTS;
            NEAR = JOIN(MD(1); output: LEFT) EXPRESSION MUTATIONS;
            MATERIALIZE HOT;
            MATERIALIZE NEAR;
        """
        client, datasets, __, __i = sharded_federation()
        outcome = client.run_sharded(program)
        baseline = single_node_run(datasets, program)
        for name in ("HOT", "NEAR"):
            assert rows(outcome.datasets[name]) == rows(baseline[name])


class TestDegradedSharding:
    """Satellite: node death mid-shard degrades to the surviving shards."""

    SPEC = f"seed={CHAOS_SEED};crash@federation.execute:n1"

    def test_dead_node_degrades_to_surviving_shards(self):
        context = ExecutionContext()
        client, datasets, groups, __ = sharded_federation(
            self.SPEC, context=context
        )
        outcome = client.run_sharded(PROGRAM)
        assert outcome.degraded is True
        assert outcome.skipped_shards
        dead_chroms = {
            chrom
            for group_label, __r in outcome.skipped_shards
            for chrom in group_label.split("+")
        }
        # n1's chromosome group is exactly what went missing.
        assert dead_chroms == set(groups[1])
        assert "skipped shard(s)" in outcome.report()
        assert context.metrics.counter("federation.shards_skipped") > 0
        # The merged result is the single-node answer minus the dead
        # node's chromosomes -- surviving rows are never recomputed,
        # reordered or approximated.
        baseline = single_node_run(datasets)
        expected = [
            row for row in rows(baseline["WITH_MUTS"])
            if row[1] not in dead_chroms
        ]
        assert rows(outcome.datasets["WITH_MUTS"]) == expected

    def test_all_nodes_dead_raises_not_empty(self):
        client, __, __g, __i = sharded_federation(
            f"seed={CHAOS_SEED};crash@federation.execute:n*"
        )
        with pytest.raises(FederationError, match="no usable node"):
            client.run_sharded(PROGRAM)


class TestChunkIntegrity:
    """Satellite: a corrupted partial chunk is detected and re-fetched."""

    SPEC = f"seed={CHAOS_SEED};corrupt@federation.transfer:*?times=1"

    def test_corrupt_chunk_is_refetched_and_result_identical(self):
        client, datasets, __, injector = sharded_federation(self.SPEC)
        outcome = client.run_sharded(PROGRAM)
        assert injector.injected_by_kind().get("corrupt") == 1
        assert outcome.degraded is False
        baseline = single_node_run(datasets)
        assert rows(outcome.datasets["WITH_MUTS"]) == rows(
            baseline["WITH_MUTS"]
        )


class TestMixedOutputs:
    """One EXTEND output must not sink the shardable outputs: the
    planner's per-output rounds shard the chromosome-local outputs and
    run the global one whole-genome, byte-identically to single-node."""

    PROGRAM = """
        HOT = COVER(2, ANY) BREAKPOINTS;
        NEAR = MAP(hits AS COUNT) EXPRESSION MUTATIONS;
        STATS = EXTEND(n AS COUNT) EXPRESSION;
        MATERIALIZE HOT;
        MATERIALIZE NEAR;
        MATERIALIZE STATS;
    """

    def test_local_outputs_shard_despite_global_sibling(self):
        client, datasets, __, __i = sharded_federation()
        outcome = client.run_sharded(self.PROGRAM)
        baseline = single_node_run(datasets, self.PROGRAM)
        assert outcome.strategy == "sharded"
        assert outcome.degraded is False
        # The local outputs' round really spanned the cluster.
        assert len(outcome.executing_node.split(",")) > 1
        for name in ("HOT", "NEAR", "STATS"):
            assert rows(outcome.datasets[name]) == rows(baseline[name])
            assert sorted(outcome.datasets[name].metadata_triples()) == (
                sorted(baseline[name].metadata_triples())
            )

    def test_effect_annotations_gate_each_output(self):
        compiled = optimize(compile_program(self.PROGRAM))
        from repro.gmql.lang.effects import annotate_effects

        annotate_effects(compiled)
        assert compiled.outputs["HOT"].effects.chrom_local is True
        assert compiled.outputs["NEAR"].effects.chrom_local is True
        stats = compiled.outputs["STATS"].effects
        assert stats.chrom_local is False
        assert "EXTEND" in stats.locality_breaker


class TestFallbacks:
    def test_cross_chromosome_aggregation_falls_back(self):
        # EXTEND aggregates across chromosomes; fsum-of-fsums is not
        # fsum, so the plan must not shard.  In-process nodes hold
        # catalogs, so the whole-dataset planner takes over.
        datasets = scenario_datasets()
        network = Network()
        catalog = Catalog("solo")
        for ds in datasets.values():
            catalog.register(ds)
        client = FederatedClient(
            [FederationNode("solo", catalog, network)], network
        )
        program = """
            E = EXTEND(n AS COUNT) EXPRESSION;
            MATERIALIZE E;
        """
        outcome = client.run_sharded(program)
        assert outcome.strategy != "sharded"
        assert outcome.results
