"""LocalCluster: sharded execution over real worker node processes."""

import pytest

from repro.engine.context import ExecutionContext
from repro.federation import LocalCluster
from repro.gmql.lang import Interpreter, compile_program, optimize
from repro.engine.dispatch import get_backend
from repro.simulate import CancerScenario

PROGRAM = """
BREAKS_IN_GENES = MAP(breaks AS COUNT) EXPRESSION BREAKPOINTS;
MATERIALIZE BREAKS_IN_GENES;
"""


def scenario_sources() -> dict:
    scenario = CancerScenario.generate(seed=5)
    return {
        "EXPRESSION": scenario.expression,
        "BREAKPOINTS": scenario.breakpoints,
    }


def single_node_run(sources: dict) -> dict:
    backend = get_backend("columnar")
    try:
        return Interpreter(backend, dict(sources)).run_program(
            optimize(compile_program(PROGRAM))
        )
    finally:
        backend.close()


def rows(dataset) -> list:
    return list(dataset.region_rows())


class TestLocalCluster:
    def test_two_node_cluster_matches_single_node(self):
        sources = scenario_sources()
        context = ExecutionContext()
        with LocalCluster(sources, nodes=2, context=context) as cluster:
            outcome = cluster.run(PROGRAM)
        baseline = single_node_run(sources)
        assert outcome.strategy == "sharded"
        assert outcome.degraded is False
        merged = outcome.datasets["BREAKS_IN_GENES"]
        assert rows(merged) == rows(baseline["BREAKS_IN_GENES"])
        assert sorted(merged.metadata_triples()) == sorted(
            baseline["BREAKS_IN_GENES"].metadata_triples()
        )
        # Worker processes stream their partials over the socket pair.
        assert context.metrics.counter("federation.bytes_streamed") > 0
        assert context.metrics.counter("federation.shards_placed") > 0
        # Nodes self-time their kernel runs for the cluster critical path.
        assert len(outcome.node_seconds) == 2
        assert outcome.cluster_seconds() > 0

    def test_shared_store_root_ships_mmap_handles(self, tmp_path):
        sources = scenario_sources()
        context = ExecutionContext()
        with LocalCluster(
            sources, nodes=3, store_root=str(tmp_path), context=context
        ) as cluster:
            outcome = cluster.run(PROGRAM)
        baseline = single_node_run(sources)
        assert rows(outcome.datasets["BREAKS_IN_GENES"]) == rows(
            baseline["BREAKS_IN_GENES"]
        )
        # Co-resident nodes spill partials into the shared store and the
        # client maps them: handle bytes, not streamed chunks.
        assert context.metrics.counter("federation.bytes_mapped") > 0
        assert context.metrics.counter("federation.bytes_streamed") == 0

    def test_more_nodes_than_chromosome_groups(self):
        # Extra nodes hold empty slices and serve as pure compute
        # targets; the run must still complete and stay correct.
        sources = scenario_sources()
        chrom_count = len(
            {c for ds in sources.values() for c in ds.chromosomes()}
        )
        with LocalCluster(sources, nodes=chrom_count + 2) as cluster:
            outcome = cluster.run(PROGRAM)
        baseline = single_node_run(sources)
        assert rows(outcome.datasets["BREAKS_IN_GENES"]) == rows(
            baseline["BREAKS_IN_GENES"]
        )

    def test_close_is_idempotent(self):
        cluster = LocalCluster(scenario_sources(), nodes=2)
        cluster.close()
        cluster.close()

    def test_max_shards_flows_through(self):
        sources = scenario_sources()
        with LocalCluster(sources, nodes=2) as cluster:
            outcome = cluster.run(PROGRAM, max_shards=2)
        baseline = single_node_run(sources)
        assert outcome.degraded is False
        assert rows(outcome.datasets["BREAKS_IN_GENES"]) == rows(
            baseline["BREAKS_IN_GENES"]
        )


class TestWorkerProxyFailureMapping:
    def test_dead_worker_maps_to_host_down(self):
        from repro.errors import HostDownError
        from repro.federation import WorkerNodeProxy

        class DeadConnection:
            def send(self, payload):
                raise BrokenPipeError("gone")

            def recv(self):  # pragma: no cover - send raises first
                raise EOFError

            def close(self):
                pass

        proxy = WorkerNodeProxy("w0", DeadConnection())
        with pytest.raises(HostDownError):
            proxy.handle_info("client")
