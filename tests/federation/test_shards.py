"""Unit tests for the shard manifest, slicing and placement layers."""

import pytest

from repro.federation import (
    ShardPlacement,
    dataset_manifest,
    estimate_shard_outputs,
    is_chromosome_clustered,
    partition_chromosomes,
    place_shards,
    shard_summaries,
    slice_dataset,
    transfer_seconds,
)
from repro.gdm import (
    Dataset,
    FLOAT,
    Metadata,
    RegionSchema,
    Sample,
    chromosome_sort_key,
    region,
)


def make_dataset(name="PEAKS", chrom_counts=None, samples=2) -> Dataset:
    """A chromosome-clustered dataset with the given per-chrom counts."""
    chrom_counts = chrom_counts or {"chr1": 4, "chr2": 2, "chr3": 3}
    ds = Dataset(name, RegionSchema.of(("score", FLOAT)))
    for sid in range(1, samples + 1):
        regions = []
        for chrom in sorted(chrom_counts, key=chromosome_sort_key):
            for i in range(chrom_counts[chrom]):
                start = 100 * (i + 1) * sid
                regions.append(
                    region(chrom, start, start + 50, "*", float(i))
                )
        ds.add_sample(Sample(sid, regions, Metadata({"s": str(sid)})))
    return ds


class TestManifest:
    def test_one_shard_per_sample_chromosome(self):
        ds = make_dataset(chrom_counts={"chr1": 4, "chr2": 2}, samples=3)
        manifest = dataset_manifest(ds)
        assert manifest.clustered is True
        assert len(manifest.shards) == 6  # 3 samples x 2 chroms
        keys = {(s.sample_id, s.chrom) for s in manifest.shards}
        assert len(keys) == 6

    def test_chrom_stats_aggregates_regions_and_bytes(self):
        ds = make_dataset(chrom_counts={"chr1": 4, "chr2": 2}, samples=2)
        stats = dataset_manifest(ds).chrom_stats()
        assert stats["chr1"][0] == 2          # shard count
        assert stats["chr1"][1] == 8          # regions over both samples
        assert stats["chr1"][2] > stats["chr2"][2]

    def test_summary_published_in_dataset_summary(self):
        ds = make_dataset()
        shards = ds.summary()["shards"]
        assert shards["clustered"] is True
        assert set(shards["chroms"]) == {"chr1", "chr2", "chr3"}


class TestClustering:
    def test_genome_ordered_dataset_is_clustered(self):
        assert is_chromosome_clustered(make_dataset()) is True

    def test_interleaved_chromosomes_are_not(self):
        ds = Dataset("BAD", RegionSchema())
        ds.add_sample(Sample(1, [
            region("chr1", 0, 10),
            region("chr2", 0, 10),
            region("chr1", 20, 30),   # chr1 resumes: two runs
        ], Metadata({})))
        assert is_chromosome_clustered(ds) is False
        assert dataset_manifest(ds).clustered is False


class TestSlicing:
    def test_slice_keeps_only_wanted_chromosomes(self):
        ds = make_dataset()
        sliced = slice_dataset(ds, ("chr1", "chr3"))
        assert set(sliced.chromosomes()) == {"chr1", "chr3"}
        for sample in sliced:
            assert all(r.chrom != "chr2" for r in sample.regions)

    def test_slice_keeps_all_samples_even_when_region_empty(self):
        # Sample alignment: MAP/COVER outputs depend on the sample list.
        ds = make_dataset(samples=3)
        sliced = slice_dataset(ds, ("chrX",))
        assert len(list(sliced)) == 3
        assert sliced.summary()["regions"] == 0

    def test_slices_reassemble_to_the_original_rows(self):
        ds = make_dataset()
        parts = [slice_dataset(ds, (c,)) for c in ds.chromosomes()]
        rebuilt = []
        for sid in (1, 2):
            rows = []
            for part in parts:
                sample = {s.id: s for s in part}[sid]
                rows.extend(sample.regions)
            rebuilt.append(rows)
        originals = [list(s.regions) for s in ds]
        assert rebuilt == originals


class TestPartitioning:
    def test_partition_balances_weights(self):
        weights = {"chr1": 100, "chr2": 60, "chr3": 50, "chr4": 10}
        groups = partition_chromosomes(weights, 2)
        assert len(groups) == 2
        totals = sorted(
            sum(weights[c] for c in group) for group in groups
        )
        assert totals[1] - totals[0] <= 100  # LPT keeps the gap < max item

    def test_every_chromosome_lands_exactly_once(self):
        weights = {f"chr{i}": i for i in range(1, 9)}
        groups = partition_chromosomes(weights, 3)
        seen = [c for group in groups for c in group]
        assert sorted(seen) == sorted(weights)

    def test_more_groups_than_chromosomes_collapses(self):
        groups = partition_chromosomes({"chr1": 5, "chr2": 3}, 10)
        assert len(groups) == 2


class TestPlacementCost:
    def test_transfer_seconds_charges_latency_per_message(self):
        assert transfer_seconds(0, messages=2) == pytest.approx(
            2 * transfer_seconds(0, messages=1)
        )

    def test_placement_prefers_the_resident_node(self):
        placements = place_shards(
            (("chr1",),),
            {("chr1",): {"owner": 10_000, "other": 0}},
            {("chr1",): 10_000},
            {("chr1",): 1_000},
            ("owner", "other"),
        )
        by_group = {p.chroms: p for p in placements}
        assert by_group[("chr1",)].node == "owner"
        assert by_group[("chr1",)].move_bytes == 0

    def test_placement_spreads_groups_across_nodes(self):
        groups = (("chr1",), ("chr2",), ("chr3",), ("chr4",))
        residency = {g: {"a": 0, "b": 0} for g in groups}
        group_bytes = {g: 50_000 for g in groups}
        result_bytes = {g: 5_000 for g in groups}
        placements = place_shards(
            groups, residency, group_bytes, result_bytes, ("a", "b")
        )
        nodes = {p.node for p in placements}
        assert nodes == {"a", "b"}

    def test_placements_carry_modelled_seconds(self):
        placements = place_shards(
            (("chr1",),),
            {("chr1",): {"a": 0}},
            {("chr1",): 80_000},
            {("chr1",): 8_000},
            ("a",),
        )
        placement = placements[0]
        assert isinstance(placement, ShardPlacement)
        assert placement.seconds > 0
        assert placement.move_bytes == 80_000


class TestShardEstimates:
    def test_shard_summaries_narrow_to_the_group(self):
        ds = make_dataset()
        summaries = {"PEAKS": ds.summary()}
        narrowed = shard_summaries(summaries, ("chr1",))
        assert narrowed["PEAKS"]["regions"] < summaries["PEAKS"]["regions"]

    def test_estimated_output_scales_with_group_size(self):
        from repro.gmql.lang import compile_program, optimize

        ds = make_dataset()
        summaries = {"PEAKS": ds.summary()}
        plans = list(optimize(compile_program(
            "R = SELECT() PEAKS; MATERIALIZE R;"
        )).outputs.values())
        small = estimate_shard_outputs(plans, summaries, ("chr2",))
        large = estimate_shard_outputs(
            plans, summaries, ("chr1", "chr2", "chr3")
        )
        assert 0 < small < large
