"""Tests for the text renderers (Figure 2 tables and genome-browser tracks)."""

import pytest

from repro.gdm import (
    Dataset,
    FLOAT,
    Metadata,
    RegionSchema,
    Sample,
    region,
    render_tables,
    render_tracks,
)


@pytest.fixture()
def dataset():
    return Dataset(
        "D",
        RegionSchema.of(("score", FLOAT)),
        [
            Sample(1, [region("chr1", 100, 400, "+", 1.5),
                       region("chr1", 600, 900, "-", 2.5)],
                   Metadata({"name": "fwd+rev"})),
            Sample(2, [region("chr1", 200, 700, "*", 3.0)],
                   Metadata({"name": "unstranded"})),
        ],
    )


class TestRenderTables:
    def test_contains_headers_and_rows(self, dataset):
        text = render_tables(dataset)
        assert "id" in text and "score" in text
        assert "chr1" in text
        assert "fwd+rev" in text

    def test_truncation_notice(self, dataset):
        text = render_tables(dataset, max_rows=1)
        assert "more region row(s)" in text
        assert "more metadata triple(s)" in text

    def test_missing_values_render_blank(self):
        ds = Dataset(
            "D",
            RegionSchema.of(("score", FLOAT)),
            [Sample(1, [region("chr1", 0, 10)])],
        )
        text = render_tables(ds)
        assert "chr1" in text  # renders without crashing on None


class TestRenderTracks:
    def test_strand_glyphs(self, dataset):
        text = render_tracks(dataset, "chr1", 0, 1000, width=50)
        assert "=" in text   # forward
        assert "-" in text   # reverse
        assert "#" in text   # unstranded

    def test_labels_from_metadata(self, dataset):
        text = render_tracks(dataset, "chr1", 0, 1000)
        assert "fwd+rev" in text
        assert "unstranded" in text

    def test_regions_outside_window_invisible(self, dataset):
        text = render_tracks(dataset, "chr1", 5_000, 6_000, width=40)
        lines = text.split("\n")[2:]
        assert all(set(line.split("  ")[0]) <= {" "} for line in lines)

    def test_other_chromosome_invisible(self, dataset):
        text = render_tracks(dataset, "chr2", 0, 1000, width=40)
        assert "=" not in text

    def test_empty_window_rejected(self, dataset):
        with pytest.raises(ValueError):
            render_tracks(dataset, "chr1", 100, 100)

    def test_header_shows_coordinates(self, dataset):
        text = render_tracks(dataset, "chr1", 0, 1000)
        assert text.startswith("chr1:0-1,000")
