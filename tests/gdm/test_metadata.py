"""Unit tests for the Metadata multi-valued mapping."""

import pytest

from repro.errors import GdmError
from repro.gdm import Metadata


class TestConstruction:
    def test_scalar_values_wrap(self):
        meta = Metadata({"cell": "HeLa"})
        assert meta.values("cell") == ("HeLa",)

    def test_sequence_values_preserved(self):
        meta = Metadata({"treatment": ("a", "b")})
        assert meta.values("treatment") == ("a", "b")

    def test_from_pairs_accumulates(self):
        meta = Metadata.from_pairs([("t", "a"), ("t", "b"), ("cell", "K562")])
        assert meta.values("t") == ("a", "b")
        assert len(meta) == 3

    def test_empty_attribute_rejected(self):
        with pytest.raises(GdmError):
            Metadata({"": "x"})


class TestAccess:
    def test_first_and_default(self):
        meta = Metadata({"a": ("x", "y")})
        assert meta.first("a") == "x"
        assert meta.first("missing", "dflt") == "dflt"

    def test_contains_and_len(self):
        meta = Metadata({"a": "x", "b": ("y", "z")})
        assert "a" in meta and "c" not in meta
        assert len(meta) == 3

    def test_iteration_sorted_and_stable(self):
        meta = Metadata({"b": "2", "a": "1"})
        assert list(meta) == [("a", "1"), ("b", "2")]

    def test_triples_include_sample_id(self):
        meta = Metadata({"a": "1"})
        assert list(meta.triples(7)) == [(7, "a", "1")]

    def test_matches_string_insensitive(self):
        meta = Metadata({"n": 5})
        assert meta.matches("n", "5")
        assert meta.matches("n", 5)
        assert not meta.matches("n", 6)


class TestDerivation:
    def test_with_pairs(self):
        meta = Metadata({"a": "1"}).with_pairs([("b", "2")])
        assert meta.first("b") == "2"
        assert meta.first("a") == "1"

    def test_without(self):
        meta = Metadata({"a": "1", "b": "2"}).without(["a"])
        assert "a" not in meta and "b" in meta

    def test_project(self):
        meta = Metadata({"a": "1", "b": "2"}).project(["b"])
        assert meta.attributes() == ("b",)

    def test_prefixed(self):
        meta = Metadata({"cell": "HeLa"}).prefixed("left.")
        assert meta.first("left.cell") == "HeLa"
        assert "cell" not in meta

    def test_union_merges_and_dedups(self):
        a = Metadata({"x": "1", "shared": "s"})
        b = Metadata({"y": "2", "shared": "s"})
        merged = a.union(b)
        assert merged.first("x") == "1"
        assert merged.first("y") == "2"
        assert merged.values("shared") == ("s",)

    def test_union_keeps_distinct_values(self):
        merged = Metadata({"t": "a"}).union(Metadata({"t": "b"}))
        assert merged.values("t") == ("a", "b")

    def test_equality_and_hash(self):
        assert Metadata({"a": "1"}) == Metadata({"a": "1"})
        assert hash(Metadata({"a": "1"})) == hash(Metadata({"a": "1"}))

    def test_immutability_of_source(self):
        base = Metadata({"a": "1"})
        base.with_pairs([("b", "2")])
        assert "b" not in base
