"""Unit tests for Sample and Dataset invariants."""

import pytest

from repro.errors import DatasetError, SchemaError
from repro.gdm import (
    Dataset,
    FLOAT,
    INT,
    Metadata,
    RegionSchema,
    Sample,
    region,
    renumber,
)


@pytest.fixture()
def schema():
    return RegionSchema.of(("score", FLOAT))


class TestSample:
    def test_len_and_iter(self):
        s = Sample(1, [region("chr1", 0, 5), region("chr2", 0, 5)])
        assert len(s) == 2
        assert [r.chrom for r in s] == ["chr1", "chr2"]

    def test_negative_id_rejected(self):
        with pytest.raises(DatasetError):
            Sample(-1)

    def test_chromosomes_sorted(self):
        s = Sample(1, [region("chr2", 0, 5), region("chr1", 0, 5)])
        assert s.chromosomes() == ("chr1", "chr2")

    def test_sorted_regions_and_is_sorted(self):
        s = Sample(1, [region("chr1", 50, 60), region("chr1", 0, 10)])
        assert not s.is_sorted()
        assert [r.left for r in s.sorted_regions()] == [0, 50]

    def test_covered_positions_merges_overlaps(self):
        s = Sample(1, [region("chr1", 0, 10), region("chr1", 5, 15)])
        assert s.covered_positions() == 15

    def test_covered_positions_across_chromosomes(self):
        s = Sample(1, [region("chr1", 0, 10), region("chr2", 0, 10)])
        assert s.covered_positions() == 20

    def test_filter_and_map_regions(self):
        s = Sample(1, [region("chr1", 0, 5), region("chr1", 10, 20)])
        assert len(s.filter_regions(lambda r: r.length > 5)) == 1
        widened = s.map_regions(lambda r: r.with_coordinates(r.left, r.right + 1))
        assert [r.right for r in widened] == [6, 21]

    def test_with_id_shares_regions(self):
        s = Sample(1, [region("chr1", 0, 5)])
        assert s.with_id(9).id == 9
        assert s.with_id(9).regions == s.regions

    def test_renumber(self):
        samples = renumber([Sample(10), Sample(20)], start=1)
        assert [s.id for s in samples] == [1, 2]


class TestDataset:
    def test_schema_coercion_on_add(self, schema):
        ds = Dataset("D", schema, [Sample(1, [region("chr1", 0, 5, "*", "0.5")])])
        assert ds[1].regions[0].values == (0.5,)

    def test_short_value_tuples_padded(self, schema):
        ds = Dataset("D", schema, [Sample(1, [region("chr1", 0, 5)])])
        assert ds[1].regions[0].values == (None,)

    def test_uncoercible_value_raises(self, schema):
        with pytest.raises(SchemaError):
            Dataset("D", schema, [Sample(1, [region("chr1", 0, 5, "*", "abc")])])

    def test_duplicate_id_rejected(self, schema):
        with pytest.raises(DatasetError):
            Dataset("D", schema, [Sample(1), Sample(1)])

    def test_missing_sample_raises(self, schema):
        ds = Dataset("D", schema)
        with pytest.raises(DatasetError):
            ds[42]

    def test_empty_name_rejected(self, schema):
        with pytest.raises(DatasetError):
            Dataset("", schema)

    def test_iteration_in_id_order(self, schema):
        ds = Dataset("D", schema, [Sample(5), Sample(2), Sample(9)])
        assert [s.id for s in ds] == [2, 5, 9]
        assert ds.sample_ids == (2, 5, 9)

    def test_counts(self, schema):
        ds = Dataset(
            "D",
            schema,
            [
                Sample(1, [region("chr1", 0, 5, "*", 1.0)], Metadata({"a": "x"})),
                Sample(2, [region("chr2", 0, 5, "*", 2.0)] * 2),
            ],
        )
        assert ds.region_count() == 3
        assert ds.metadata_count() == 1
        assert ds.chromosomes() == ("chr1", "chr2")
        assert ds.metadata_attributes() == ("a",)

    def test_build_convenience(self, schema):
        ds = Dataset.build(
            "D", schema, {3: ([region("chr1", 0, 5, "*", 0.1)], {"cell": "HeLa"})}
        )
        assert ds[3].meta.first("cell") == "HeLa"

    def test_with_name_shares_samples(self, schema):
        ds = Dataset("D", schema, [Sample(1)])
        clone = ds.with_name("E")
        assert clone.name == "E" and len(clone) == 1

    def test_estimated_size_positive_and_monotone(self, schema):
        small = Dataset("D", schema, [Sample(1, [region("chr1", 0, 5, "*", 1.0)])])
        big = Dataset(
            "E",
            schema,
            [Sample(1, [region("chr1", i, i + 5, "*", 1.0) for i in range(100)])],
        )
        assert 0 < small.estimated_size_bytes() < big.estimated_size_bytes()

    def test_summary_fields(self, schema):
        ds = Dataset("D", schema, [Sample(1, [region("chr1", 0, 5, "*", 1.0)])])
        summary = ds.summary()
        assert summary["name"] == "D"
        assert summary["samples"] == 1
        assert summary["regions"] == 1
        assert summary["schema"] == ["score"]

    def test_validate_false_skips_coercion(self):
        schema = RegionSchema.of(("n", INT))
        sample = Sample(1, [region("chr1", 0, 5, "*", "7")])
        ds = Dataset("D", schema, [sample], validate=False)
        assert ds[1].regions[0].values == ("7",)
