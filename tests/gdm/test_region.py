"""Unit tests for GenomicRegion geometry and invariants."""

import pytest

from repro.errors import CoordinateError
from repro.gdm import GenomicRegion, chromosome_sort_key, region


class TestConstruction:
    def test_basic_fields(self):
        r = GenomicRegion("chr1", 10, 20, "+", (0.5,))
        assert (r.chrom, r.left, r.right, r.strand) == ("chr1", 10, 20, "+")
        assert r.values == (0.5,)

    def test_default_strand_is_unstranded(self):
        assert GenomicRegion("chr1", 0, 1).strand == "*"

    def test_zero_length_region_allowed(self):
        r = GenomicRegion("chr1", 5, 5)
        assert r.length == 0

    def test_negative_left_rejected(self):
        with pytest.raises(CoordinateError):
            GenomicRegion("chr1", -1, 5)

    def test_inverted_rejected(self):
        with pytest.raises(CoordinateError):
            GenomicRegion("chr1", 10, 5)

    def test_bad_strand_rejected(self):
        with pytest.raises(CoordinateError):
            GenomicRegion("chr1", 0, 5, "?")

    def test_empty_chromosome_rejected(self):
        with pytest.raises(CoordinateError):
            GenomicRegion("", 0, 5)


class TestGeometry:
    def test_length_and_midpoint(self):
        r = GenomicRegion("chr1", 10, 20)
        assert r.length == 10
        assert r.midpoint == 15.0

    def test_overlap_half_open(self):
        a = GenomicRegion("chr1", 0, 10)
        b = GenomicRegion("chr1", 10, 20)
        assert not a.overlaps(b)  # touching is not overlapping
        assert a.overlaps(GenomicRegion("chr1", 9, 11))

    def test_overlap_different_chromosomes(self):
        assert not GenomicRegion("chr1", 0, 10).overlaps(
            GenomicRegion("chr2", 0, 10)
        )

    def test_zero_length_overlap_convention(self):
        # A point feature overlaps intervals strictly containing its
        # position, but not intervals merely touching it at a boundary,
        # and never another point.
        point = GenomicRegion("chr1", 5, 5)
        assert point.overlaps(GenomicRegion("chr1", 0, 10))
        assert GenomicRegion("chr1", 0, 10).overlaps(point)
        assert not point.overlaps(GenomicRegion("chr1", 5, 10))
        assert not point.overlaps(GenomicRegion("chr1", 0, 5))
        assert not point.overlaps(GenomicRegion("chr1", 5, 5))

    def test_contains(self):
        outer = GenomicRegion("chr1", 0, 100)
        assert outer.contains(GenomicRegion("chr1", 10, 20))
        assert not outer.contains(GenomicRegion("chr1", 90, 110))

    def test_distance_overlap_negative(self):
        a = GenomicRegion("chr1", 0, 10)
        assert a.distance(GenomicRegion("chr1", 5, 15)) == -5

    def test_distance_adjacent_zero(self):
        a = GenomicRegion("chr1", 0, 10)
        assert a.distance(GenomicRegion("chr1", 10, 20)) == 0

    def test_distance_gap(self):
        a = GenomicRegion("chr1", 0, 10)
        assert a.distance(GenomicRegion("chr1", 15, 20)) == 5

    def test_distance_cross_chromosome_is_none(self):
        a = GenomicRegion("chr1", 0, 10)
        assert a.distance(GenomicRegion("chr2", 0, 10)) is None

    def test_distance_symmetric(self):
        a = GenomicRegion("chr1", 0, 10)
        b = GenomicRegion("chr1", 30, 40)
        assert a.distance(b) == b.distance(a) == 20

    def test_intersection_width(self):
        a = GenomicRegion("chr1", 0, 10)
        assert a.intersection_width(GenomicRegion("chr1", 5, 20)) == 5
        assert a.intersection_width(GenomicRegion("chr1", 20, 30)) == 0

    def test_strand_compatibility(self):
        plus = GenomicRegion("chr1", 0, 5, "+")
        minus = GenomicRegion("chr1", 0, 5, "-")
        star = GenomicRegion("chr1", 0, 5, "*")
        assert plus.strands_compatible(star)
        assert star.strands_compatible(minus)
        assert not plus.strands_compatible(minus)


class TestStrandAwareEnds:
    def test_five_prime_forward(self):
        assert GenomicRegion("chr1", 10, 20, "+").five_prime == 10

    def test_five_prime_reverse(self):
        assert GenomicRegion("chr1", 10, 20, "-").five_prime == 20

    def test_promoter_forward(self):
        p = GenomicRegion("chr1", 1000, 2000, "+").promoter(200, 50)
        assert (p.left, p.right) == (800, 1050)

    def test_promoter_reverse(self):
        p = GenomicRegion("chr1", 1000, 2000, "-").promoter(200, 50)
        assert (p.left, p.right) == (1950, 2200)

    def test_promoter_clipped_at_zero(self):
        p = GenomicRegion("chr1", 50, 100, "+").promoter(200, 0)
        assert p.left == 0


class TestOrderingIdentity:
    def test_chromosome_natural_order(self):
        names = ["chr10", "chr2", "chrX", "chr1"]
        ordered = sorted(names, key=chromosome_sort_key)
        assert ordered == ["chr1", "chr2", "chr10", "chrX"]

    def test_sort_key_orders_regions(self):
        regions = [
            GenomicRegion("chr2", 0, 5),
            GenomicRegion("chr1", 50, 60),
            GenomicRegion("chr1", 10, 20),
        ]
        ordered = sorted(regions, key=GenomicRegion.sort_key)
        assert [r.chrom for r in ordered] == ["chr1", "chr1", "chr2"]
        assert ordered[0].left == 10

    def test_equality_and_hash(self):
        a = GenomicRegion("chr1", 0, 5, "+", (1,))
        b = GenomicRegion("chr1", 0, 5, "+", (1,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != GenomicRegion("chr1", 0, 5, "+", (2,))

    def test_iteration_yields_fixed_then_values(self):
        r = region("chr1", 0, 5, "+", 0.7, "peak")
        assert list(r) == ["chr1", 0, 5, "+", 0.7, "peak"]

    def test_with_values_preserves_coordinates(self):
        r = GenomicRegion("chr1", 0, 5, "-", (1,))
        r2 = r.with_values((2, 3))
        assert r2.coordinates() == r.coordinates()
        assert r2.values == (2, 3)
