"""Unit tests for RegionSchema: typing, coercion and schema merging."""

import pytest

from repro.errors import SchemaError
from repro.gdm import (
    AttributeDef,
    BOOL,
    FLOAT,
    INT,
    RegionSchema,
    STR,
    infer_type,
    type_named,
)


class TestTypes:
    def test_type_lookup_case_insensitive(self):
        assert type_named("float") is FLOAT
        assert type_named("Int") is INT

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            type_named("DOUBLE")

    def test_coerce_int(self):
        assert INT.coerce("42") == 42

    def test_coerce_float(self):
        assert FLOAT.coerce("0.5") == 0.5

    def test_coerce_bool_strings(self):
        assert BOOL.coerce("true") is True
        assert BOOL.coerce("0") is False

    def test_coerce_none_passthrough(self):
        assert STR.coerce(None) is None

    def test_coerce_failure_raises(self):
        with pytest.raises(SchemaError):
            INT.coerce("not-a-number")

    def test_parse_missing_markers(self):
        assert FLOAT.parse(".") is None
        assert FLOAT.parse("NA") is None
        assert FLOAT.parse("") is None

    def test_format_round_trip(self):
        assert FLOAT.parse(FLOAT.format(0.25)) == 0.25
        assert INT.format(None) == "."

    def test_infer_type(self):
        assert infer_type(True) is BOOL
        assert infer_type(3) is INT
        assert infer_type(3.5) is FLOAT
        assert infer_type("x") is STR


class TestSchemaBasics:
    def test_of_builds_ordered_schema(self):
        schema = RegionSchema.of(("score", FLOAT), ("name", "STR"))
        assert schema.names == ("score", "name")
        assert schema.types == (FLOAT, STR)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            RegionSchema.of(("a", INT), ("a", FLOAT))

    def test_fixed_attribute_names_reserved(self):
        with pytest.raises(SchemaError):
            RegionSchema.of(("chrom", STR))

    def test_bad_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            AttributeDef("with space", INT)

    def test_index_and_contains(self):
        schema = RegionSchema.of(("a", INT), ("b", STR))
        assert "a" in schema and "c" not in schema
        assert schema.index_of("b") == 1
        with pytest.raises(SchemaError):
            schema.index_of("c")

    def test_coerce_values_pads_missing(self):
        schema = RegionSchema.of(("a", INT), ("b", FLOAT))
        assert schema.coerce_values(("7",)) == (7, None)

    def test_coerce_values_rejects_excess(self):
        schema = RegionSchema.of(("a", INT))
        with pytest.raises(SchemaError):
            schema.coerce_values((1, 2))

    def test_project_preserves_order_given(self):
        schema = RegionSchema.of(("a", INT), ("b", FLOAT), ("c", STR))
        assert schema.project(["c", "a"]).names == ("c", "a")

    def test_extend(self):
        schema = RegionSchema.of(("a", INT)).extend(AttributeDef("b", STR))
        assert schema.names == ("a", "b")

    def test_empty_schema(self):
        assert len(RegionSchema.empty()) == 0


class TestSchemaMerging:
    """The paper's schema-merging operation: fixed attrs in common,
    variable attrs concatenated."""

    def test_disjoint_names_concatenate(self):
        left = RegionSchema.of(("p_value", FLOAT))
        right = RegionSchema.of(("score", INT))
        merged = left.merge(right)
        assert merged.schema.names == ("p_value", "score")

    def test_same_name_same_type_unifies(self):
        left = RegionSchema.of(("score", FLOAT), ("name", STR))
        right = RegionSchema.of(("score", FLOAT))
        merged = left.merge(right)
        assert merged.schema.names == ("score", "name")

    def test_same_name_different_type_renames(self):
        left = RegionSchema.of(("score", FLOAT))
        right = RegionSchema.of(("score", STR))
        merged = left.merge(right)
        assert merged.schema.names == ("score", "score_right")

    def test_remap_left_lays_out_values(self):
        left = RegionSchema.of(("a", INT))
        right = RegionSchema.of(("b", INT))
        merged = left.merge(right)
        assert merged.remap_left((1,)) == (1, None)
        assert merged.remap_right((2,)) == (None, 2)

    def test_remap_unified_attribute(self):
        left = RegionSchema.of(("score", FLOAT))
        right = RegionSchema.of(("score", FLOAT), ("extra", STR))
        merged = left.merge(right)
        assert merged.schema.names == ("score", "extra")
        assert merged.remap_right((0.5, "x")) == (0.5, "x")

    def test_merge_with_empty(self):
        left = RegionSchema.of(("a", INT))
        merged = left.merge(RegionSchema.empty())
        assert merged.schema == left
