"""Reproduction of the paper's Figure 2: the PEAKS dataset for ChIP-Seq data.

The figure shows a dataset with two samples whose regions fall within two
chromosomes; the variable part of the schema is the single attribute
P_VALUE.  Sample 1 has 5 regions and 4 metadata attributes (stranded
regions, karyotype "cancer"); sample 2 has 4 regions and 3 metadata
attributes (unstranded, from a "female").  This module builds that exact
instance and asserts every cardinality the paper states.
"""

import pytest

from repro.gdm import (
    Dataset,
    FLOAT,
    Metadata,
    RegionSchema,
    Sample,
    region,
    render_tables,
)


@pytest.fixture()
def peaks_dataset() -> Dataset:
    schema = RegionSchema.of(("p_value", FLOAT))
    sample1 = Sample(
        1,
        [
            region("chr1", 100, 350, "+", 1e-5),
            region("chr1", 400, 750, "-", 2e-4),
            region("chr1", 900, 1200, "+", 3e-6),
            region("chr2", 150, 400, "+", 5e-5),
            region("chr2", 600, 900, "-", 7e-4),
        ],
        Metadata(
            {
                "cell": "HeLa-S3",
                "karyotype": "cancer",
                "antibody": "CTCF",
                "dataType": "ChipSeq",
            }
        ),
    )
    sample2 = Sample(
        2,
        [
            region("chr1", 120, 380, "*", 4e-5),
            region("chr1", 500, 800, "*", 1e-3),
            region("chr2", 200, 450, "*", 2e-5),
            region("chr2", 700, 950, "*", 9e-4),
        ],
        Metadata(
            {
                "cell": "GM12878",
                "sex": "female",
                "dataType": "ChipSeq",
            }
        ),
    )
    return Dataset("PEAKS", schema, [sample1, sample2])


class TestFigure2Instance:
    def test_two_samples(self, peaks_dataset):
        assert len(peaks_dataset) == 2

    def test_sample_1_has_5_regions_4_metadata(self, peaks_dataset):
        assert len(peaks_dataset[1]) == 5
        assert len(peaks_dataset[1].meta) == 4

    def test_sample_2_has_4_regions_3_metadata(self, peaks_dataset):
        assert len(peaks_dataset[2]) == 4
        assert len(peaks_dataset[2].meta) == 3

    def test_regions_fall_within_two_chromosomes(self, peaks_dataset):
        assert peaks_dataset.chromosomes() == ("chr1", "chr2")

    def test_variable_schema_is_p_value(self, peaks_dataset):
        assert peaks_dataset.schema.names == ("p_value",)

    def test_sample_1_regions_are_stranded(self, peaks_dataset):
        assert all(r.strand in ("+", "-") for r in peaks_dataset[1])

    def test_sample_2_regions_are_unstranded(self, peaks_dataset):
        assert all(r.strand == "*" for r in peaks_dataset[2])

    def test_metadata_tell_karyotype_and_sex(self, peaks_dataset):
        assert peaks_dataset[1].meta.matches("karyotype", "cancer")
        assert peaks_dataset[2].meta.matches("sex", "female")

    def test_region_rows_carry_sample_id_first(self, peaks_dataset):
        rows = list(peaks_dataset.region_rows())
        assert len(rows) == 9
        assert rows[0][0] == 1
        # id, chrom, left, right, strand, p_value
        assert len(rows[0]) == 6

    def test_metadata_triples(self, peaks_dataset):
        triples = list(peaks_dataset.metadata_triples())
        assert len(triples) == 7
        assert (1, "karyotype", "cancer") in triples
        assert (2, "sex", "female") in triples

    def test_id_connects_regions_and_metadata(self, peaks_dataset):
        """The many-to-many connection through the sample id."""
        region_ids = {row[0] for row in peaks_dataset.region_rows()}
        meta_ids = {t[0] for t in peaks_dataset.metadata_triples()}
        assert region_ids == meta_ids == {1, 2}

    def test_render_tables_shows_both_entities(self, peaks_dataset):
        text = render_tables(peaks_dataset)
        assert "Regions:" in text
        assert "Metadata:" in text
        assert "karyotype" in text
        assert "p_value" in text
