"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.formats import write_dataset
from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region


@pytest.fixture()
def encode_dir(tmp_path):
    schema = RegionSchema.of(("p_value", FLOAT))
    dataset = Dataset(
        "ENCODE",
        schema,
        [
            Sample(1, [region("chr1", 0, 100, "*", 1e-5)],
                   Metadata({"dataType": "ChipSeq", "cell": "HeLa-S3"})),
            Sample(2, [region("chr1", 200, 300, "*", 1e-2)],
                   Metadata({"dataType": "RnaSeq", "cell": "K562"})),
        ],
    )
    directory = tmp_path / "ENCODE"
    write_dataset(dataset, str(directory))
    return str(directory)


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "query.gmql"
    path.write_text(
        "R = SELECT(dataType == 'ChipSeq') ENCODE;\nMATERIALIZE R;\n"
    )
    return str(path)


class TestRun:
    def test_run_prints_summary(self, capsys, encode_dir, program_file):
        code = main(["run", program_file, "--source", f"ENCODE={encode_dir}"])
        assert code == 0
        out = capsys.readouterr().out
        assert "R: 1 sample(s), 1 region(s)" in out

    def test_run_materialises_output(self, capsys, tmp_path, encode_dir,
                                     program_file):
        out_dir = str(tmp_path / "results")
        code = main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--out", out_dir]
        )
        assert code == 0
        assert os.path.exists(os.path.join(out_dir, "R", "schema.txt"))

    def test_run_with_stats(self, capsys, encode_dir, program_file):
        code = main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SELECT" in out
        assert "total kernel time" in out

    def test_run_columnar_engine(self, capsys, encode_dir, program_file):
        code = main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--engine", "columnar"]
        )
        assert code == 0

    def test_missing_source_is_clean_error(self, capsys, program_file):
        code = main(["run", program_file])
        # An unbound source is a compile-level problem: exit 3.
        assert code == 3
        assert "error:" in capsys.readouterr().err

    def test_bad_engine_is_clean_error(self, capsys, encode_dir,
                                       program_file):
        code = main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--engine", "spark"]
        )
        assert code == 1
        assert "unknown engine" in capsys.readouterr().err

    def test_syntax_error_is_clean_error(self, capsys, tmp_path, encode_dir):
        bad = tmp_path / "bad.gmql"
        bad.write_text("THIS IS NOT GMQL")
        code = main(["run", str(bad), "--source", f"ENCODE={encode_dir}"])
        # Syntax errors get their own exit code (2), distinct from
        # semantic (3) and execution (1) failures.
        assert code == 2
        assert "syntax error:" in capsys.readouterr().err


class TestRunNewFlags:
    def test_run_auto_engine(self, capsys, encode_dir, program_file):
        code = main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--engine", "auto"]
        )
        assert code == 0
        assert "R: 1 sample(s)" in capsys.readouterr().out

    def test_run_workers_flag(self, capsys, encode_dir, program_file):
        code = main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--engine", "auto", "--workers", "2"]
        )
        assert code == 0

    def test_run_rejects_nonpositive_workers(self, capsys, encode_dir,
                                             program_file):
        with pytest.raises(SystemExit):
            main(
                ["run", program_file, "--source", f"ENCODE={encode_dir}",
                 "--engine", "parallel", "--workers", "0"]
            )
        assert "at least 1" in capsys.readouterr().err

    def test_run_trace_flag(self, capsys, encode_dir, program_file):
        code = main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--trace"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execution trace:" in out
        assert "SELECT" in out and "ms" in out


class TestChaosFlag:
    def test_chaos_transient_fault_is_retried_transparently(
        self, capsys, encode_dir, program_file
    ):
        code = main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--chaos", "seed=7;transient@repository.load:*?times=1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "R: 1 sample(s), 1 region(s)" in out
        assert "chaos: 1 fault(s) injected: transient=1" in out

    def test_chaos_noop_spec_reports_nothing_injected(
        self, capsys, encode_dir, program_file
    ):
        code = main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--chaos", "seed=7;crash@federation.*:nowhere"]
        )
        assert code == 0
        assert "chaos: no faults injected" in capsys.readouterr().out

    def test_chaos_permanent_fault_is_clean_error(
        self, capsys, encode_dir, program_file
    ):
        code = main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--chaos", "seed=7;transient@repository.load:ENCODE"]
        )
        assert code == 1
        assert "attempt(s) failed" in capsys.readouterr().err

    def test_bad_chaos_spec_is_clean_error(
        self, capsys, encode_dir, program_file
    ):
        code = main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--chaos", "explode@everything"]
        )
        assert code == 1
        assert "unknown fault kind" in capsys.readouterr().err

    def test_chaos_disarmed_after_run(self, encode_dir, program_file):
        from repro.resilience import armed

        main(
            ["run", program_file, "--source", f"ENCODE={encode_dir}",
             "--chaos", "seed=7;latency@*?ms=1"]
        )
        assert armed() is None


class TestCheck:
    def test_clean_program_exits_zero(self, capsys, program_file):
        code = main(["check", program_file])
        assert code == 0
        assert "ok: no findings" in capsys.readouterr().out

    def test_clean_program_with_sources(self, capsys, encode_dir,
                                        program_file):
        code = main(
            ["check", program_file, "--source", f"ENCODE={encode_dir}"]
        )
        assert code == 0

    def test_semantic_error_exits_three(self, capsys, tmp_path):
        bad = tmp_path / "bad.gmql"
        bad.write_text("X = COVER(5, 2) RAW;\nMATERIALIZE X;\n")
        code = main(["check", str(bad)])
        assert code == 3
        out = capsys.readouterr().out
        assert "GQL106" in out
        assert "1 error(s)" in out
        assert "^" in out  # caret frame

    def test_warning_only_exits_zero_without_strict(self, capsys, tmp_path):
        warn = tmp_path / "warn.gmql"
        warn.write_text(
            "X = SELECT(region: left < 0) RAW;\nMATERIALIZE X;\n"
        )
        code = main(["check", str(warn)])
        assert code == 0
        assert "GQL107" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, capsys, tmp_path):
        warn = tmp_path / "warn.gmql"
        warn.write_text(
            "X = SELECT(region: left < 0) RAW;\nMATERIALIZE X;\n"
        )
        code = main(["check", "--strict", str(warn)])
        assert code == 3

    def test_json_format(self, capsys, tmp_path):
        import json

        bad = tmp_path / "bad.gmql"
        bad.write_text("X = COVER(5, 2) RAW;\nMATERIALIZE X;\n")
        code = main(["check", "--format", "json", str(bad)])
        assert code == 3
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["errors"] == 1
        diagnostic = report["diagnostics"][0]
        assert diagnostic["code"] == "GQL106"
        assert diagnostic["severity"] == "error"
        assert diagnostic["span"]["line"] == 1

    def test_syntax_error_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.gmql"
        bad.write_text("THIS IS NOT GMQL")
        code = main(["check", str(bad)])
        assert code == 2
        assert "syntax error:" in capsys.readouterr().err

    def test_rules_listing(self, capsys):
        code = main(["check", "--rules"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GQL101" in out and "GQL114" in out

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "GMQL semantic error" in out


class TestExplainAnalyze:
    def test_analyze_prints_backends_and_timings(
        self, capsys, encode_dir, program_file
    ):
        code = main(
            ["explain", program_file, "--analyze",
             "--source", f"ENCODE={encode_dir}"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine=auto" in out
        assert "backend=" in out
        assert "rows=" in out and "->" in out
        assert "time=" in out
        assert out.strip().splitlines()[-1].startswith("total:")

    def test_analyze_with_pinned_engine(
        self, capsys, encode_dir, program_file
    ):
        code = main(
            ["explain", program_file, "--analyze", "--engine", "naive",
             "--source", f"ENCODE={encode_dir}"]
        )
        assert code == 0
        assert "backend=naive" in capsys.readouterr().out

    def test_analyze_missing_source_is_clean_error(
        self, capsys, program_file
    ):
        code = main(["explain", program_file, "--analyze"])
        assert code == 3
        assert "unknown source dataset" in capsys.readouterr().err


class TestOtherCommands:
    def test_explain(self, capsys, program_file):
        code = main(["explain", program_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "SELECT" in out and "SCAN ENCODE" in out

    def test_info(self, capsys, encode_dir):
        code = main(["info", encode_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "samples:        2" in out
        assert "p_value" in out

    def test_info_missing_directory(self, capsys, tmp_path):
        code = main(["info", str(tmp_path / "nope")])
        assert code == 1

    def test_formats_listing(self, capsys):
        code = main(["formats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "narrowpeak" in out
        assert ".bed" in out

    def test_convert_narrowpeak_to_bed(self, capsys, tmp_path):
        source = tmp_path / "in.narrowPeak"
        source.write_text(
            "chr1\t100\t200\tpeak1\t13\t+\t4.5\t3.2\t-1\t50\n"
        )
        destination = tmp_path / "out.bed"
        code = main(["convert", str(source), str(destination)])
        assert code == 0
        text = destination.read_text()
        assert text.startswith("chr1\t100\t200\tpeak1\t13\t+")

    def test_convert_unknown_extension(self, capsys, tmp_path):
        source = tmp_path / "in.xyz"
        source.write_text("x")
        code = main(["convert", str(source), str(tmp_path / "out.bed")])
        assert code == 1
