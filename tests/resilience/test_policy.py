"""Tests for retry policies, timeouts and the deadline-aware retry loop."""

import random

import pytest

from repro.engine import ExecutionContext
from repro.errors import (
    CallTimeoutError,
    CorruptTransferError,
    ExecutionCancelled,
    HostDownError,
    RetryExhaustedError,
    SearchError,
    TransientNetworkError,
)
from repro.resilience import (
    RetryPolicy,
    SimulatedClock,
    Timeout,
    call_with_retry,
)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.3,
                             jitter=0.0)
        delays = [policy.delay_for(a) for a in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        first = [policy.delay_for(1, random.Random(7)) for __ in range(3)]
        second = [policy.delay_for(1, random.Random(7)) for __ in range(3)]
        assert first == second                      # same seed, same jitter
        assert all(0.5 <= d <= 1.5 for d in first)  # within +/- jitter

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientNetworkError("x"))
        assert policy.is_retryable(HostDownError("x"))
        assert policy.is_retryable(CallTimeoutError("x"))
        assert policy.is_retryable(CorruptTransferError("x"))
        assert not policy.is_retryable(SearchError("x"))
        assert not policy.is_retryable(ValueError("x"))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)


class FlakyThenGood:
    """Callable failing *failures* times before succeeding."""

    def __init__(self, failures, error=TransientNetworkError("blip")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


class TestCallWithRetry:
    def test_transient_then_recover(self):
        clock = SimulatedClock()
        fn = FlakyThenGood(2)
        result = call_with_retry(
            fn, RetryPolicy(max_attempts=3, jitter=0.0), clock=clock
        )
        assert result == "ok"
        assert fn.calls == 3
        assert clock.slept > 0          # backoff happened, in virtual time

    def test_exhaustion_wraps_last_error(self):
        fn = FlakyThenGood(10)
        with pytest.raises(RetryExhaustedError) as info:
            call_with_retry(fn, RetryPolicy(max_attempts=3, jitter=0.0),
                            clock=SimulatedClock())
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, TransientNetworkError)
        assert fn.calls == 3

    def test_non_retryable_raises_immediately(self):
        fn = FlakyThenGood(5, error=SearchError("offline"))
        with pytest.raises(SearchError):
            call_with_retry(fn, RetryPolicy(max_attempts=5),
                            clock=SimulatedClock())
        assert fn.calls == 1

    def test_backoff_schedule_is_deterministic(self):
        def run():
            clock = SimulatedClock()
            with pytest.raises(RetryExhaustedError):
                call_with_retry(
                    FlakyThenGood(99),
                    RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.3),
                    clock=clock, rng=random.Random(42),
                )
            return clock.slept

        assert run() == run()

    def test_on_attempt_reports_each_failure(self):
        seen = []
        call_with_retry(
            FlakyThenGood(2), RetryPolicy(max_attempts=3, jitter=0.0),
            clock=SimulatedClock(),
            on_attempt=lambda attempt, error: seen.append(
                (attempt, type(error).__name__)
            ),
        )
        assert seen == [(1, "TransientNetworkError"),
                        (2, "TransientNetworkError")]


class TestTimeout:
    def test_budget_without_context(self):
        assert Timeout(5.0).budget() == 5.0
        assert Timeout().budget() is None

    def test_budget_capped_by_deadline(self):
        clock = SimulatedClock()
        context = ExecutionContext(timeout_seconds=2.0, clock=clock)
        assert Timeout(5.0).budget(context) == pytest.approx(2.0)
        assert Timeout(1.0).budget(context) == pytest.approx(1.0)
        assert Timeout().budget(context) == pytest.approx(2.0)

    def test_slow_call_times_out_and_retries(self):
        clock = SimulatedClock()

        calls = []

        def sometimes_slow():
            calls.append(1)
            if len(calls) == 1:
                clock.advance(10.0)      # first call is pathologically slow
            return "ok"

        result = call_with_retry(
            sometimes_slow, RetryPolicy(max_attempts=2, jitter=0.0),
            clock=clock, timeout=Timeout(1.0),
        )
        assert result == "ok"
        assert len(calls) == 2          # slow attempt discarded, retried
