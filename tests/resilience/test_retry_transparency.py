"""Property: transient faults are invisible in results (retry transparency).

For *any* seeded fault schedule containing only transient faults (each
healing within the retry budget), a federated query must return exactly
the same results as the fault-free run -- retries may cost traffic and
simulated time, but never correctness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import FederatedClient, FederationNode, Network
from repro.gdm import Dataset, Metadata, RegionSchema, Sample, region
from repro.repository import Catalog
from repro.resilience import FaultInjector, FaultRule, RetryPolicy

PROGRAM = "R = SELECT() PEAKS; MATERIALIZE R;"

#: Points a transient schedule may target (host filled in per rule).
TRANSIENT_POINTS = (
    "federation.info:{host}",
    "federation.execute:{host}",
    "federation.chunk:{host}",
    "staging.retrieve:{host}",
)
#: Payload-corrupting faults are transient too: checksums catch them and
#: the chunk is re-fetched.
CORRUPT_POINT = "federation.transfer:{host}"

MAX_ATTEMPTS = 4


def tiny_dataset(index):
    ds = Dataset("PEAKS", RegionSchema.empty())
    ds.add_sample(
        Sample(
            1,
            [region("chr1", 500 * index + i * 40, 500 * index + i * 40 + 20)
             for i in range(1 + index)],
            Metadata({"part": str(index)}),
        )
    )
    return ds


def build_client(injector, seed):
    network = Network(injector=injector)
    nodes = []
    for index in range(2):
        catalog = Catalog(f"n{index}")
        catalog.register(tiny_dataset(index))
        nodes.append(FederationNode(f"n{index}", catalog, network))
    return FederatedClient(
        nodes, network, seed=seed,
        policy=RetryPolicy(max_attempts=MAX_ATTEMPTS, base_delay=0.01,
                           jitter=0.2),
    )


def digests(outcome):
    return {
        node: {name: info["sha256"] for name, info in outputs.items()}
        for node, outputs in outcome.results.items()
    }


transient_rules = st.lists(
    st.builds(
        lambda template, host, times: FaultRule(
            "corrupt" if template == CORRUPT_POINT else "transient",
            template.format(host=host),
            times=times,
        ),
        template=st.sampled_from(TRANSIENT_POINTS + (CORRUPT_POINT,)),
        host=st.sampled_from(["n0", "n1", "*"]),
        times=st.integers(min_value=1, max_value=MAX_ATTEMPTS - 1),
    ),
    max_size=3,
    # The transparency precondition: every fault heals within one call's
    # retry budget.  Rules can stack on the same injection point, so the
    # *total* injections any single call may absorb must stay below the
    # attempt count (hypothesis found the 1+1+2 == MAX_ATTEMPTS stack).
).filter(lambda rules: sum(r.times for r in rules) < MAX_ATTEMPTS)


@settings(max_examples=25, deadline=None)
@given(rules=transient_rules, chaos_seed=st.integers(0, 2**16))
def test_transient_schedules_never_change_results(rules, chaos_seed):
    clean = build_client(None, seed=chaos_seed).run_scatter(PROGRAM)
    chaotic_client = build_client(
        FaultInjector(rules, seed=chaos_seed), seed=chaos_seed
    )
    chaotic = chaotic_client.run_scatter(PROGRAM)
    assert chaotic.degraded is False
    assert chaotic.skipped_hosts == ()
    assert digests(chaotic) == digests(clean)


@settings(max_examples=10, deadline=None)
@given(rules=transient_rules, chaos_seed=st.integers(0, 2**16))
def test_transient_schedules_replay_deterministically(rules, chaos_seed):
    def run():
        client = build_client(FaultInjector(rules, seed=chaos_seed),
                              seed=chaos_seed)
        outcome = client.run_scatter(PROGRAM)
        return (digests(outcome), outcome.retries, outcome.bytes_moved)

    assert run() == run()
