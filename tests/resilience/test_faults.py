"""Tests for the deterministic fault injector and the chaos spec language."""

import pytest

from repro.errors import (
    HostDownError,
    ResilienceError,
    TransientNetworkError,
)
from repro.resilience import FaultInjector, FaultRule, arm, armed, disarm


class TestSpecParsing:
    def test_full_spec(self):
        injector = FaultInjector.from_spec(
            "seed=42;crash@*:h2;transient@federation.execute:h1?times=2;"
            "latency@iog.links:*?ms=250,p=0.5"
        )
        assert injector.seed == 42
        kinds = [rule.kind for rule in injector.rules]
        assert kinds == ["crash", "transient", "latency"]
        latency = injector.rules[2]
        assert latency.latency_seconds == pytest.approx(0.25)
        assert latency.probability == 0.5
        assert injector.rules[1].times == 2

    def test_empty_clauses_ignored(self):
        injector = FaultInjector.from_spec("seed=1;;crash@*:x;")
        assert len(injector.rules) == 1

    @pytest.mark.parametrize("spec", [
        "crash",                      # no @POINT
        "explode@*:h1",               # unknown kind
        "transient@h1?bogus=3",       # unknown parameter
        "transient@h1?times=soon",    # bad value
        "seed=pi",                    # bad seed
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ResilienceError):
            FaultInjector.from_spec(spec)

    def test_rule_validation(self):
        with pytest.raises(ResilienceError):
            FaultRule("transient", "*", probability=1.5)
        with pytest.raises(ResilienceError):
            FaultRule("transient", "*", times=0)


class TestFiring:
    def test_miss_returns_payload_unchanged(self):
        injector = FaultInjector([FaultRule("crash", "federation.*")])
        payload, delay = injector.fire("iog.links:h1", b"data")
        assert payload == b"data"
        assert delay == 0.0
        assert injector.injected == []

    def test_crash_is_permanent(self):
        injector = FaultInjector([FaultRule("crash", "*:h2")])
        for __ in range(5):
            with pytest.raises(HostDownError):
                injector.fire("federation.execute:h2")
        assert len(injector.injected) == 5

    def test_transient_respects_times(self):
        injector = FaultInjector([FaultRule("transient", "*:h1", times=2)])
        for __ in range(2):
            with pytest.raises(TransientNetworkError):
                injector.fire("federation.execute:h1")
        injector.fire("federation.execute:h1")      # healed
        assert injector.injected_by_kind() == {"transient": 2}

    def test_latency_accumulates(self):
        injector = FaultInjector(
            [FaultRule("latency", "*", latency_seconds=0.1),
             FaultRule("latency", "iog.*", latency_seconds=0.4)]
        )
        __, delay = injector.fire("iog.links:h1")
        assert delay == pytest.approx(0.5)

    def test_corruption_is_detectable_and_bounded(self):
        injector = FaultInjector([FaultRule("corrupt", "*", times=1)], seed=3)
        original = b"the quick brown fox"
        corrupted, __ = injector.fire("federation.transfer:h1", original)
        assert corrupted != original
        assert len(corrupted) == len(original)
        # times=1 exhausted: later payloads pass untouched.
        clean, __ = injector.fire("federation.transfer:h1", original)
        assert clean == original

    def test_probability_and_replay_are_seeded(self):
        def run(seed):
            injector = FaultInjector(
                [FaultRule("transient", "*", probability=0.5)], seed=seed
            )
            outcomes = []
            for __ in range(20):
                try:
                    injector.fire("p")
                    outcomes.append("ok")
                except TransientNetworkError:
                    outcomes.append("fail")
            return outcomes

        assert run(7) == run(7)                     # byte-for-byte replay
        assert run(7) != run(8)                     # seed actually matters
        assert {"ok", "fail"} == set(run(7))        # p=0.5 mixes outcomes


class TestAmbientInjector:
    def test_arm_and_disarm(self):
        injector = FaultInjector([FaultRule("crash", "*:x")])
        assert armed() is None
        try:
            assert arm(injector) is injector
            assert armed() is injector
        finally:
            disarm()
        assert armed() is None

    def test_network_picks_up_ambient(self):
        from repro.federation import Network

        network = Network()
        try:
            arm(FaultInjector([FaultRule("latency", "*",
                                         latency_seconds=1.0)]))
            network.fire("anything")
            assert network.log.simulated_seconds == pytest.approx(1.0)
        finally:
            disarm()

    def test_explicit_injector_beats_ambient(self):
        from repro.federation import Network

        explicit = FaultInjector([FaultRule("latency", "*",
                                            latency_seconds=2.0)])
        network = Network(injector=explicit)
        try:
            arm(FaultInjector([FaultRule("crash", "*")]))
            network.fire("anything")    # crash rule must NOT fire
            assert network.log.simulated_seconds == pytest.approx(2.0)
        finally:
            disarm()
