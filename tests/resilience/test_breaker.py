"""Tests for per-host circuit breakers and the breaker registry."""

import pytest

from repro.errors import CircuitOpenError
from repro.resilience import BreakerRegistry, CircuitBreaker, SimulatedClock
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN


@pytest.fixture()
def clock():
    return SimulatedClock()


class TestCircuitBreaker:
    def test_opens_after_threshold(self, clock):
        breaker = CircuitBreaker("h1", failure_threshold=3, clock=clock)
        for __ in range(2):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_open_breaker_rejects_instantly(self, clock):
        breaker = CircuitBreaker("h1", failure_threshold=1,
                                 reset_seconds=30.0, clock=clock)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError) as info:
            breaker.before_call()
        assert info.value.host == "h1"
        assert breaker.rejections == 1

    def test_half_open_probe_after_reset_window(self, clock):
        breaker = CircuitBreaker("h1", failure_threshold=1,
                                 reset_seconds=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()            # no raise: probe allowed
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self, clock):
        breaker = CircuitBreaker("h1", failure_threshold=1,
                                 reset_seconds=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.before_call()            # healthy again

    def test_probe_failure_reopens(self, clock):
        breaker = CircuitBreaker("h1", failure_threshold=5,
                                 reset_seconds=10.0, clock=clock)
        for __ in range(5):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_failure()         # one probe failure is enough
        assert breaker.state == OPEN
        assert breaker.trips == 2
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_success_resets_failure_streak(self, clock):
        breaker = CircuitBreaker("h1", failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED   # streak broken, not cumulative


class TestBreakerRegistry:
    def test_one_breaker_per_host(self, clock):
        registry = BreakerRegistry(clock=clock)
        assert registry.get("a") is registry.get("a")
        assert registry.get("a") is not registry.get("b")

    def test_states_and_open_hosts(self, clock):
        registry = BreakerRegistry(failure_threshold=1, clock=clock)
        registry.get("a").record_failure()
        registry.get("b").record_success()
        assert registry.states() == {"a": OPEN, "b": CLOSED}
        assert registry.open_hosts() == ["a"]
