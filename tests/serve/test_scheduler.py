"""Scheduler: concurrent byte-identity, coalescing, deadlines, pools."""

import asyncio
import multiprocessing

import pytest

from repro.engine.context import ExecutionContext
from repro.errors import ExecutionCancelled, GmqlCompileError
from repro.resilience.clock import SimulatedClock
from repro.serve.scheduler import QueryScheduler
from repro.serve.state import WarmState
from repro.store.cache import reset_result_cache

from tests.serve.util import (
    P_COVER,
    P_MAP,
    P_SELECT,
    make_sources,
    reference_digests,
)


@pytest.fixture(autouse=True)
def isolated_cache():
    reset_result_cache()
    yield
    reset_result_cache()


def run_scenario(coro_factory, engine="columnar", workers=None,
                 max_concurrency=3):
    """Drive one scheduler scenario on a fresh event loop.

    ``coro_factory(scheduler)`` returns the coroutine to run; the
    scheduler is drained and its slots closed before the loop exits.
    """
    state = WarmState(make_sources(), engine=engine, workers=workers,
                      result_cache_enabled=True)
    state.warm()

    async def main():
        scheduler = QueryScheduler(state, max_concurrency=max_concurrency)
        try:
            return await coro_factory(scheduler), scheduler.stats()
        finally:
            await scheduler.aclose()

    try:
        return asyncio.run(main())
    finally:
        state.close()


def no_deadline_context():
    return ExecutionContext(result_cache=True)


class TestConcurrentByteIdentity:
    def test_identical_and_distinct_in_flight_match_single_shot(self):
        """Satellite check: N identical + M distinct concurrent queries
        come back byte-identical to fresh single-shot naive runs."""
        sources = make_sources()
        expected = reference_digests(sources)

        async def scenario(scheduler):
            jobs = [scheduler.run(P_MAP, context=no_deadline_context())
                    for _ in range(4)]
            jobs += [scheduler.run(program,
                                   context=no_deadline_context())
                     for program in (P_SELECT, P_COVER)]
            return await asyncio.gather(*jobs)

        outcomes, stats = run_scenario(scenario)
        map_outcomes, select_outcome, cover_outcome = (
            outcomes[:4], outcomes[4], outcomes[5]
        )
        for outcome in map_outcomes:
            assert outcome.digest == expected[P_MAP]
        assert select_outcome.digest == expected[P_SELECT]
        assert cover_outcome.digest == expected[P_COVER]
        # the identical MAPs coalesced onto one execution
        assert sum(o.coalesced for o in map_outcomes) == 3
        assert stats["coalesced"] == 3
        assert stats["queries"] == 3  # one MAP + SELECT + COVER
        assert stats["active"] == 0
        assert stats["failures"] == 0

    def test_deadline_bearing_requests_never_coalesce(self):
        async def scenario(scheduler):
            contexts = [
                ExecutionContext(timeout_seconds=30.0, result_cache=True)
                for _ in range(3)
            ]
            return await asyncio.gather(
                *(scheduler.run(P_SELECT, context=c) for c in contexts)
            )

        outcomes, stats = run_scenario(scenario)
        assert stats["coalesced"] == 0
        assert stats["queries"] == 3
        assert len({o.digest for o in outcomes}) == 1


class TestResultCache:
    def test_repeat_query_hits_fingerprint_cache(self):
        async def scenario(scheduler):
            first = await scheduler.run(
                P_COVER, context=no_deadline_context()
            )
            second = await scheduler.run(
                P_COVER, context=no_deadline_context()
            )
            return first, second

        (first, second), _ = run_scenario(scenario)
        assert first.digest == second.digest
        assert first.cache_hits == 0
        assert second.cache_hits >= 1  # warm fingerprint cache served it

    def test_coalesced_followers_report_shared_outcome(self):
        async def scenario(scheduler):
            return await asyncio.gather(
                *(scheduler.run(P_SELECT, context=no_deadline_context())
                  for _ in range(5))
            )

        outcomes, stats = run_scenario(scenario)
        assert stats["queries"] == 1
        assert [o.coalesced for o in outcomes].count(True) == 4
        assert len({o.digest for o in outcomes}) == 1


class TestDeadlines:
    def test_deadline_expired_in_queue_rejected_before_execution(self):
        clock = SimulatedClock()
        context = ExecutionContext(
            timeout_seconds=5.0, result_cache=False, clock=clock
        )
        clock.advance(10.0)  # budget gone before the scheduler sees it

        async def scenario(scheduler):
            with pytest.raises(ExecutionCancelled):
                await scheduler.run(P_MAP, context=context)
            return None

        _, stats = run_scenario(scenario)
        assert not context.tracer.roots  # nothing executed, not even a span
        assert stats["failures"] == 1
        assert stats["queries"] == 0


class TestRejectionAndLifecycle:
    def test_compile_error_raises_without_occupying_a_slot(self):
        async def scenario(scheduler):
            with pytest.raises(GmqlCompileError):
                await scheduler.run(
                    "OUT = SELECT(region: bogus == 1) EXP; "
                    "MATERIALIZE OUT;",
                    context=no_deadline_context(),
                )
            return None

        _, stats = run_scenario(scenario)
        assert stats["queries"] == 0
        # a compile rejection is not an execution failure
        assert stats["failures"] == 0

    def test_closed_scheduler_refuses_work(self):
        async def main():
            state = WarmState(make_sources(), engine="columnar")
            scheduler = QueryScheduler(state, max_concurrency=1)
            await scheduler.aclose()
            await scheduler.aclose()  # idempotent
            with pytest.raises(RuntimeError, match="closed"):
                await scheduler.run(P_SELECT)
            state.close()

        asyncio.run(main())

    def test_slots_are_bounded_and_reused(self):
        async def scenario(scheduler):
            return await asyncio.gather(
                *(scheduler.run(program, context=no_deadline_context())
                  for program in (P_SELECT, P_COVER, P_MAP) * 3)
            )

        outcomes, stats = run_scenario(scenario, max_concurrency=2)
        assert len(outcomes) == 9
        assert stats["slots_created"] <= 2


class TestWorkerPoolLifecycle:
    def test_no_worker_processes_leak_after_shutdown(self):
        """Satellite check: shared-pool engines leave no children behind
        once the scheduler and warm state close."""
        sources = make_sources()
        expected = reference_digests(sources)

        async def scenario(scheduler):
            return await asyncio.gather(
                *(scheduler.run(P_MAP, context=no_deadline_context())
                  for _ in range(2))
            )

        outcomes, _ = run_scenario(
            scenario, engine="parallel", workers=2, max_concurrency=2
        )
        for outcome in outcomes:
            assert outcome.digest == expected[P_MAP]
        assert multiprocessing.active_children() == []
