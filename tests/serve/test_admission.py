"""Admission control: quotas, breakers, tickets — all in virtual time."""

import pytest

from repro.resilience.clock import SimulatedClock
from repro.serve.admission import (
    AdmissionController,
    AdmissionRejected,
    TenantQuota,
)


def controller(default=None, quotas=None, **breaker):
    return AdmissionController(
        default_quota=default,
        quotas=quotas,
        clock=SimulatedClock(),
        **breaker,
    )


class TestQuotaParse:
    def test_full_spec(self):
        quota = TenantQuota.parse(
            "concurrent=2, rate=10, window=30, deadline=5"
        )
        assert quota.max_concurrent == 2
        assert quota.max_per_window == 10
        assert quota.window_seconds == 30.0
        assert quota.max_deadline_seconds == 5.0

    def test_partial_spec_keeps_defaults(self):
        quota = TenantQuota.parse("concurrent=8")
        assert quota.max_concurrent == 8
        assert quota.max_deadline_seconds == 30.0  # class default

    def test_unknown_key_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown quota key"):
            TenantQuota.parse("concurrency=8")

    def test_missing_equals_fails(self):
        with pytest.raises(ValueError, match="KEY=VALUE"):
            TenantQuota.parse("concurrent")


class TestConcurrencyQuota:
    def test_over_concurrency_rejected_then_admitted_after_release(self):
        ctl = controller(TenantQuota(max_concurrent=2))
        t1 = ctl.admit("lab")
        ctl.admit("lab")
        with pytest.raises(AdmissionRejected) as info:
            ctl.admit("lab")
        assert info.value.reason == "over-concurrency"
        assert info.value.status == 429
        ctl.release(t1)
        ctl.admit("lab")  # slot freed

    def test_tenants_do_not_share_slots(self):
        ctl = controller(TenantQuota(max_concurrent=1))
        ctl.admit("a")
        ctl.admit("b")  # different tenant, own budget
        with pytest.raises(AdmissionRejected):
            ctl.admit("a")

    def test_release_is_idempotent(self):
        ctl = controller(TenantQuota(max_concurrent=1))
        ticket = ctl.admit("lab")
        ctl.release(ticket)
        ctl.release(ticket)  # double release must not free a phantom slot
        assert ctl.stats()["tenants"]["lab"]["in_flight"] == 0
        ctl.admit("lab")
        with pytest.raises(AdmissionRejected):
            ctl.admit("lab")


class TestRateQuota:
    def test_sliding_window(self):
        ctl = controller(
            TenantQuota(max_concurrent=None, max_per_window=2,
                        window_seconds=60.0)
        )
        ctl.release(ctl.admit("lab"))
        ctl.release(ctl.admit("lab"))
        with pytest.raises(AdmissionRejected) as info:
            ctl.admit("lab")
        assert info.value.reason == "over-rate"
        assert info.value.status == 429
        # the hint points at when the oldest admission leaves the window
        assert info.value.retry_after_seconds == pytest.approx(60.0)
        ctl.clock.advance(61.0)
        ctl.admit("lab")  # window slid past both admissions

    def test_rejections_do_not_consume_rate(self):
        ctl = controller(
            TenantQuota(max_concurrent=None, max_per_window=1,
                        window_seconds=60.0)
        )
        ctl.admit("lab")
        for _ in range(5):
            with pytest.raises(AdmissionRejected):
                ctl.admit("lab")
        ctl.clock.advance(61.0)
        ctl.admit("lab")  # the 5 rejections did not refill the window


class TestDeadlineQuota:
    def test_over_cap_rejected_as_422(self):
        ctl = controller(TenantQuota(max_deadline_seconds=5.0))
        with pytest.raises(AdmissionRejected) as info:
            ctl.admit("lab", deadline_seconds=10.0)
        assert info.value.reason == "over-deadline"
        assert info.value.status == 422

    def test_non_positive_deadline_rejected(self):
        ctl = controller(TenantQuota(max_deadline_seconds=None))
        with pytest.raises(AdmissionRejected) as info:
            ctl.admit("lab", deadline_seconds=-1.0)
        assert info.value.reason == "over-deadline"

    def test_cap_is_the_default_budget(self):
        ctl = controller(TenantQuota(max_deadline_seconds=5.0))
        assert ctl.admit("lab").deadline_seconds == 5.0
        assert ctl.admit("lab", deadline_seconds=2.0).deadline_seconds == 2.0

    def test_no_cap_means_no_deadline(self):
        ctl = controller(TenantQuota(max_deadline_seconds=None))
        assert ctl.admit("lab").deadline_seconds is None


class TestBreaker:
    def test_opens_after_failures_and_recovers(self):
        ctl = controller(
            TenantQuota(max_concurrent=None),
            breaker_failure_threshold=2,
            breaker_reset_seconds=30.0,
        )
        for _ in range(2):
            ctl.release(ctl.admit("flaky"), failed=True)
        with pytest.raises(AdmissionRejected) as info:
            ctl.admit("flaky")
        assert info.value.reason == "breaker-open"
        assert info.value.status == 503
        assert info.value.retry_after_seconds == 30.0
        # other tenants keep their own service health
        ctl.admit("healthy")
        ctl.clock.advance(31.0)
        ticket = ctl.admit("flaky")  # half-open probe admitted
        ctl.release(ticket, failed=False)
        ctl.admit("flaky")  # success closed the breaker


class TestPerTenantQuotas:
    def test_named_quota_overrides_default(self):
        ctl = controller(
            TenantQuota(max_concurrent=1),
            quotas={"big": TenantQuota(max_concurrent=3)},
        )
        for _ in range(3):
            ctl.admit("big")
        ctl.admit("small")
        with pytest.raises(AdmissionRejected):
            ctl.admit("small")

    def test_stats_shape(self):
        ctl = controller(TenantQuota(max_concurrent=1))
        ticket = ctl.admit("lab")
        with pytest.raises(AdmissionRejected):
            ctl.admit("lab")
        ctl.release(ticket)
        stats = ctl.stats()
        assert stats["tenants"]["lab"] == {
            "in_flight": 0,
            "admitted": 1,
            "rejected": {"over-concurrency": 1},
        }
        assert "lab" in stats["breakers"]
