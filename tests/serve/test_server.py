"""The HTTP front end, exercised over real sockets on an ephemeral port."""

import multiprocessing
import threading

import pytest

from repro.serve.admission import AdmissionController, TenantQuota
from repro.serve.client import ServeClient
from repro.serve.server import QueryServer, ServerThread
from repro.serve.state import WarmState
from repro.store.cache import reset_result_cache

from tests.serve.util import (
    P_COVER,
    P_MAP,
    P_SELECT,
    make_sources,
    reference_digests,
)


@pytest.fixture(scope="module")
def expected():
    return reference_digests(make_sources())


@pytest.fixture(scope="module")
def server():
    reset_result_cache()
    state = WarmState(make_sources(), engine="columnar",
                      result_cache_enabled=True)
    admission = AdmissionController(
        default_quota=TenantQuota(
            max_concurrent=16, max_per_window=None,
            max_deadline_seconds=5.0,
        ),
        quotas={
            "limited": TenantQuota(
                max_concurrent=None, max_per_window=1,
                window_seconds=3600.0, max_deadline_seconds=None,
            ),
        },
    )
    query_server = QueryServer(
        state, admission=admission, port=0, max_concurrency=3
    )
    with ServerThread(query_server):
        yield query_server
    reset_result_cache()


@pytest.fixture
def client(server):
    with ServeClient(port=server.port) as serve_client:
        yield serve_client


class TestPlumbing:
    def test_healthz(self, client):
        response = client.healthz()
        assert response.status == 200
        assert response.payload == {"status": "ok"}

    def test_datasets_lists_resident_sources(self, client):
        payload = client.datasets().payload["datasets"]
        assert set(payload) == {"REF", "EXP"}
        assert payload["EXP"]["samples"] == 3

    def test_unknown_route_404(self, client):
        assert client.request("GET", "/nope").status == 404

    def test_wrong_method_405(self, client):
        assert client.request("GET", "/query").status == 405

    def test_invalid_json_400(self, client):
        response = client.request("POST", "/query")
        assert response.status == 400

    def test_stats_shape(self, client):
        payload = client.stats().payload
        assert payload["state"]["engine"] == "columnar"
        assert payload["state"]["warm_seconds"] is not None
        assert "result_cache" in payload
        assert "admission" in payload
        assert payload["scheduler"]["max_concurrency"] == 3


class TestCheck:
    def test_valid_program(self, client):
        response = client.check(P_MAP)
        assert response.status == 200
        assert response.payload == {"valid": True, "outputs": ["OUT"]}

    def test_semantic_rejection_carries_diagnostics(self, client):
        response = client.check(
            "OUT = SELECT(region: bogus == 1) EXP; MATERIALIZE OUT;"
        )
        assert response.status == 400
        assert response.payload["valid"] is False
        assert response.payload["diagnostics"]


class TestQuery:
    def test_result_is_byte_identical_to_single_shot(
        self, client, expected
    ):
        response = client.query(P_MAP)
        assert response.status == 200
        assert response.payload["digest"] == expected[P_MAP]
        outputs = response.payload["outputs"]
        assert outputs["OUT"]["samples"] == 6  # one per REF x EXP pair
        assert "n" in outputs["OUT"]["schema"]
        assert response.payload["timing"]["execute_ms"] >= 0.0

    def test_repeat_query_serves_from_warm_cache(self, client, expected):
        first = client.query(P_COVER)
        second = client.query(P_COVER)
        assert first.payload["digest"] == expected[P_COVER]
        assert second.payload["digest"] == expected[P_COVER]
        assert second.payload["cache"]["hits"] >= 1

    def test_tenant_header_identifies_the_caller(self, client):
        response = client.query(P_SELECT, tenant="smith-lab")
        assert response.status == 200
        assert response.payload["tenant"] == "smith-lab"
        tenants = client.stats().payload["admission"]["tenants"]
        assert tenants["smith-lab"]["admitted"] >= 1

    def test_compile_error_rejected_before_execution(self, client):
        response = client.query(
            "OUT = SELECT(region: bogus == 1) EXP; MATERIALIZE OUT;"
        )
        assert response.status == 400
        assert response.payload["reason"] == "compile-error"
        assert response.payload["rejected_before_execution"] is True
        assert response.payload["diagnostics"]

    def test_syntax_error_rejected_before_execution(self, client):
        response = client.query("THIS IS NOT GMQL")
        assert response.status == 400
        assert response.payload["reason"] == "compile-error"
        assert response.payload["rejected_before_execution"] is True


class TestAdmissionOverHttp:
    def test_over_deadline_rejected_as_422(self, client):
        response = client.query(P_SELECT, deadline_seconds=60.0)
        assert response.status == 422
        assert response.payload["reason"] == "over-deadline"
        assert response.payload["rejected_before_execution"] is True

    def test_non_positive_deadline_rejected(self, client):
        response = client.query(P_SELECT, deadline_seconds=-1.0)
        assert response.status == 422
        assert response.payload["rejected_before_execution"] is True

    def test_over_rate_rejected_with_retry_after(self, client):
        first = client.query(P_SELECT, tenant="limited")
        assert first.status == 200
        second = client.query(P_SELECT, tenant="limited")
        assert second.status == 429
        assert second.payload["reason"] == "over-rate"
        assert second.payload["rejected_before_execution"] is True
        assert float(second.headers["Retry-After"]) > 0

    def test_hopeless_deadline_times_out_before_any_kernel(self, client):
        response = client.query(P_MAP, deadline_seconds=1e-06)
        assert response.status == 504
        assert response.payload["reason"] == "deadline-exceeded"
        assert response.payload["rejected_before_execution"] is True


class TestConcurrentClients:
    def test_mixed_load_is_byte_identical_and_hits_cache(
        self, server, expected
    ):
        """Satellite check over HTTP: identical + distinct queries in
        flight all match the single-shot oracle, with warm cache hits."""
        programs = [P_MAP] * 4 + [P_SELECT, P_COVER] * 2
        responses = [None] * len(programs)

        def worker(index, program):
            with ServeClient(port=server.port) as serve_client:
                responses[index] = serve_client.query(
                    program, tenant=f"load-{index % 3}"
                )

        threads = [
            threading.Thread(target=worker, args=(index, program))
            for index, program in enumerate(programs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for program, response in zip(programs, responses):
            assert response.status == 200
            assert response.payload["digest"] == expected[program]
        with ServeClient(port=server.port) as serve_client:
            stats = serve_client.stats().payload
        assert stats["result_cache"]["hits"] >= 1
        assert stats["scheduler"]["active"] == 0


class TestShutdownHygiene:
    def test_pool_engine_leaves_no_workers_after_stop(self, expected):
        """Satellite check: a served pool engine sheds every worker
        process when the server thread stops."""
        reset_result_cache()
        state = WarmState(make_sources(), engine="parallel", workers=2,
                          result_cache_enabled=False)
        admission = AdmissionController(
            default_quota=TenantQuota(max_deadline_seconds=None)
        )
        query_server = QueryServer(
            state, admission=admission, port=0, max_concurrency=2
        )
        with ServerThread(query_server):
            with ServeClient(port=query_server.port) as serve_client:
                response = serve_client.query(P_MAP)
                assert response.status == 200
                assert response.payload["digest"] == expected[P_MAP]
        assert multiprocessing.active_children() == []
