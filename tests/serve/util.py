"""Shared fixtures for the serve suite: tiny sources + naive digests."""

from repro.engine.dispatch import get_backend
from repro.gdm import Dataset, GenomicRegion, Metadata, RegionSchema, Sample
from repro.gdm.digest import results_digest
from repro.gmql.lang import Interpreter, compile_program, optimize


def _region(chrom, left, right, strand="*"):
    return GenomicRegion(chrom, left, right, strand, ())


def make_sources():
    """Two small deterministic datasets exercising MAP/COVER/SELECT."""
    ref = Dataset(
        "REF",
        RegionSchema.empty(),
        [
            Sample(
                1,
                [_region("chr1", 0, 100), _region("chr1", 200, 320),
                 _region("chr2", 50, 150)],
                Metadata({"kind": "promoter"}),
            ),
            Sample(
                2,
                [_region("chr1", 80, 260), _region("chr2", 0, 90),
                 _region("chr3", 10, 40)],
                Metadata({"kind": "enhancer"}),
            ),
        ],
        validate=False,
    )
    exp = Dataset(
        "EXP",
        RegionSchema.empty(),
        [
            Sample(
                10,
                [_region("chr1", 10 + 7 * i, 60 + 7 * i)
                 for i in range(12)]
                + [_region("chr2", 20 + 11 * i, 70 + 11 * i)
                   for i in range(8)],
                Metadata({"cell": "A", "rep": "1"}),
            ),
            Sample(
                11,
                [_region("chr1", 5 + 13 * i, 45 + 13 * i)
                 for i in range(10)]
                + [_region("chr3", 3 + 9 * i, 33 + 9 * i)
                   for i in range(6)],
                Metadata({"cell": "A", "rep": "2"}),
            ),
            Sample(
                12,
                [_region("chr2", 8 + 17 * i, 58 + 17 * i)
                 for i in range(9)],
                Metadata({"cell": "B", "rep": "1"}),
            ),
        ],
        validate=False,
    )
    return {"REF": ref, "EXP": exp}


P_SELECT = "OUT = SELECT(cell == 'A') EXP; MATERIALIZE OUT;"
P_COVER = "OUT = COVER(1, ANY) EXP; MATERIALIZE OUT;"
P_MAP = "OUT = MAP(n AS COUNT) REF EXP; MATERIALIZE OUT;"

PROGRAMS = (P_SELECT, P_COVER, P_MAP)


def naive_digest(program, sources):
    """The reference digest: a fresh single-shot naive-engine run."""
    compiled = optimize(compile_program(program, datasets=sources))
    backend = get_backend("naive")
    try:
        results = Interpreter(backend, sources).run_program(compiled)
    finally:
        backend.close()
    return results_digest(results)


def reference_digests(sources):
    return {program: naive_digest(program, sources)
            for program in PROGRAMS}
