"""Tests for SELECT and PROJECT."""

import pytest

from repro.errors import EvaluationError
from repro.gdm import FLOAT, INT
from repro.gmql import (
    MetaCompare,
    MetaExists,
    RegionCompare,
    SemiJoin,
    project,
    select,
)


class TestSelectMetadata:
    def test_paper_selection_proms(self, annotations):
        proms = select(annotations, MetaCompare("annType", "==", "promoter"))
        assert len(proms) == 1
        assert proms[1].meta.first("annType") == "promoter"

    def test_paper_selection_peaks(self, encode):
        peaks = select(encode, MetaCompare("dataType", "==", "ChipSeq"))
        assert len(peaks) == 3

    def test_numeric_string_comparison(self, encode):
        # '1e-6' as string vs numeric: selection goes through metadata only,
        # so craft a numeric comparison against cell counts instead.
        selected = select(encode, MetaCompare("cell", "!=", "HeLa"))
        assert {s.meta.first("cell") for s in selected} == {"K562"}

    def test_and_or_not_composition(self, encode):
        predicate = (
            MetaCompare("dataType", "==", "ChipSeq")
            & MetaCompare("cell", "==", "HeLa")
        ) | MetaCompare("antibody", "==", "POL2")
        assert len(select(encode, predicate)) == 2
        negated = ~MetaCompare("dataType", "==", "ChipSeq")
        assert len(select(encode, negated)) == 1

    def test_exists_predicate(self, encode):
        assert len(select(encode, MetaExists("antibody"))) == 3

    def test_absent_attribute_satisfies_not_equal(self, encode):
        selected = select(encode, MetaCompare("antibody", "!=", "CTCF"))
        # sample 3 (POL2) and sample 4 (no antibody at all)
        assert len(selected) == 2

    def test_result_ids_renumbered_and_provenance_kept(self, encode):
        peaks = select(encode, MetaCompare("dataType", "==", "ChipSeq"))
        assert peaks.sample_ids == (1, 2, 3)
        assert [r.inputs for r in peaks.provenance] == [
            (("ENCODE", 1),),
            (("ENCODE", 2),),
            (("ENCODE", 3),),
        ]

    def test_no_predicate_keeps_everything(self, encode):
        assert len(select(encode)) == len(encode)


class TestSelectRegions:
    def test_region_filter_on_variable_attribute(self, encode):
        strict = select(encode, region_predicate=RegionCompare("p_value", "<=", 1e-4))
        assert strict.region_count() == 4

    def test_region_filter_on_fixed_attribute(self, encode):
        chr1 = select(encode, region_predicate=RegionCompare("chrom", "==", "chr1"))
        assert all(
            r.chrom == "chr1" for s in chr1 for r in s.regions
        )

    def test_empty_samples_kept(self, encode):
        none_match = select(
            encode, region_predicate=RegionCompare("p_value", "<", 0)
        )
        assert len(none_match) == len(encode)
        assert none_match.region_count() == 0

    def test_region_and_meta_combined(self, encode):
        result = select(
            encode,
            MetaCompare("cell", "==", "HeLa"),
            RegionCompare("left", ">=", 1000),
        )
        assert len(result) == 3
        assert result.region_count() == 1

    def test_unknown_region_attribute_raises(self, encode):
        with pytest.raises(Exception):
            select(encode, region_predicate=RegionCompare("missing", "==", 1))


class TestSemiJoin:
    def test_semijoin_keeps_matching_samples(self, encode, annotations):
        # Only encode samples sharing 'assembly' with annotations -- none
        # carry it, so nothing survives.
        sj = SemiJoin(("assembly",), annotations)
        assert len(select(encode, semijoin=sj)) == 0

    def test_semijoin_on_shared_attribute(self, encode):
        hela = select(encode, MetaCompare("cell", "==", "HeLa"))
        sj = SemiJoin(("cell",), hela)
        assert len(select(encode, semijoin=sj)) == 3  # the HeLa samples

    def test_negated_semijoin(self, encode):
        hela = select(encode, MetaCompare("cell", "==", "HeLa"))
        sj = SemiJoin(("cell",), hela, negated=True)
        assert {s.meta.first("cell") for s in select(encode, semijoin=sj)} == {
            "K562"
        }


class TestProject:
    def test_keep_subset(self, encode):
        projected = project(encode, region_attributes=[])
        assert len(projected.schema) == 0
        assert projected.region_count() == encode.region_count()

    def test_unknown_attribute_raises(self, encode):
        with pytest.raises(EvaluationError):
            project(encode, region_attributes=["nope"])

    def test_metadata_projection(self, encode):
        projected = project(encode, metadata_attributes=["cell"])
        assert projected.metadata_attributes() == ("cell",)

    def test_new_region_attribute_from_expression(self, encode):
        projected = project(
            encode,
            new_region_attributes={
                "length": (INT, lambda env: env["right"] - env["left"])
            },
        )
        assert projected.schema.names == ("p_value", "length")
        first = projected[1].regions[0]
        assert first.values[1] == first.length

    def test_new_attribute_can_read_variable_attributes(self, encode):
        projected = project(
            encode,
            new_region_attributes={
                "log_p": (FLOAT, lambda env: -env["p_value"])
            },
        )
        assert projected[1].regions[0].values[1] == -1e-6

    def test_new_metadata_attribute(self, encode):
        projected = project(
            encode,
            new_metadata_attributes={
                "label": lambda meta: f"{meta.first('cell')}-x"
            },
        )
        assert projected[1].meta.first("label") == "HeLa-x"

    def test_failing_expression_reports_attribute(self, encode):
        with pytest.raises(EvaluationError, match="boom_attr"):
            project(
                encode,
                new_region_attributes={
                    "boom_attr": (INT, lambda env: 1 / 0)
                },
            )
