"""Tests for the physical planner: cost annotation and backend routing."""

import pytest

from repro.engine import AutoBackend, ExecutionContext, get_backend
from repro.engine.auto import (
    COLUMNAR_REGION_THRESHOLD,
    PARALLEL_REGION_THRESHOLD,
    choose_backend,
)
from repro.gmql.lang import (
    Interpreter,
    compile_program,
    explain_analyze,
    optimize,
    plan_program,
)
from tests.engine.test_backends import canonical, random_dataset


def summaries(samples=4, regions=1_000):
    return {
        "DATA": {"samples": samples, "regions": regions, "schema": ["score"]}
    }


QUERY = (
    "A = SELECT(cell == 'HeLa') DATA;"
    " R = MAP(n AS COUNT) A DATA;"
    " MATERIALIZE R;"
)


class TestChooseBackend:
    AVAILABLE = ("auto", "columnar", "naive", "parallel")

    def test_scan_is_source(self):
        name, __ = choose_backend("scan", 10**9, self.AVAILABLE)
        assert name == "source"

    def test_small_inputs_stay_naive(self):
        for kind in ("select", "map", "join", "cover"):
            name, __ = choose_backend(kind, 10, self.AVAILABLE)
            assert name == "naive"

    def test_medium_inputs_go_columnar(self):
        name, __ = choose_backend(
            "select", COLUMNAR_REGION_THRESHOLD, self.AVAILABLE
        )
        assert name == "columnar"

    def test_region_heavy_operators_go_parallel_on_large_inputs(self):
        for kind in ("map", "join", "cover", "difference"):
            name, reason = choose_backend(
                kind, PARALLEL_REGION_THRESHOLD, self.AVAILABLE
            )
            assert name == "parallel", kind
            assert kind in reason

    def test_non_partitionable_operators_cap_at_columnar(self):
        name, __ = choose_backend(
            "select", PARALLEL_REGION_THRESHOLD * 10, self.AVAILABLE
        )
        assert name == "columnar"

    def test_degrades_without_parallel(self):
        name, __ = choose_backend(
            "map", PARALLEL_REGION_THRESHOLD, ("naive", "columnar")
        )
        assert name == "columnar"
        name, __ = choose_backend("map", PARALLEL_REGION_THRESHOLD, ("naive",))
        assert name == "naive"


class TestPlanProgram:
    def test_structure_and_estimates(self):
        compiled = optimize(compile_program(QUERY))
        physical = plan_program(compiled, summaries(), engine="auto")
        assert set(physical.outputs) == {"R"}
        root = physical.outputs["R"]
        assert root.kind == "map"
        assert root.estimate is not None and root.estimate.regions > 0
        kinds = {node.kind for node in physical.walk()}
        assert kinds == {"scan", "select", "map"}

    def test_shared_scan_planned_once(self):
        compiled = optimize(compile_program(QUERY))
        physical = plan_program(compiled, summaries(), engine="auto")
        scans = [n for n in physical.walk() if n.kind == "scan"]
        assert len(scans) == 1

    def test_pinned_engine(self):
        compiled = optimize(compile_program(QUERY))
        physical = plan_program(compiled, summaries(), engine="columnar")
        for node in physical.walk():
            expected = "source" if node.kind == "scan" else "columnar"
            assert node.backend == expected

    def test_large_inputs_route_map_join_cover_off_naive(self):
        query = (
            "A = SELECT(replicate == '1') DATA;"
            " M = MAP() A DATA;"
            " C = COVER(2, ANY) DATA;"
            " J = JOIN(DLE(1000); output: LEFT) A DATA;"
            " MATERIALIZE M; MATERIALIZE C; MATERIALIZE J;"
        )
        compiled = optimize(compile_program(query))
        physical = plan_program(
            compiled, summaries(regions=PARALLEL_REGION_THRESHOLD * 4),
            engine="auto",
        )
        chosen = physical.chosen_backends()
        for kind in ("map", "join", "cover"):
            assert chosen[kind] == {"parallel"}, chosen

    def test_small_inputs_stay_naive(self):
        compiled = optimize(compile_program(QUERY))
        physical = plan_program(compiled, summaries(regions=50), engine="auto")
        chosen = physical.chosen_backends()
        assert chosen["map"] == {"naive"}
        assert chosen["select"] == {"naive"}

    def test_explain_shows_backend_and_estimates(self):
        compiled = optimize(compile_program(QUERY))
        physical = plan_program(compiled, summaries(), engine="auto")
        text = physical.explain()
        assert "backend=" in text
        assert "est_rows=" in text
        assert "(shared)" in text  # DATA scanned by both MAP operands


class TestExplainAnalyze:
    def test_results_match_naive_and_actuals_recorded(self):
        data = random_dataset(11)
        results, physical, context = explain_analyze(QUERY, {"DATA": data})
        from repro.gmql.lang import execute

        reference = execute(QUERY, {"DATA": data}, engine="naive")
        assert canonical(results["R"]) == canonical(reference["R"])
        for node in physical.walk():
            assert node.actual_regions is not None
            assert node.actual_seconds is not None
            assert node.executed_backend is not None
        assert context.tracer.total_seconds() > 0

    def test_analyze_text(self):
        data = random_dataset(12)
        __, physical, __ctx = explain_analyze(QUERY, {"DATA": data})
        text = physical.explain(analyze=True)
        assert "backend=" in text
        assert "rows=" in text and "->" in text
        assert "time=" in text and "ms" in text

    def test_forced_engine_matches(self):
        data = random_dataset(13)
        results, physical, __ = explain_analyze(
            QUERY, {"DATA": data}, engine="columnar"
        )
        from repro.gmql.lang import execute

        reference = execute(QUERY, {"DATA": data}, engine="naive")
        assert canonical(results["R"]) == canonical(reference["R"])
        executed = {
            node.executed_backend
            for node in physical.walk()
            if node.kind != "scan"
        }
        assert executed == {"columnar"}


class TestInterpreterPhysical:
    def test_run_program_fills_physical_actuals(self):
        data = random_dataset(21)
        backend = get_backend("naive")
        interpreter = Interpreter(backend, {"DATA": data})
        compiled = optimize(compile_program(QUERY))
        physical = interpreter.plan(compiled)
        results = interpreter.run_physical(physical)
        assert "R" in results
        assert all(
            node.actual_regions is not None for node in physical.walk()
        )
        # per-node stats recorded with the executing backend's name
        assert backend.stats.records
        assert {stat.backend for stat in backend.stats.records} == {"naive"}

    def test_auto_backend_shares_stats_across_delegates(self):
        data = random_dataset(22, n_samples=3, n_regions=30)
        backend = AutoBackend()
        interpreter = Interpreter(
            backend, {"DATA": data}, context=ExecutionContext()
        )
        compiled = optimize(compile_program(QUERY))
        interpreter.run_program(compiled)
        assert backend.stats.operator_calls.get("MAP") == 1
        assert backend.stats.records  # delegate kernels recorded here

    def test_memoisation_preserved(self):
        # The shared SCAN feeds SELECT and MAP; counting scans via the
        # physical plan: only one scan node exists and executes once.
        data = random_dataset(23)
        backend = get_backend("naive")
        interpreter = Interpreter(backend, {"DATA": data})
        compiled = optimize(compile_program(QUERY))
        physical = interpreter.plan(compiled)
        interpreter.run_physical(physical)
        scans = [n for n in physical.walk() if n.kind == "scan"]
        assert len(scans) == 1
        assert scans[0].actual_regions == data.region_count()
