"""Negative-path tests: operators and language report clean errors."""

import pytest

from repro.errors import (
    EvaluationError,
    GmqlCompileError,
    GmqlSyntaxError,
    SchemaError,
)
from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region
from repro.gmql import Count, MetaCompare, map_regions, select
from repro.gmql.lang import execute, parse


@pytest.fixture()
def data():
    return Dataset(
        "D",
        RegionSchema.of(("score", FLOAT)),
        [Sample(1, [region("chr1", 0, 10, "*", 1.0)],
                Metadata({"cell": "HeLa"}))],
    )


class TestOperatorErrors:
    def test_map_output_name_collides_with_schema(self, data):
        with pytest.raises(SchemaError, match="duplicate attribute"):
            map_regions(data, data, {"score": (Count(), None)})

    def test_map_unknown_experiment_attribute(self, data):
        from repro.gmql import Avg

        with pytest.raises(SchemaError, match="no attribute"):
            map_regions(data, data, {"m": (Avg(), "nope")})

    def test_select_bad_operator(self):
        with pytest.raises(EvaluationError, match="operator"):
            MetaCompare("x", "~=", 1)

    def test_region_predicate_unknown_attribute_at_bind(self, data):
        from repro.gmql import RegionCompare

        with pytest.raises(SchemaError, match="no attribute"):
            select(data, region_predicate=RegionCompare("nope", "==", 1))


class TestLanguageErrors:
    @pytest.mark.parametrize(
        "program, message",
        [
            ("A = SELECT() B", "expected ';'"),
            ("A = FROB() B;", "operation keyword"),
            ("A = SELECT(x ==) B;", "literal"),
            ("A = JOIN() X Y;", "genometric clause"),
            ("A = COVER(2) D;", "expected ','"),
            ("A = ORDER(x WRONGWAY) D;", ""),
            ("MATERIALIZE;", "expected an identifier"),
        ],
    )
    def test_syntax_errors_report_location(self, program, message):
        with pytest.raises(GmqlSyntaxError) as excinfo:
            parse(program)
        if message:
            assert message in str(excinfo.value)
        assert "line" in str(excinfo.value)

    def test_compile_error_propagates_through_execute(self, data):
        with pytest.raises(GmqlCompileError):
            execute("A = MAP(x AS NOPE) D D; MATERIALIZE A;", {"D": data})

    def test_error_line_numbers_are_meaningful(self):
        program = "A = SELECT() B;\nC = SELECT(+) B;\n"
        with pytest.raises(GmqlSyntaxError) as excinfo:
            parse(program)
        assert excinfo.value.line == 2

    def test_join_output_validation_is_compile_time(self):
        from repro.gmql.lang import compile_program

        with pytest.raises(GmqlCompileError, match="output"):
            compile_program("A = JOIN(DLE(1); output: MIDDLE) X Y;")

    def test_project_keyword_attribute_names_work(self, data):
        # 'count' is also an aggregate name; as a region attribute name it
        # must parse as a plain identifier.
        results = execute(
            "A = PROJECT(*, doubled AS score * 2) D; MATERIALIZE A;",
            {"D": data},
        )
        assert results["A"].schema.names == ("score", "doubled")
