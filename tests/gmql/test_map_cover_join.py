"""Tests for the domain-specific operators: MAP, COVER, genometric JOIN."""

import pytest

from repro.errors import EvaluationError
from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region
from repro.gmql import (
    Avg,
    Count,
    DistGreater,
    DistLess,
    Downstream,
    GenometricCondition,
    Max,
    MetaCompare,
    MinDistance,
    Upstream,
    cover,
    join,
    map_regions,
    select,
)
from repro.intervals import AccumulationBound


class TestMap:
    def test_paper_example_shape(self, annotations, encode):
        """The Section 2 query: output samples = refs x experiments, each
        output sample carries all reference regions."""
        proms = select(annotations, MetaCompare("annType", "==", "promoter"))
        peaks = select(encode, MetaCompare("dataType", "==", "ChipSeq"))
        result = map_regions(proms, peaks, {"peak_count": (Count(), None)})
        assert len(result) == len(proms) * len(peaks) == 3
        for sample in result:
            assert len(sample) == 3  # all promoter regions present

    def test_counts_are_correct(self, annotations, encode):
        proms = select(annotations, MetaCompare("annType", "==", "promoter"))
        peaks = select(encode, MetaCompare("dataType", "==", "ChipSeq"))
        result = map_regions(proms, peaks, {"peak_count": (Count(), None)})
        # Promoters: chr1:100-200, chr1:500-600, chr2:100-200.
        # Peaks sample 1 hits: (120-180)->1st, (550-580)->2nd.
        by_meta = {
            sample.meta.first("right.cell"): sample for sample in result
        }
        hela_ctcf = next(
            s
            for s in result
            if s.meta.first("right.cell") == "HeLa"
            and s.meta.first("right.antibody") == "CTCF"
        )
        counts = [r.values[-1] for r in hela_ctcf.regions]
        assert counts == [1, 1, 0]

    def test_schema_extended_with_count(self, annotations, encode):
        result = map_regions(annotations, encode)
        assert result.schema.names == ("name", "count")

    def test_value_aggregate(self, annotations, encode):
        proms = select(annotations, MetaCompare("annType", "==", "promoter"))
        result = map_regions(
            proms,
            encode,
            {"n": (Count(), None), "avg_p": (Avg(), "p_value")},
        )
        assert result.schema.names == ("name", "n", "avg_p")
        sample = result[1]
        for r in sample.regions:
            n, avg_p = r.values[1], r.values[2]
            if n == 0:
                assert avg_p is None

    def test_joinby_restricts_pairs(self, encode):
        refs = select(encode, MetaCompare("cell", "==", "HeLa"))
        result = map_regions(refs, encode, joinby=("cell",))
        # 3 HeLa refs x 3 HeLa experiments.
        assert len(result) == 9

    def test_metadata_prefixed(self, annotations, encode):
        result = map_regions(annotations, encode)
        assert "left.annType" in result[1].meta
        assert "right.dataType" in result[1].meta

    def test_aggregate_requires_attribute(self, annotations, encode):
        with pytest.raises(EvaluationError):
            map_regions(annotations, encode, {"x": (Avg(), None)})

    def test_provenance_links_both_operands(self, annotations, encode):
        result = map_regions(annotations, encode)
        rec = result.provenance[0]
        names = {pair[0] for pair in rec.inputs}
        assert names == {"ANNOTATIONS", "ENCODE"}


class TestCover:
    @pytest.fixture()
    def replicas(self):
        schema = RegionSchema.empty()
        return Dataset(
            "REPLICAS",
            schema,
            [
                Sample(1, [region("chr1", 0, 100), region("chr1", 300, 400)],
                       Metadata({"replicate": 1, "cell": "HeLa"})),
                Sample(2, [region("chr1", 50, 150)],
                       Metadata({"replicate": 2, "cell": "HeLa"})),
                Sample(3, [region("chr1", 80, 120)],
                       Metadata({"replicate": 3, "cell": "K562"})),
            ],
        )

    def test_cover_2_any(self, replicas):
        result = cover(replicas, 2, AccumulationBound.any())
        assert len(result) == 1
        # Depth profile: 1 on [0,50), 2 on [50,80), 3 on [80,100),
        # 2 on [100,120), 1 on [120,150) -- so cover(2, ANY) = [50,120).
        covers = [(r.left, r.right) for r in result[1].regions]
        assert covers == [(50, 120)]

    def test_cover_acc_index_is_max_depth(self, replicas):
        result = cover(replicas, 2, AccumulationBound.any())
        assert result[1].regions[0].values == (3,)

    def test_cover_all_bound(self, replicas):
        result = cover(
            replicas, AccumulationBound.all(), AccumulationBound.any()
        )
        covers = [(r.left, r.right) for r in result[1].regions]
        assert covers == [(80, 100)]  # depth 3 region only

    def test_histogram_variant(self, replicas):
        result = cover(replicas, 1, AccumulationBound.any(), variant="HISTOGRAM")
        depths = [r.values[0] for r in result[1].regions]
        assert depths == [1, 2, 3, 2, 1, 1]

    def test_summit_variant(self, replicas):
        result = cover(replicas, 1, AccumulationBound.any(), variant="SUMMIT")
        rows = [(r.left, r.right, r.values[0]) for r in result[1].regions]
        assert (80, 100, 3) in rows

    def test_flat_variant_extends(self, replicas):
        result = cover(replicas, 3, AccumulationBound.any(), variant="FLAT")
        rows = [(r.left, r.right) for r in result[1].regions]
        assert rows == [(0, 150)]

    def test_groupby_produces_one_sample_per_group(self, replicas):
        result = cover(replicas, 1, AccumulationBound.any(), groupby=("cell",))
        assert len(result) == 2

    def test_metadata_union_of_group(self, replicas):
        result = cover(replicas, 1, AccumulationBound.any())
        meta = result[1].meta
        assert set(map(str, meta.values("replicate"))) == {"1", "2", "3"}

    def test_unknown_variant_rejected(self, replicas):
        with pytest.raises(EvaluationError):
            cover(replicas, 1, 5, variant="PEAKS")

    def test_schema_is_acc_index(self, replicas):
        result = cover(replicas, 1, 5)
        assert result.schema.names == ("acc_index",)


class TestGenometricJoin:
    @pytest.fixture()
    def genes(self):
        return Dataset(
            "GENES",
            RegionSchema.of(("gene", "STR")),
            [
                Sample(
                    1,
                    [
                        region("chr1", 1000, 2000, "+", "geneA"),
                        region("chr1", 5000, 6000, "-", "geneB"),
                    ],
                    Metadata({"source": "refseq"}),
                )
            ],
        )

    @pytest.fixture()
    def peaks(self):
        return Dataset(
            "PEAKS",
            RegionSchema.of(("score", "FLOAT")),
            [
                Sample(
                    1,
                    [
                        region("chr1", 800, 900, "*", 1.0),    # 100 upstream of geneA
                        region("chr1", 1500, 1600, "*", 2.0),  # inside geneA
                        region("chr1", 6100, 6200, "*", 3.0),  # 100 upstream of geneB (rev)
                        region("chr1", 9000, 9100, "*", 4.0),  # far away
                    ],
                    Metadata({"antibody": "CTCF"}),
                )
            ],
        )

    def test_dle_join(self, genes, peaks):
        result = join(genes, peaks, GenometricCondition(DistLess(150)),
                      output="LEFT")
        # geneA matches peaks at 800-900 (d=100) and 1500-1600 (overlap);
        # geneB matches 6100-6200 (d=100).
        assert result.region_count() == 3

    def test_overlap_only_with_negative_dle(self, genes, peaks):
        result = join(genes, peaks, GenometricCondition(DistLess(-1)))
        assert result.region_count() == 1

    def test_dge_excludes_overlaps(self, genes, peaks):
        result = join(
            genes,
            peaks,
            GenometricCondition(DistGreater(50), DistLess(150)),
        )
        assert result.region_count() == 2

    def test_upstream_respects_strand(self, genes, peaks):
        result = join(
            genes,
            peaks,
            GenometricCondition(DistLess(150), Upstream()),
            output="LEFT",
        )
        # geneA(+) upstream -> 800-900; geneB(-) upstream -> 6100-6200.
        assert result.region_count() == 2

    def test_downstream(self, genes, peaks):
        result = join(
            genes,
            peaks,
            GenometricCondition(DistLess(10_000), Downstream()),
            output="LEFT",
        )
        # Downstream of geneA(+): 5000-6000 region peaks? peaks at 6100,9000
        # are downstream of geneA; downstream of geneB(-): 800-900,1500-1600?
        # geneB(-) downstream means left of 5000: peaks 800-900 and 1500-1600.
        assert result.region_count() == 4

    def test_md_k_nearest(self, genes, peaks):
        result = join(genes, peaks, GenometricCondition(MinDistance(1)),
                      output="LEFT")
        # One nearest peak per gene region.
        assert result.region_count() == 2

    def test_output_int_intersection(self, genes, peaks):
        result = join(genes, peaks, GenometricCondition(DistLess(-1)),
                      output="INT")
        r = result[1].regions[0]
        assert (r.left, r.right) == (1500, 1600)

    def test_output_cat_spans(self, genes, peaks):
        result = join(genes, peaks, GenometricCondition(DistLess(-1)),
                      output="CAT")
        r = result[1].regions[0]
        assert (r.left, r.right) == (1000, 2000)

    def test_dist_attribute_appended(self, genes, peaks):
        result = join(genes, peaks, GenometricCondition(DistLess(150)),
                      output="LEFT")
        assert result.schema.names[-1] == "dist"
        distances = sorted(r.values[-1] for r in result[1].regions)
        assert distances == [-100, 100, 100]

    def test_merged_schema_carries_both(self, genes, peaks):
        result = join(genes, peaks, GenometricCondition(DistLess(150)))
        assert "gene" in result.schema
        assert "score" in result.schema

    def test_bad_output_option(self, genes, peaks):
        with pytest.raises(EvaluationError):
            join(genes, peaks, GenometricCondition(DistLess(0)), output="MIDDLE")

    def test_condition_requires_clause(self):
        with pytest.raises(EvaluationError):
            GenometricCondition()
