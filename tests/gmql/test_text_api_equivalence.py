"""Equivalence: textual GMQL must do exactly what the operator API does.

The paper's language is the front end of the algebra; any drift between
the two layers is a bug.  Each case runs a program through the full
lexer/parser/compiler/optimizer/interpreter pipeline and the same query
through direct operator calls, then compares canonical forms.
"""

import pytest

from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region
from repro.gmql import (
    Avg,
    Count,
    DistLess,
    GenometricCondition,
    Max,
    MetaCompare,
    MinDistance,
    RegionCompare,
    cover,
    difference,
    extend,
    join,
    map_regions,
    merge,
    order,
    select,
    union,
)
from repro.gmql.lang import execute
from repro.intervals import AccumulationBound
from repro.simulate import workload_dataset


def canonical(dataset):
    out = []
    for sample in dataset:
        rows = sorted(
            (r.chrom, r.left, r.right, r.strand, r.values)
            for r in sample.regions
        )
        out.append(tuple(rows))
    out.sort()
    return out


@pytest.fixture(scope="module")
def data():
    return workload_dataset(seed=55, n_samples=5, regions_per_sample=120,
                            name="DATA")


CASES = [
    (
        "R = SELECT(cell == 'cell1'; region: score > 0.5) DATA;"
        " MATERIALIZE R;",
        lambda d: select(
            d,
            MetaCompare("cell", "==", "cell1"),
            RegionCompare("score", ">", 0.5),
        ),
    ),
    (
        "R = EXTEND(n AS COUNT, top AS MAX(score)) DATA; MATERIALIZE R;",
        lambda d: extend(d, {"n": (Count(), None), "top": (Max(), "score")}),
    ),
    (
        "R = MERGE(groupby: cell) DATA; MATERIALIZE R;",
        lambda d: merge(d, groupby=("cell",)),
    ),
    (
        "R = ORDER(replicate DESC; top: 2) DATA; MATERIALIZE R;",
        lambda d: order(d, meta_keys=[("replicate", "DESC")], top=2),
    ),
    (
        "R = UNION() DATA DATA; MATERIALIZE R;",
        lambda d: union(d, d),
    ),
    (
        "R = COVER(2, ANY) DATA; MATERIALIZE R;",
        lambda d: cover(d, 2, AccumulationBound.any()),
    ),
    (
        "R = MAP(n AS COUNT, m AS AVG(score)) DATA DATA; MATERIALIZE R;",
        lambda d: map_regions(
            d, d, {"n": (Count(), None), "m": (Avg(), "score")}
        ),
    ),
    (
        "A = SELECT(replicate == 1) DATA; B = SELECT(replicate == 2) DATA;"
        " R = DIFFERENCE() A B; MATERIALIZE R;",
        lambda d: difference(
            select(d, MetaCompare("replicate", "==", 1)),
            select(d, MetaCompare("replicate", "==", 2)),
        ),
    ),
    (
        "A = SELECT(replicate == 1) DATA; B = SELECT(replicate == 2) DATA;"
        " R = JOIN(DLE(800), MD(3); output: CAT) A B; MATERIALIZE R;",
        lambda d: join(
            select(d, MetaCompare("replicate", "==", 1)),
            select(d, MetaCompare("replicate", "==", 2)),
            GenometricCondition(DistLess(800), MinDistance(3)),
            output="CAT",
        ),
    ),
]


@pytest.mark.parametrize("program, api_call",
                         CASES,
                         ids=["select", "extend", "merge", "order", "union",
                              "cover", "map", "difference", "join"])
@pytest.mark.parametrize("engine", ["naive", "columnar"])
def test_text_matches_api(data, program, api_call, engine):
    text_result = execute(program, {"DATA": data}, engine=engine)["R"]
    api_result = api_call(data)
    assert canonical(text_result) == canonical(api_result)
    assert text_result.schema.names == api_result.schema.names
