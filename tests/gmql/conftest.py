"""Shared fixtures: small datasets exercising every operator."""

import pytest

from repro.gdm import (
    Dataset,
    FLOAT,
    Metadata,
    RegionSchema,
    STR,
    Sample,
    region,
)


@pytest.fixture()
def annotations():
    """An ANNOTATIONS-like dataset: one sample of promoters, one of enhancers."""
    schema = RegionSchema.of(("name", STR))
    return Dataset(
        "ANNOTATIONS",
        schema,
        [
            Sample(
                1,
                [
                    region("chr1", 100, 200, "+", "promA"),
                    region("chr1", 500, 600, "-", "promB"),
                    region("chr2", 100, 200, "+", "promC"),
                ],
                Metadata({"annType": "promoter", "assembly": "hg19"}),
            ),
            Sample(
                2,
                [
                    region("chr1", 900, 1000, "*", "enh1"),
                    region("chr2", 700, 800, "*", "enh2"),
                ],
                Metadata({"annType": "enhancer", "assembly": "hg19"}),
            ),
        ],
    )


@pytest.fixture()
def encode():
    """An ENCODE-like dataset: three ChIP-seq peak samples + one RNA sample."""
    schema = RegionSchema.of(("p_value", FLOAT))
    return Dataset(
        "ENCODE",
        schema,
        [
            Sample(
                1,
                [
                    region("chr1", 120, 180, "*", 1e-6),
                    region("chr1", 550, 580, "*", 1e-4),
                    region("chr1", 2000, 2100, "*", 1e-3),
                ],
                Metadata({"dataType": "ChipSeq", "cell": "HeLa",
                          "antibody": "CTCF"}),
            ),
            Sample(
                2,
                [
                    region("chr1", 150, 160, "*", 1e-7),
                    region("chr2", 110, 190, "*", 1e-5),
                    region("chr2", 120, 130, "*", 1e-2),
                ],
                Metadata({"dataType": "ChipSeq", "cell": "K562",
                          "antibody": "CTCF"}),
            ),
            Sample(
                3,
                [region("chr2", 150, 260, "*", 5e-3)],
                Metadata({"dataType": "ChipSeq", "cell": "HeLa",
                          "antibody": "POL2"}),
            ),
            Sample(
                4,
                [region("chr1", 100, 300, "*", 0.5)],
                Metadata({"dataType": "RnaSeq", "cell": "HeLa"}),
            ),
        ],
    )
