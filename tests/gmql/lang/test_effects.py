"""The plan-effect lattice: inferred shardability, exactness,
cache-safety, morsel-safety and bounds.

These are the facts the federation planner, sharded backend, auto
router and result cache all gate on, so the lattice itself gets pinned
here: locality breaks exactly at the sample-reducing operators,
exactness follows the aggregate registry's merge classes, and bounds
compose soundly from source summaries.
"""

import pytest

from repro.gmql.aggregates import EXACT_INT, ORDERED, REORDERABLE
from repro.gmql.lang import compile_program, optimize
from repro.gmql.lang.effects import (
    CROSS_CHROMOSOME_KINDS,
    SHARD_WORTHWHILE_KINDS,
    annotate_effects,
    node_effects,
    subtree_effects,
    weakest_exactness,
)


def plan_for(program: str, output: str):
    compiled = optimize(compile_program(program))
    annotate_effects(compiled)
    return compiled.outputs[output]


class TestLattice:
    def test_weakest_exactness_orders_the_classes(self):
        assert weakest_exactness() == REORDERABLE
        assert weakest_exactness(REORDERABLE, EXACT_INT) == EXACT_INT
        assert weakest_exactness(EXACT_INT, ORDERED) == ORDERED
        # Unknown classes rank as ordered-strength (conservative).
        assert weakest_exactness("custom-unknown", EXACT_INT) == (
            "custom-unknown"
        )

    def test_locality_breaks_at_sample_reducing_operators(self):
        plan = plan_for(
            "S = EXTEND(n AS COUNT) RAW;\nMATERIALIZE S;", "S"
        )
        assert plan.effects.chrom_local is False
        assert "EXTEND" in plan.effects.locality_breaker
        assert plan.kind in CROSS_CHROMOSOME_KINDS

    def test_locality_breaker_propagates_to_ancestors(self):
        plan = plan_for(
            """
            S = EXTEND(n AS COUNT) RAW;
            T = SELECT(n > 1) S;
            MATERIALIZE T;
            """,
            "T",
        )
        assert plan.kind == "select"
        assert plan.effects.chrom_local is False
        assert "EXTEND" in plan.effects.locality_breaker

    def test_per_chromosome_operators_stay_local(self):
        plan = plan_for(
            "M = MAP(hits AS COUNT) RAW OTHER;\nMATERIALIZE M;", "M"
        )
        assert plan.effects.chrom_local is True
        assert plan.effects.locality_breaker is None
        assert plan.kind in SHARD_WORTHWHILE_KINDS

    def test_count_is_exact_int(self):
        plan = plan_for(
            "M = MAP(hits AS COUNT) RAW OTHER;\nMATERIALIZE M;", "M"
        )
        assert plan.effects.exactness == EXACT_INT

    def test_float_avg_is_ordered(self):
        plan = plan_for(
            """
            P = PROJECT(*; ratio AS left / 2.0) RAW;
            X = EXTEND(m AS AVG(ratio)) P;
            MATERIALIZE X;
            """,
            "X",
        )
        assert plan.effects.exactness == ORDERED

    def test_min_max_are_reorderable(self):
        plan = plan_for(
            "M = MAP(lo AS MIN(score)) RAW OTHER;\nMATERIALIZE M;", "M"
        )
        assert plan.effects.exactness == REORDERABLE


class TestCacheSafety:
    def test_computed_attributes_break_caching_upward(self):
        plan = plan_for(
            """
            P = PROJECT(*; half AS left / 2.0) RAW;
            M = MAP(hits AS COUNT) P OTHER;
            MATERIALIZE M;
            """,
            "M",
        )
        assert plan.effects.cache_safe is False
        assert "computed attributes" in plan.effects.cache_breaker

    def test_plain_projection_stays_cacheable(self):
        plan = plan_for(
            "P = PROJECT(score) RAW;\nMATERIALIZE P;", "P"
        )
        assert plan.effects.cache_safe is True
        assert plan.effects.cache_breaker is None


class TestMorselSafety:
    @pytest.mark.parametrize(
        "program,output,safe",
        [
            ("M = MAP(n AS COUNT) RAW OTHER;\nMATERIALIZE M;", "M", True),
            ("J = JOIN(MD(1)) RAW OTHER;\nMATERIALIZE J;", "J", True),
            ("C = COVER(2, ANY) RAW;\nMATERIALIZE C;", "C", True),
            ("D = DIFFERENCE() RAW OTHER;\nMATERIALIZE D;", "D", True),
            ("D = DIFFERENCE(exact) RAW OTHER;\nMATERIALIZE D;", "D",
             False),
        ],
    )
    def test_morsel_safety_is_node_local(self, program, output, safe):
        plan = plan_for(program, output)
        assert plan.effects.morsel_safe is safe


class TestBounds:
    SUMMARIES = {
        "RAW": {"regions": 100, "size_bytes": 5_000},
        "OTHER": {"regions": 40, "size_bytes": 2_000},
    }

    def plan_with_bounds(self, program: str, output: str):
        compiled = optimize(compile_program(program))
        annotate_effects(compiled, summaries=self.SUMMARIES)
        return compiled.outputs[output]

    def test_scan_bounds_come_from_summaries(self):
        plan = self.plan_with_bounds(
            "P = SELECT() RAW;\nMATERIALIZE P;", "P"
        )
        assert plan.effects.bound_regions == 100
        assert plan.effects.bound_bytes == 5_000

    def test_map_is_bounded_by_the_reference(self):
        plan = self.plan_with_bounds(
            "M = MAP(n AS COUNT) RAW OTHER;\nMATERIALIZE M;", "M"
        )
        assert plan.effects.bound_regions == 100
        assert plan.effects.input_bound == 140

    def test_md_join_bound_is_k_per_anchor(self):
        plan = self.plan_with_bounds(
            "J = JOIN(MD(3)) RAW OTHER;\nMATERIALIZE J;", "J"
        )
        assert plan.effects.bound_regions == 300

    def test_unbounded_join_has_no_bound(self):
        plan = self.plan_with_bounds(
            "J = JOIN(DGE(100)) RAW OTHER;\nMATERIALIZE J;", "J"
        )
        assert plan.effects.bound_regions is None

    def test_union_sums_its_operands(self):
        plan = self.plan_with_bounds(
            "U = UNION() RAW OTHER;\nMATERIALIZE U;", "U"
        )
        assert plan.effects.bound_regions == 140

    def test_without_summaries_bounds_are_unknown(self):
        plan = plan_for(
            "M = MAP(n AS COUNT) RAW OTHER;\nMATERIALIZE M;", "M"
        )
        assert plan.effects.bound_regions is None
        assert plan.effects.input_bound is None


class TestDagWalk:
    def test_shared_subplans_are_annotated_once(self):
        compiled = optimize(compile_program(
            """
            BASE = SELECT() RAW;
            A = MAP(n AS COUNT) BASE OTHER;
            B = COVER(1, ANY) BASE;
            MATERIALIZE A;
            MATERIALIZE B;
            """
        ))
        memo = annotate_effects(compiled)
        # Both outputs share the SELECT subtree: the memo holds one
        # record per distinct node, and the shared node carries it.
        plan_a = compiled.outputs["A"]
        plan_b = compiled.outputs["B"]
        shared = [
            child for child in plan_a.children
            if any(child is c for c in plan_b.children)
        ]
        assert shared, "expected A and B to share the BASE subplan"
        assert id(shared[0]) in memo
        assert shared[0].effects is memo[id(shared[0])]

    def test_node_effects_without_children_is_node_local(self):
        compiled = optimize(compile_program(
            """
            S = EXTEND(n AS COUNT) RAW;
            M = MAP(k AS COUNT) RAW OTHER;
            MATERIALIZE S;
            MATERIALIZE M;
            """
        ))
        # Kernel-time view: the MAP node in isolation is local even in
        # a program that also aggregates across chromosomes.
        assert node_effects(compiled.outputs["M"]).chrom_local is True
        assert node_effects(compiled.outputs["S"]).chrom_local is False

    def test_subtree_effects_computes_and_caches(self):
        compiled = optimize(compile_program(
            "M = MAP(n AS COUNT) RAW OTHER;\nMATERIALIZE M;"
        ))
        plan = compiled.outputs["M"]
        fx = subtree_effects(plan)
        assert fx.chrom_local is True
        assert plan.effects is fx
        assert subtree_effects(plan) is fx
