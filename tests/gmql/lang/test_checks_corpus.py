"""Golden-diagnostics corpus: one bad query per analyzer rule.

Each ``checks/*.gmql`` file starts with ``#! expect:`` comment headers
declaring the diagnostics the analyzer must produce -- code, severity,
exact span, and a message fragment.  The corpus is the contract for the
rule set: a rule change that moves a span or reword that drops the
recognisable fragment fails here, with the offending file named.
"""

import re
from pathlib import Path

import pytest

from repro.gmql.lang.semantics import RULES, analyze_program

CHECKS_DIR = Path(__file__).parent / "checks"

EXPECT_RE = re.compile(
    r"#!\s*expect:\s*(?P<code>GQL\d+)\s+(?P<severity>error|warning)"
    r"\s+line=(?P<line>\d+)\s+column=(?P<column>\d+)"
    r"\s+length=(?P<length>\d+)"
    r'\s+message~"(?P<fragment>[^"]*)"'
)

CORPUS_FILES = sorted(CHECKS_DIR.glob("*.gmql"))


def _expectations(text: str) -> list:
    expected = []
    for line in text.splitlines():
        if not line.startswith("#!"):
            break
        match = EXPECT_RE.match(line)
        assert match, f"malformed expectation header: {line!r}"
        expected.append(
            {
                "code": match["code"],
                "severity": match["severity"],
                "line": int(match["line"]),
                "column": int(match["column"]),
                "length": int(match["length"]),
                "fragment": match["fragment"],
            }
        )
    return expected


def _matches(diagnostic, want) -> bool:
    return (
        diagnostic.code == want["code"]
        and diagnostic.severity == want["severity"]
        and diagnostic.span is not None
        and diagnostic.span.line == want["line"]
        and diagnostic.span.column == want["column"]
        and diagnostic.span.length == want["length"]
        and want["fragment"] in diagnostic.message
    )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_file_produces_expected_diagnostics(path):
    text = path.read_text()
    expected = _expectations(text)
    assert expected, f"{path.name} declares no '#! expect:' headers"

    analysis = analyze_program(text, effects=True)
    rendered = analysis.render(with_frames=False)
    for want in expected:
        hits = [d for d in analysis.diagnostics if _matches(d, want)]
        assert len(hits) == 1, (
            f"{path.name}: expected exactly one diagnostic matching "
            f"{want}, got {len(hits)}.\nAll diagnostics:\n{rendered}"
        )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_file_primary_rule_matches_filename(path):
    # gql107_always_false_select.gmql must actually trip GQL107.
    code = path.stem.split("_")[0].upper()
    expected = _expectations(path.read_text())
    assert any(want["code"] == code for want in expected)


def test_corpus_covers_every_rule():
    covered = set()
    for path in CORPUS_FILES:
        covered.update(w["code"] for w in _expectations(path.read_text()))
    assert covered == set(RULES), (
        f"rules without a corpus file: {sorted(set(RULES) - covered)}; "
        f"unknown codes in corpus: {sorted(covered - set(RULES))}"
    )


def test_corpus_diagnostics_render_caret_frames():
    # Spans point at real source text, so every expected diagnostic can
    # render a two-line caret frame against its own file.
    for path in CORPUS_FILES:
        text = path.read_text()
        analysis = analyze_program(text, effects=True)
        for want in _expectations(text):
            hit = next(
                d for d in analysis.diagnostics if _matches(d, want)
            )
            formatted = hit.format(text)
            assert " | " in formatted and "^" in formatted, (
                f"{path.name}: no caret frame for {hit.code}"
            )
