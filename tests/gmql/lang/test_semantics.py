"""Semantic analyzer: inference shapes, pruning, and the execution gate.

The golden corpus (``test_checks_corpus.py``) pins each rule's code,
span and message; this file covers the analyzer's *inference* output
(what schema/strandedness each operator produces), the optimizer's
empty-plan pruning, the guarantee that error-severity programs never
reach the engine, and a property over arbitrary generated programs.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.context import ExecutionContext
from repro.errors import GmqlCompileError
from repro.formats import read_dataset
from repro.gdm import FLOAT, INT
from repro.gmql.lang import (
    analyze_program,
    compile_program,
    execute,
    explain_analyze,
    optimize,
)
from repro.gmql.lang.compiler import Compiler
from repro.gmql.lang.parser import parse
from repro.gmql.lang.physical import plan_program
from repro.gmql.lang.plan import EmptyPlan

REPO_ROOT = Path(__file__).resolve().parents[3]
HEADLINE_QUERY = REPO_ROOT / "examples" / "queries" / "chipseq_overview.gmql"
CHIP_DIR = REPO_ROOT / "examples" / "data" / "CHIP"


def _attr_names(info):
    return tuple(name for name, __ in info.region.attrs)


class TestInference:
    def test_project_closes_schema(self):
        analysis = analyze_program(
            "P = PROJECT(score) RAW;\nMATERIALIZE P;\n"
        )
        info = analysis.variables["P"]
        assert info.region.closed is True
        assert _attr_names(info) == ("score",)

    def test_cover_output_shape(self):
        analysis = analyze_program(
            "C = COVER(1, ANY) RAW;\nMATERIALIZE C;\n"
        )
        info = analysis.variables["C"]
        assert dict(info.region.attrs) == {"acc_index": INT}
        assert info.region.closed is True
        assert info.stranded is False

    def test_map_output_is_reference_plus_aggregates(self):
        analysis = analyze_program(
            "C = COVER(1, ANY) RAW;\n"
            "M = MAP(n AS COUNT) C RAW;\n"
            "MATERIALIZE M;\n"
        )
        info = analysis.variables["M"]
        assert dict(info.region.attrs) == {"acc_index": INT, "n": INT}
        assert info.region.closed is True

    def test_join_appends_dist_column(self):
        analysis = analyze_program(
            "X = JOIN(DLE(1000)) RAW RAW;\nMATERIALIZE X;\n"
        )
        info = analysis.variables["X"]
        assert ("dist", INT) in info.region.attrs

    def test_union_clash_renames_right_attribute(self):
        analysis = analyze_program(
            "A = COVER(1, ANY) RAW;\n"
            "B = PROJECT(*, acc_index AS right / left) RAW;\n"
            "U = UNION() A B;\n"
            "MATERIALIZE U;\n"
        )
        assert any(d.code == "GQL104" for d in analysis.diagnostics)
        names = _attr_names(analysis.variables["U"])
        assert "acc_index" in names and "acc_index_right" in names

    def test_dataset_schema_closes_the_world(self, encode):
        analysis = analyze_program(
            "X = SELECT(region: wat > 1) ENCODE;\nMATERIALIZE X;\n",
            datasets={"ENCODE": encode},
        )
        assert [d.code for d in analysis.errors()] == ["GQL101"]

    def test_dataset_metadata_closes_the_world(self, encode):
        analysis = analyze_program(
            "X = SELECT(wat == 'x') ENCODE;\nMATERIALIZE X;\n",
            datasets={"ENCODE": encode},
        )
        codes = {d.code for d in analysis.diagnostics}
        # Absent attribute: the predicate both references an impossible
        # name (GQL102) and can never hold (GQL107).
        assert {"GQL102", "GQL107"} <= codes
        assert analysis.empty_variables["X"] == "GQL107"

    def test_source_info_derived_from_dataset(self, encode):
        analysis = analyze_program(
            "X = SELECT(cell == 'HeLa') ENCODE;\nMATERIALIZE X;\n",
            datasets={"ENCODE": encode},
        )
        source = analysis.sources["ENCODE"]
        assert dict(source.region.attrs) == {"p_value": FLOAT}
        assert source.stranded is False  # every region is '*'
        assert analysis.diagnostics == ()


class TestPruning:
    PROGRAM = "X = SELECT(wat == 'x') ENCODE;\nMATERIALIZE X;\n"

    def test_optimizer_rewrites_provably_empty_select(self, encode):
        compiled = optimize(
            compile_program(self.PROGRAM, datasets={"ENCODE": encode})
        )
        root = compiled.outputs["X"]
        assert isinstance(root, EmptyPlan)
        assert root.pruned_by == "GQL107"
        assert root.label() == "EMPTY[GQL107]"
        assert [d.name for d in root.schema] == ["p_value"]

    def test_pruned_plan_executes_as_empty_dataset(self, encode):
        results = execute(self.PROGRAM, {"ENCODE": encode}, engine="auto")
        dataset = results["X"]
        assert len(dataset) == 0
        assert [d.name for d in dataset.schema] == ["p_value"]

    def test_explain_analyze_reports_pruning(self, encode):
        __, physical, __ = explain_analyze(self.PROGRAM, {"ENCODE": encode})
        text = physical.explain(analyze=True)
        assert "EMPTY[GQL107]" in text
        assert "backend=empty" in text
        assert "pruned_by=GQL107" in text

    def test_unprunable_select_is_untouched(self, encode):
        compiled = optimize(
            compile_program(
                "X = SELECT(cell == 'HeLa') ENCODE;\nMATERIALIZE X;\n",
                datasets={"ENCODE": encode},
            )
        )
        assert not isinstance(compiled.outputs["X"], EmptyPlan)


class TestExecutionGate:
    def test_error_program_rejected_before_any_operator_runs(self, encode):
        context = ExecutionContext()
        with pytest.raises(GmqlCompileError) as exc:
            execute(
                "X = COVER(5, 2) ENCODE;\nMATERIALIZE X;\n",
                {"ENCODE": encode},
                context=context,
            )
        assert any(d.code == "GQL106" for d in exc.value.diagnostics)
        # Nothing executed: the span trace is empty.
        assert context.tracer.roots == []

    def test_compile_error_carries_warnings_too(self, encode):
        source = (
            "X = SELECT(region: left < 0) ENCODE;\n"
            "Y = COVER(5, 2) X;\n"
            "MATERIALIZE Y;\n"
        )
        with pytest.raises(GmqlCompileError) as exc:
            compile_program(source, datasets={"ENCODE": encode})
        severities = {d.severity for d in exc.value.diagnostics}
        assert severities == {"error", "warning"}

    def test_error_rendering_includes_caret_frame(self, encode):
        with pytest.raises(GmqlCompileError) as exc:
            compile_program(
                "X = COVER(5, 2) ENCODE;\nMATERIALIZE X;\n",
                datasets={"ENCODE": encode},
            )
        message = str(exc.value)
        assert "GQL106" in message
        assert "^" in message  # caret frame rendered from source text


class TestHeadlineQuery:
    def test_clean_open_world(self):
        analysis = analyze_program(HEADLINE_QUERY.read_text())
        assert analysis.diagnostics == ()

    def test_clean_against_real_chip_dataset(self):
        chip = read_dataset(str(CHIP_DIR), "CHIP")
        analysis = analyze_program(
            HEADLINE_QUERY.read_text(), datasets={"CHIP": chip}
        )
        assert analysis.diagnostics == ()


class TestFingerprintStability:
    def test_annotations_do_not_perturb_cache_keys(self, encode):
        source = "R = SELECT(dataType == 'ChipSeq') ENCODE;\nMATERIALIZE R;\n"
        datasets = {"ENCODE": encode}
        bare = Compiler().compile(parse(source))
        analyzed = compile_program(source, datasets=datasets)
        assert analyzed.outputs["R"].inferred is not None
        assert bare.outputs["R"].inferred is None
        fp_bare = plan_program(bare, datasets=datasets)
        fp_analyzed = plan_program(analyzed, datasets=datasets)
        assert (
            fp_bare.outputs["R"].fingerprint
            == fp_analyzed.outputs["R"].fingerprint
            is not None
        )


# -- property: the analyzer never crashes, the compiler never leaks ------------

_META_ATTRS = ["cell", "dataType", "quality"]
_REGION_EXPRS = ["left < 0", "right >= 0", "score > 0.5", "pval <= 1"]
_AGGREGATES = ["COUNT", "SUM(score)", "AVG(pval)", "BAG(cell)", "FROB(x)"]


@st.composite
def programs(draw):
    """Arbitrary parser-accepted programs, valid and invalid alike."""
    statements = []
    current = "RAW"
    for index in range(draw(st.integers(1, 4))):
        name = f"V{index}"
        kind = draw(
            st.sampled_from(
                ["select", "select_region", "project", "extend",
                 "cover", "merge", "map", "join", "union"]
            )
        )
        if kind == "select":
            attr = draw(st.sampled_from(_META_ATTRS))
            value = draw(st.sampled_from(["'HeLa'", "'x'", "3"]))
            op = draw(st.sampled_from(["==", "!=", "<", ">="]))
            statements.append(
                f"{name} = SELECT({attr} {op} {value}) {current};"
            )
        elif kind == "select_region":
            expr = draw(st.sampled_from(_REGION_EXPRS))
            statements.append(
                f"{name} = SELECT(region: {expr}) {current};"
            )
        elif kind == "project":
            item = draw(st.sampled_from(["*", "score", "pval"]))
            statements.append(f"{name} = PROJECT({item}) {current};")
        elif kind == "extend":
            agg = draw(st.sampled_from(_AGGREGATES))
            statements.append(f"{name} = EXTEND(m AS {agg}) {current};")
        elif kind == "cover":
            low = draw(st.integers(-1, 3))
            high = draw(st.sampled_from(["1", "2", "ANY"]))
            statements.append(f"{name} = COVER({low}, {high}) {current};")
        elif kind == "merge":
            statements.append(f"{name} = MERGE() {current};")
        elif kind == "map":
            agg = draw(st.sampled_from(_AGGREGATES))
            statements.append(
                f"{name} = MAP(n AS {agg}) {current} RAW;"
            )
        elif kind == "join":
            clause = draw(
                st.sampled_from(
                    ["DLE(100)", "DGE(50)", "DLE(10), DGE(500)",
                     "MD(0)", "DLE(100), UP"]
                )
            )
            statements.append(
                f"{name} = JOIN({clause}) {current} RAW;"
            )
        else:
            statements.append(f"{name} = UNION() {current} RAW;")
        current = name
    statements.append(f"MATERIALIZE {current};")
    return "\n".join(statements) + "\n"


class TestAnalyzerTotality:
    @given(programs())
    @settings(max_examples=80, deadline=None)
    def test_analysis_is_total_and_gates_compilation(self, source):
        program = parse(source)  # generator only emits parseable text
        analysis = analyze_program(source)
        assert analysis.diagnostics is not None
        if analysis.errors():
            with pytest.raises(GmqlCompileError):
                compile_program(source)
        else:
            compiled = compile_program(source)
            assert set(compiled.outputs) <= set(analysis.variables)
        assert len(program.statements) >= 2
