"""Integration tests: multi-operator GMQL programs end to end."""

import pytest

from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region
from repro.gmql import run, run_with_stats
from repro.simulate import EncodeRepository, GenomeLayout


@pytest.fixture(scope="module")
def repo():
    layout = GenomeLayout.generate(seed=3, n_genes=60, n_enhancers=30)
    return EncodeRepository.generate(seed=3, n_samples=12,
                                     peaks_per_sample_mean=100, layout=layout)


@pytest.fixture(scope="module")
def sources(repo):
    return {"ANNOTATIONS": repo.annotations, "ENCODE": repo.encode}


class TestCompositePrograms:
    def test_cover_of_replicates_then_map(self, sources):
        results = run(
            """
            CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
            CONSENSUS = COVER(2, ANY) CHIP;
            PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
            HITS = MAP(n AS COUNT) PROMS CONSENSUS;
            MATERIALIZE HITS;
            """,
            sources,
        )
        hits = results["HITS"]
        assert len(hits) == 1  # 1 promoter sample x 1 consensus sample
        assert hits.schema.names[-1] == "n"

    def test_cover_all_arithmetic_bound(self, sources):
        results = run(
            """
            CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
            MAJORITY = COVER((ALL + 1) / 2, ANY) CHIP;
            MATERIALIZE MAJORITY;
            """,
            sources,
        )
        majority = results["MAJORITY"]
        assert len(majority) == 1
        # Majority cover is much sparser than any single sample's peaks.
        chip_regions = sum(
            len(s) for s in sources["ENCODE"]
            if s.meta.first("dataType") == "ChipSeq"
        )
        assert majority.region_count() < chip_regions

    def test_semijoin_in_text(self, sources):
        results = run(
            """
            HELA = SELECT(cell == 'HeLa-S3') ENCODE;
            SAME_CELL = SELECT(semijoin: cell IN HELA) ENCODE;
            OTHERS = SELECT(semijoin: cell NOT IN HELA) ENCODE;
            MATERIALIZE SAME_CELL;
            MATERIALIZE OTHERS;
            """,
            sources,
        )
        total = len(results["SAME_CELL"]) + len(results["OTHERS"])
        assert total == len(sources["ENCODE"])

    def test_group_and_extend_pipeline(self, sources):
        results = run(
            """
            CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
            STATS = EXTEND(n AS COUNT, best AS MIN(p_value)) CHIP;
            BYCELL = GROUP(groupby: cell; metadata: exps AS COUNT(n)) STATS;
            MATERIALIZE BYCELL;
            """,
            sources,
        )
        by_cell = results["BYCELL"]
        cells = {s.meta.first("cell") for s in by_cell}
        expected_cells = {
            s.meta.first("cell")
            for s in sources["ENCODE"]
            if s.meta.first("dataType") == "ChipSeq"
        }
        assert cells == expected_cells

    def test_join_with_joinby_clause(self, sources):
        results = run(
            """
            A = SELECT(dataType == 'ChipSeq') ENCODE;
            B = SELECT(dataType == 'ChipSeq') ENCODE;
            NEAR = JOIN(MD(1), DLE(5000); output: LEFT; joinby: cell) A B;
            MATERIALIZE NEAR;
            """,
            sources,
        )
        near = results["NEAR"]
        # joinby restricts pairs to same-cell samples.
        for sample in near:
            left_cells = set(map(str, sample.meta.values("left.cell")))
            right_cells = set(map(str, sample.meta.values("right.cell")))
            assert left_cells & right_cells

    def test_difference_then_order(self, sources):
        results = run(
            """
            CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
            PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
            DISTAL = DIFFERENCE() CHIP PROMS;
            RANKED = ORDER(cell ASC; top: 3) DISTAL;
            MATERIALIZE RANKED;
            """,
            sources,
        )
        ranked = results["RANKED"]
        assert len(ranked) == 3
        # No surviving region overlaps any promoter.
        promoters = [r for s in sources["ANNOTATIONS"] for r in s.regions
                     if s.meta.first("annType") == "promoter"]
        for sample in ranked:
            for r in sample.regions:
                assert not any(r.overlaps(p) for p in promoters)

    def test_project_arithmetic_pipeline(self, sources):
        results = run(
            """
            CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
            SHAPED = PROJECT(p_value, len AS right - left,
                             mid AS (left + right) / 2) CHIP;
            MATERIALIZE SHAPED;
            """,
            sources,
        )
        shaped = results["SHAPED"]
        assert shaped.schema.names == ("p_value", "len", "mid")
        sample = next(iter(shaped))
        for r in sample.regions:
            assert r.values[1] == r.length
            assert r.values[2] == pytest.approx((r.left + r.right) / 2)

    def test_multiple_meta_sections_are_anded(self, sources):
        results = run(
            """
            X = SELECT(dataType == 'ChipSeq'; cell == 'HeLa-S3') ENCODE;
            MATERIALIZE X;
            """,
            sources,
        )
        for sample in results["X"]:
            assert sample.meta.first("dataType") == "ChipSeq"
            assert sample.meta.first("cell") == "HeLa-S3"


class TestRunWithStats:
    def test_stats_returned(self, sources):
        results, stats = run_with_stats(
            """
            PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
            CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
            OUT = MAP() PROMS CHIP;
            MATERIALIZE OUT;
            """,
            sources,
            engine="columnar",
        )
        assert "OUT" in results
        assert stats.operator_calls["MAP"] == 1
        assert stats.operator_calls["SELECT"] == 2
        assert stats.samples_produced > 0

    def test_engines_agree_on_composite_program(self, sources):
        program = """
        CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
        CONSENSUS = COVER(2, ANY) CHIP;
        PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
        HITS = MAP(n AS COUNT) PROMS CONSENSUS;
        MATERIALIZE HITS;
        """
        naive = run(program, sources, engine="naive")["HITS"]
        columnar = run(program, sources, engine="columnar")["HITS"]
        naive_counts = [r.values[-1] for s in naive for r in s.regions]
        columnar_counts = [r.values[-1] for s in columnar for r in s.regions]
        assert naive_counts == columnar_counts
