"""Tests for the GMQL compiler, optimizer and end-to-end execution."""

import pytest

from repro.errors import GmqlCompileError
from repro.gmql.lang import compile_program, execute, explain, optimize
from repro.gmql.lang.plan import MapPlan, ScanPlan, SelectPlan, UnionPlan


class TestCompiler:
    def test_paper_program_compiles(self):
        compiled = compile_program(
            """
            PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
            PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
            RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
            MATERIALIZE RESULT;
            """
        )
        assert compiled.sources == ("ANNOTATIONS", "ENCODE")
        assert set(compiled.outputs) == {"RESULT"}
        root = compiled.outputs["RESULT"]
        assert isinstance(root, MapPlan)
        assert isinstance(root.reference, SelectPlan)
        assert isinstance(root.reference.child, ScanPlan)

    def test_shared_subplan_is_one_node(self):
        compiled = compile_program(
            """
            A = SELECT(x == 1) SRC;
            B = MAP() A A;
            MATERIALIZE B;
            """
        )
        root = compiled.outputs["B"]
        assert root.reference is root.experiment

    def test_double_assignment_rejected(self):
        with pytest.raises(GmqlCompileError, match="assigned twice"):
            compile_program("A = SELECT() X; A = SELECT() Y;")

    def test_materialize_unknown_variable(self):
        with pytest.raises(GmqlCompileError, match="unknown variable"):
            compile_program("MATERIALIZE NOPE;")

    def test_unknown_aggregate(self):
        with pytest.raises(GmqlCompileError, match="unknown aggregate"):
            compile_program("A = MAP(x AS FROB(y)) R E;")

    def test_md_requires_positive_k(self):
        with pytest.raises(GmqlCompileError, match="MD"):
            compile_program("A = JOIN(MD(0)) X Y;")

    def test_variable_then_source_conflict(self):
        with pytest.raises(GmqlCompileError, match="source"):
            compile_program("B = SELECT() A; A = SELECT() C;")

    def test_no_materialize_returns_all_variables(self):
        compiled = compile_program("A = SELECT() X; B = SELECT() Y;")
        assert set(compiled.outputs) == {"A", "B"}

    def test_explain_mentions_operators(self):
        text = explain(
            "R = MAP() A B; MATERIALIZE R;", optimized=False
        )
        assert "MAP" in text and "SCAN A" in text


class TestOptimizer:
    def test_fuses_chained_selects(self):
        compiled = compile_program(
            """
            A = SELECT(x == 1) SRC;
            B = SELECT(y == 2) A;
            MATERIALIZE B;
            """
        )
        optimized = optimize(compiled)
        root = optimized.outputs["B"]
        assert isinstance(root, SelectPlan)
        assert isinstance(root.child, ScanPlan)
        assert "fuse-selects" in optimized.rewrites

    def test_does_not_fuse_shared_select(self):
        compiled = compile_program(
            """
            A = SELECT(x == 1) SRC;
            B = SELECT(y == 2) A;
            C = MAP() A B;
            MATERIALIZE C;
            """
        )
        optimized = optimize(compiled)
        assert "fuse-selects" not in optimized.rewrites

    def test_optimize_does_not_mutate_input_program(self):
        # Regression: rewrites used to splice new children into the
        # original nodes, so the "new program" shared mutated nodes with
        # the pre-optimization plan.  Rewrites are copy-on-write now.
        program = """
            A = SELECT(x == 1) SRC;
            B = SELECT(y == 2) A;
            U = UNION() B SRC;
            S = SELECT(cell == 'HeLa') U;
            MATERIALIZE S;
        """
        compiled = compile_program(program)
        before = compiled.explain()
        optimized = optimize(compiled)
        assert compiled.explain() == before
        # ...and the rewrites really happened on the optimized copy.
        assert optimized.rewrites
        assert optimized.explain() != before

    def test_optimized_and_original_programs_both_execute(self):
        from repro.gmql.lang import Interpreter
        from repro.engine import get_backend
        from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region

        schema = RegionSchema.of(("score", FLOAT))
        data = Dataset(
            "SRC",
            schema,
            [Sample(1, [region("chr1", 0, 10, "*", 1.0)],
                    Metadata({"x": "1", "y": "2"}))],
        )
        program = """
            A = SELECT(x == '1') SRC;
            B = SELECT(y == '2') A;
            MATERIALIZE B;
        """
        compiled = compile_program(program)
        optimized = optimize(compiled)
        out_original = Interpreter(
            get_backend("naive"), {"SRC": data}
        ).run_program(compiled)
        out_optimized = Interpreter(
            get_backend("naive"), {"SRC": data}
        ).run_program(optimized)
        assert len(out_original["B"]) == len(out_optimized["B"]) == 1

    def test_pushes_select_through_union(self):
        compiled = compile_program(
            """
            U = UNION() X Y;
            S = SELECT(cell == 'HeLa') U;
            MATERIALIZE S;
            """
        )
        optimized = optimize(compiled)
        root = optimized.outputs["S"]
        assert isinstance(root, UnionPlan)
        assert isinstance(root.left, SelectPlan)

    def test_variable_region_predicate_not_pushed(self):
        compiled = compile_program(
            """
            U = UNION() X Y;
            S = SELECT(region: score > 1) U;
            MATERIALIZE S;
            """
        )
        optimized = optimize(compiled)
        assert isinstance(optimized.outputs["S"], SelectPlan)

    def test_identity_select_dropped(self):
        compiled = compile_program("A = SELECT() X; B = SELECT(y == 2) A; MATERIALIZE B;")
        optimized = optimize(compiled)
        root = optimized.outputs["B"]
        assert isinstance(root.child, ScanPlan)


class TestExecute:
    def test_paper_query_end_to_end(self, annotations, encode):
        results = execute(
            """
            PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
            PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
            RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
            MATERIALIZE RESULT;
            """,
            {"ANNOTATIONS": annotations, "ENCODE": encode},
        )
        assert set(results) == {"RESULT"}
        result = results["RESULT"]
        assert result.name == "RESULT"
        assert len(result) == 3  # 1 promoter sample x 3 ChipSeq samples
        assert result.schema.names[-1] == "peak_count"
        for sample in result:
            assert len(sample) == 3  # all promoter regions present

    def test_unknown_source_dataset(self, encode):
        with pytest.raises(GmqlCompileError, match="unknown source"):
            execute("A = SELECT() NOPE; MATERIALIZE A;", {"ENCODE": encode})

    def test_region_select_and_cover(self, encode):
        results = execute(
            """
            GOOD = SELECT(region: p_value <= 1e-4) ENCODE;
            COVERED = COVER(1, ANY) GOOD;
            MATERIALIZE COVERED;
            """,
            {"ENCODE": encode},
        )
        covered = results["COVERED"]
        assert len(covered) == 1
        assert covered.schema.names == ("acc_index",)

    def test_join_query(self, annotations, encode):
        results = execute(
            """
            NEAR = JOIN(DLE(100); output: LEFT) ANNOTATIONS ENCODE;
            MATERIALIZE NEAR;
            """,
            {"ANNOTATIONS": annotations, "ENCODE": encode},
        )
        assert "dist" in results["NEAR"].schema

    def test_project_expression(self, encode):
        results = execute(
            "L = PROJECT(*, len AS right - left) ENCODE;",
            {"ENCODE": encode},
        )
        sample = results["L"][1]
        region = sample.regions[0]
        assert region.values[-1] == region.length

    def test_extend_and_order_pipeline(self, encode):
        results = execute(
            """
            N = EXTEND(n AS COUNT) ENCODE;
            TOPN = ORDER(n DESC; top: 1) N;
            MATERIALIZE TOPN;
            """,
            {"ENCODE": encode},
        )
        top = results["TOPN"]
        assert len(top) == 1
        assert top[1].meta.first("n") == 3

    def test_materialize_into_renames(self, encode):
        results = execute(
            "A = SELECT() ENCODE; MATERIALIZE A INTO Pretty;",
            {"ENCODE": encode},
        )
        assert set(results) == {"Pretty"}

    def test_unoptimized_execution_matches(self, annotations, encode):
        program = """
        A = SELECT(dataType == 'ChipSeq') ENCODE;
        B = SELECT(cell == 'HeLa') A;
        MATERIALIZE B;
        """
        sources = {"ANNOTATIONS": annotations, "ENCODE": encode}
        fast = execute(program, sources, optimized=True)["B"]
        slow = execute(program, sources, optimized=False)["B"]
        assert len(fast) == len(slow)
        assert fast.region_count() == slow.region_count()
