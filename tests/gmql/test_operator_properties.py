"""Property-based tests for GMQL operator invariants.

Each operator's output is checked against brute-force oracles and
algebraic laws on randomised datasets: the algebra must be closed,
deterministic, and faithful to the paper's semantics regardless of input
shape.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region
from repro.gmql import (
    Count,
    DistLess,
    GenometricCondition,
    Max,
    MetaCompare,
    RegionCompare,
    cover,
    difference,
    extend,
    join,
    map_regions,
    merge,
    order,
    select,
    union,
)
from repro.intervals import AccumulationBound


@st.composite
def datasets(draw, max_samples=4, max_regions=25):
    schema = RegionSchema.of(("score", FLOAT))
    n_samples = draw(st.integers(1, max_samples))
    samples = []
    for sample_id in range(1, n_samples + 1):
        n_regions = draw(st.integers(0, max_regions))
        regions = []
        for __ in range(n_regions):
            left = draw(st.integers(0, 900))
            width = draw(st.integers(1, 120))
            chrom = draw(st.sampled_from(["chr1", "chr2"]))
            strand = draw(st.sampled_from(["+", "-", "*"]))
            score = draw(
                st.one_of(st.none(), st.floats(0, 100, allow_nan=False))
            )
            regions.append(region(chrom, left, left + width, strand, score))
        cell = draw(st.sampled_from(["HeLa", "K562"]))
        samples.append(
            Sample(sample_id, regions,
                   Metadata({"cell": cell, "replicate": sample_id}))
        )
    return Dataset("DATA", schema, samples, validate=False)


class TestSelectProperties:
    @given(datasets())
    @settings(max_examples=60, deadline=None)
    def test_select_partition(self, data):
        """SELECT(p) and SELECT(not p) partition the samples."""
        predicate = MetaCompare("cell", "==", "HeLa")
        kept = select(data, predicate)
        dropped = select(data, ~predicate)
        assert len(kept) + len(dropped) == len(data)

    @given(datasets())
    @settings(max_examples=60, deadline=None)
    def test_region_select_is_per_region_filter(self, data):
        predicate = RegionCompare("score", ">=", 50)
        result = select(data, region_predicate=predicate)
        assert len(result) == len(data)
        expected = sum(
            1
            for sample in data
            for r in sample.regions
            if r.values[0] is not None and r.values[0] >= 50
        )
        assert result.region_count() == expected

    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_select_idempotent(self, data):
        predicate = MetaCompare("cell", "==", "HeLa")
        once = select(data, predicate)
        twice = select(once, predicate)
        assert len(once) == len(twice)
        assert once.region_count() == twice.region_count()


class TestMapProperties:
    @given(datasets(max_samples=3, max_regions=15),
           datasets(max_samples=3, max_regions=15))
    @settings(max_examples=40, deadline=None)
    def test_map_counts_match_brute_force(self, refs, exps):
        result = map_regions(refs, exps, {"n": (Count(), None)})
        assert len(result) == len(refs) * len(exps)
        ref_samples = list(refs)
        exp_samples = list(exps)
        out = iter(result)
        for ref_sample in ref_samples:
            for exp_sample in exp_samples:
                got = next(out)
                assert len(got) == len(ref_sample)
                for out_region, ref_region in zip(got.regions,
                                                  ref_sample.regions):
                    expected = sum(
                        1 for e in exp_sample.regions
                        if ref_region.overlaps(e)
                    )
                    assert out_region.values[-1] == expected

    @given(datasets(max_samples=2, max_regions=12))
    @settings(max_examples=30, deadline=None)
    def test_map_value_aggregate_missing_on_empty(self, data):
        result = map_regions(data, data, {"m": (Max(), "score")})
        for sample in result:
            for out_region in sample.regions:
                if out_region.values[-1] is None:
                    continue  # either no hits or all-missing scores
                assert out_region.values[-1] <= 100


class TestCoverProperties:
    @given(datasets(max_samples=4, max_regions=20), st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_cover_depth_invariant(self, data, min_acc):
        """Every position of a COVER output region has depth >= min_acc
        somewhere in it and the region is maximal (flanks fall below)."""
        result = cover(data, min_acc, AccumulationBound.any())
        all_regions = [r for sample in data for r in sample.regions]

        def depth(chrom, position):
            return sum(
                1 for r in all_regions
                if r.chrom == chrom and r.left <= position < r.right
            )

        for out in result[1].regions:
            # Boundary positions are in range; positions just outside fail.
            assert depth(out.chrom, out.left) >= min_acc
            assert depth(out.chrom, out.right - 1) >= min_acc
            if out.left > 0:
                assert depth(out.chrom, out.left - 1) != depth(
                    out.chrom, out.left
                ) or depth(out.chrom, out.left - 1) < min_acc
            assert out.values[0] >= min_acc  # acc_index = max depth

    @given(datasets(max_samples=3, max_regions=15))
    @settings(max_examples=30, deadline=None)
    def test_histogram_depths_partition_cover(self, data):
        """HISTOGRAM segments concatenate to exactly the COVER(1,ANY) span."""
        covered = cover(data, 1, AccumulationBound.any())
        hist = cover(data, 1, AccumulationBound.any(), variant="HISTOGRAM")
        covered_positions = sum(r.length for r in covered[1].regions)
        hist_positions = sum(r.length for r in hist[1].regions)
        assert covered_positions == hist_positions


class TestBinaryProperties:
    @given(datasets(max_samples=3), datasets(max_samples=3))
    @settings(max_examples=40, deadline=None)
    def test_union_preserves_counts(self, a, b):
        merged = union(a, b)
        assert len(merged) == len(a) + len(b)
        assert merged.region_count() == a.region_count() + b.region_count()

    @given(datasets(max_samples=3), datasets(max_samples=3))
    @settings(max_examples=40, deadline=None)
    def test_difference_is_subset_of_left(self, a, b):
        result = difference(a, b)
        assert len(result) == len(a)
        mask = [r for sample in b for r in sample.regions]
        for out_sample, in_sample in zip(result, a):
            out_coords = {r.coordinates() for r in out_sample.regions}
            in_coords = {r.coordinates() for r in in_sample.regions}
            assert out_coords <= in_coords
            for r in out_sample.regions:
                assert not any(r.overlaps(m) for m in mask)

    @given(datasets(max_samples=2, max_regions=10),
           datasets(max_samples=2, max_regions=10))
    @settings(max_examples=30, deadline=None)
    def test_join_dle_matches_brute_force_pairs(self, a, b):
        limit = 50
        result = join(a, b, GenometricCondition(DistLess(limit)),
                      output="LEFT")
        expected = 0
        for sa in a:
            for sb in b:
                for ra in sa.regions:
                    for rb in sb.regions:
                        d = ra.distance(rb)
                        if d is not None and d <= limit:
                            expected += 1
        assert result.region_count() == expected


class TestUnaryLaws:
    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_merge_conserves_regions(self, data):
        merged = merge(data)
        assert merged.region_count() == data.region_count()
        assert merged[1].is_sorted()

    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_extend_count_equals_len(self, data):
        extended = extend(data, {"n": (Count(), None)})
        for in_sample, out_sample in zip(data, extended):
            assert out_sample.meta.first("n") == len(in_sample)

    @given(datasets(), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_order_top_k(self, data, k):
        result = order(data, meta_keys=[("replicate", "DESC")], top=k)
        assert len(result) == min(k, len(data))

    @given(datasets())
    @settings(max_examples=30, deadline=None)
    def test_operators_do_not_mutate_inputs(self, data):
        snapshot = [
            (sample.id, tuple(sample.regions), sample.meta)
            for sample in data
        ]
        select(data, MetaCompare("cell", "==", "HeLa"))
        merge(data)
        cover(data, 1, AccumulationBound.any())
        map_regions(data, data)
        after = [
            (sample.id, tuple(sample.regions), sample.meta)
            for sample in data
        ]
        assert snapshot == after
