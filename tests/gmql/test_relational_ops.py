"""Tests for EXTEND, MERGE, GROUP, ORDER, UNION, DIFFERENCE, MATERIALIZE,
aggregates and provenance."""

import pytest

from repro.errors import EvaluationError
from repro.gdm import Dataset, FLOAT, INT, Metadata, RegionSchema, Sample, region
from repro.gmql import (
    Avg,
    Bag,
    Count,
    Max,
    Median,
    Min,
    Std,
    Sum,
    aggregate_named,
    difference,
    explain,
    extend,
    group,
    materialize,
    merge,
    order,
    union,
)


@pytest.fixture()
def scored():
    schema = RegionSchema.of(("score", FLOAT))
    return Dataset(
        "SCORED",
        schema,
        [
            Sample(
                1,
                [
                    region("chr1", 0, 10, "*", 4.0),
                    region("chr1", 20, 30, "*", 2.0),
                    region("chr1", 40, 50, "*", None),
                ],
                Metadata({"cell": "HeLa", "replicate": 1}),
            ),
            Sample(
                2,
                [region("chr2", 0, 10, "*", 10.0)],
                Metadata({"cell": "K562", "replicate": 2}),
            ),
        ],
    )


class TestAggregates:
    def test_count(self):
        assert Count().compute([1, None, 3]) == 3

    def test_sum_skips_missing(self):
        assert Sum().compute([1, None, 3]) == 4

    def test_avg(self):
        assert Avg().compute([2, 4]) == 3.0

    def test_min_max(self):
        assert Min().compute([3, 1, None]) == 1
        assert Max().compute([3, 1, None]) == 3

    def test_median(self):
        assert Median().compute([1, 3, 100]) == 3.0

    def test_std_single_value_zero(self):
        assert Std().compute([5]) == 0.0

    def test_std_population(self):
        assert Std().compute([2, 4]) == pytest.approx(1.0)

    def test_bag_sorted_distinct(self):
        assert Bag().compute(["b", "a", "b"]) == "a b"

    def test_empty_inputs(self):
        assert Count().compute([]) == 0
        assert Sum().compute([]) is None
        assert Avg().compute([None]) is None

    def test_registry(self):
        assert aggregate_named("count").name == "COUNT"
        with pytest.raises(EvaluationError):
            aggregate_named("MODE")


class TestExtend:
    def test_count_becomes_metadata(self, scored):
        extended = extend(scored, {"region_count": (Count(), None)})
        assert extended[1].meta.first("region_count") == 3
        assert extended[2].meta.first("region_count") == 1

    def test_value_aggregate(self, scored):
        extended = extend(scored, {"max_score": (Max(), "score")})
        assert extended[1].meta.first("max_score") == 4.0

    def test_regions_unchanged(self, scored):
        extended = extend(scored, {"n": (Count(), None)})
        assert extended.region_count() == scored.region_count()

    def test_missing_attribute_raises(self, scored):
        with pytest.raises(EvaluationError):
            extend(scored, {"x": (Avg(), None)})


class TestMerge:
    def test_merge_all(self, scored):
        merged = merge(scored)
        assert len(merged) == 1
        assert len(merged[1]) == 4
        assert merged[1].is_sorted()

    def test_merge_metadata_union(self, scored):
        merged = merge(scored)
        assert set(map(str, merged[1].meta.values("cell"))) == {"HeLa", "K562"}

    def test_merge_groupby(self, scored):
        merged = merge(scored, groupby=("cell",))
        assert len(merged) == 2


class TestGroup:
    def test_group_by_metadata(self, scored):
        grouped = group(scored, meta_keys=("cell",))
        assert len(grouped) == 2
        cells = sorted(s.meta.first("cell") for s in grouped)
        assert cells == ["HeLa", "K562"]

    def test_meta_aggregates(self, scored):
        grouped = group(
            scored,
            meta_keys=("cell",),
            meta_aggregates={"n_reps": (Count(), "replicate")},
        )
        assert all(s.meta.first("n_reps") == 1 for s in grouped)

    def test_region_dedup_with_aggregates(self):
        schema = RegionSchema.of(("score", FLOAT))
        ds = Dataset(
            "DUP",
            schema,
            [
                Sample(
                    1,
                    [
                        region("chr1", 0, 10, "*", 1.0),
                        region("chr1", 0, 10, "*", 3.0),
                        region("chr1", 20, 30, "*", 5.0),
                    ],
                )
            ],
        )
        deduped = group(
            ds,
            region_aggregates={"n": (Count(), None), "avg": (Avg(), "score")},
        )
        assert deduped.schema.names == ("n", "avg")
        rows = [(r.left, r.values) for r in deduped[1].regions]
        assert rows == [(0, (2, 2.0)), (20, (1, 5.0))]


class TestOrder:
    def test_order_by_metadata_desc_with_top(self, scored):
        ordered = order(scored, meta_keys=[("replicate", "DESC")], top=1)
        assert len(ordered) == 1
        assert ordered[1].meta.first("cell") == "K562"

    def test_order_adds_position(self, scored):
        ordered = order(scored, meta_keys=[("replicate", "ASC")])
        assert ordered[1].meta.first("order") == 1
        assert ordered[2].meta.first("order") == 2

    def test_order_regions_desc(self, scored):
        ordered = order(scored, region_keys=[("score", "DESC")])
        scores = [r.values[0] for r in ordered[1].regions]
        assert scores[:2] == [4.0, 2.0]
        assert scores[2] is None  # missing values sort last

    def test_region_top_k(self, scored):
        ordered = order(scored, region_keys=[("score", "DESC")], region_top=1)
        assert len(ordered[1]) == 1
        assert ordered[1].regions[0].values[0] == 4.0

    def test_bad_direction(self, scored):
        with pytest.raises(EvaluationError):
            order(scored, meta_keys=[("cell", "UPWARD")])


class TestUnion:
    def test_schema_merging(self, scored):
        other = Dataset(
            "OTHER",
            RegionSchema.of(("count", INT)),
            [Sample(1, [region("chr1", 5, 15, "*", 7)])],
        )
        merged = union(scored, other)
        assert merged.schema.names == ("score", "count")
        assert len(merged) == 3
        # Left values remapped with missing count; right with missing score.
        assert merged[1].regions[0].values == (4.0, None)
        assert merged[3].regions[0].values == (None, 7)

    def test_same_schema_union(self, scored):
        merged = union(scored, scored)
        assert merged.schema == scored.schema
        assert len(merged) == 4


class TestDifference:
    @pytest.fixture()
    def mask(self):
        return Dataset(
            "MASK",
            RegionSchema.empty(),
            [Sample(1, [region("chr1", 5, 25)], Metadata({"cell": "HeLa"}))],
        )

    def test_overlapping_regions_removed(self, scored, mask):
        result = difference(scored, mask)
        # chr1 regions 0-10 and 20-30 overlap the mask; 40-50 survives.
        assert [(r.chrom, r.left) for s in result for r in s.regions] == [
            ("chr1", 40),
            ("chr2", 0),
        ]

    def test_metadata_and_schema_preserved(self, scored, mask):
        result = difference(scored, mask)
        assert result.schema == scored.schema
        assert result[1].meta.first("cell") == "HeLa"

    def test_exact_mode(self, scored):
        mask = Dataset(
            "MASK",
            RegionSchema.empty(),
            [Sample(1, [region("chr1", 0, 10)])],
        )
        result = difference(scored, mask, exact=True)
        assert result.region_count() == scored.region_count() - 1

    def test_joinby_restricts_mask(self, scored, mask):
        result = difference(scored, mask, joinby=("cell",))
        # Only the HeLa sample is masked; K562 untouched.
        assert len(result[1]) == 1
        assert len(result[2]) == 1


class TestMaterializeAndProvenance:
    def test_materialize_renames(self, scored):
        named = materialize(scored, "RESULT")
        assert named.name == "RESULT"
        assert len(named) == len(scored)

    def test_materialize_persists(self, scored, tmp_path):
        from repro.formats import read_dataset

        materialize(scored, "RESULT", directory=str(tmp_path / "RESULT"))
        loaded = read_dataset(str(tmp_path / "RESULT"))
        assert len(loaded) == 2

    def test_explain_traces_chain(self, scored):
        from repro.gmql import MetaCompare, select

        step1 = select(scored, MetaCompare("cell", "==", "HeLa"), name="S1")
        step2 = extend(step1, {"n": (Count(), None)}, name="S2")
        text = explain(step2, 1, catalog={"S1": step1, "SCORED": scored})
        assert "EXTEND" in text
        assert "SELECT" in text
        assert "SCORED[1] (source)" in text
