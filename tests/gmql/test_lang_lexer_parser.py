"""Tests for the GMQL lexer and parser."""

import pytest

from repro.errors import GmqlSyntaxError
from repro.gmql.lang import parse, tokenize
from repro.gmql.lang import ast_nodes as ast
from repro.gmql.lang.tokens import EOF, IDENT, KEYWORD, NUMBER, STRING


class TestLexer:
    def test_paper_statement_tokens(self):
        tokens = tokenize("PROMS = SELECT(annType == 'promoter') ANNOTATIONS;")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            IDENT, "SYMBOL", KEYWORD, "SYMBOL", IDENT, "SYMBOL", STRING,
            "SYMBOL", IDENT, "SYMBOL", EOF,
        ]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Select SELECT")
        assert all(t.value == "SELECT" for t in tokens[:-1])

    def test_scientific_notation(self):
        tokens = tokenize("p_value <= 1e-5")
        assert tokens[2].kind == NUMBER
        assert tokens[2].value == "1e-5"

    def test_dotted_identifier(self):
        tokens = tokenize("left.cell == 'HeLa'")
        assert tokens[0].kind == IDENT
        assert tokens[0].value == "left.cell"

    def test_comments_skipped(self):
        tokens = tokenize("# a comment\nA = SELECT() B; // trailing\n")
        assert tokens[0].value == "A"

    def test_line_column_positions(self):
        tokens = tokenize("A\n  B")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unterminated_string(self):
        with pytest.raises(GmqlSyntaxError, match="unterminated"):
            tokenize("x == 'oops")

    def test_unexpected_character(self):
        with pytest.raises(GmqlSyntaxError):
            tokenize("a @ b")


class TestParserStatements:
    def test_paper_program(self):
        program = parse(
            """
            PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
            PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
            RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
            MATERIALIZE RESULT;
            """
        )
        assert program.assigned() == ("PROMS", "PEAKS", "RESULT")
        assert program.materialized() == ("RESULT",)
        select_stmt = program.statements[0]
        assert isinstance(select_stmt.operation, ast.OpSelect)
        assert select_stmt.operation.meta == ast.Comparison(
            "annType", "==", "promoter"
        )
        map_stmt = program.statements[2].operation
        assert map_stmt.assignments == (
            ast.AggregateCall("peak_count", "COUNT", None),
        )

    def test_materialize_into(self):
        program = parse("A = SELECT() B; MATERIALIZE A INTO Named;")
        assert program.statements[1].target == "Named"

    def test_missing_semicolon(self):
        with pytest.raises(GmqlSyntaxError):
            parse("A = SELECT() B")

    def test_garbage_statement(self):
        with pytest.raises(GmqlSyntaxError):
            parse("SELECT A;")


class TestParserSelect:
    def test_boolean_precedence(self):
        op = parse("A = SELECT(a == 1 OR b == 2 AND NOT c == 3) D;").statements[0].operation
        assert isinstance(op.meta, ast.BoolOr)
        assert isinstance(op.meta.right, ast.BoolAnd)
        assert isinstance(op.meta.right.right, ast.BoolNot)

    def test_parenthesised_boolean(self):
        op = parse("A = SELECT((a == 1 OR b == 2) AND c == 3) D;").statements[0].operation
        assert isinstance(op.meta, ast.BoolAnd)

    def test_region_section(self):
        op = parse("A = SELECT(region: p_value <= 1e-5) D;").statements[0].operation
        assert op.meta is None
        assert op.region == ast.Comparison("p_value", "<=", 1e-5)

    def test_meta_and_region(self):
        op = parse(
            "A = SELECT(cell == 'HeLa'; region: chrom == 'chr1') D;"
        ).statements[0].operation
        assert op.meta is not None and op.region is not None

    def test_semijoin(self):
        op = parse("A = SELECT(semijoin: cell, tissue IN OTHER) D;").statements[0].operation
        assert op.semijoin == ast.SemiJoinClause(("cell", "tissue"), "OTHER", False)

    def test_negated_semijoin(self):
        op = parse("A = SELECT(semijoin: cell NOT IN OTHER) D;").statements[0].operation
        assert op.semijoin.negated

    def test_bare_attribute_is_existence(self):
        op = parse("A = SELECT(antibody) D;").statements[0].operation
        assert op.meta == ast.Comparison("antibody", "!=", None)

    def test_numeric_literals(self):
        op = parse("A = SELECT(n == -5) D;").statements[0].operation
        assert op.meta.value == -5


class TestParserOtherOps:
    def test_project(self):
        op = parse(
            "A = PROJECT(p_value, len AS right - left; metadata: cell) D;"
        ).statements[0].operation
        assert op.region_attributes == ("p_value",)
        assert op.metadata_attributes == ("cell",)
        assert op.new_region_attributes[0][0] == "len"

    def test_project_star_keeps_all(self):
        op = parse("A = PROJECT(*, l AS length) D;").statements[0].operation
        assert op.region_attributes is None

    def test_project_only_new_drops_rest(self):
        op = parse("A = PROJECT(l AS length) D;").statements[0].operation
        assert op.region_attributes == ()

    def test_extend(self):
        op = parse("A = EXTEND(n AS COUNT, m AS MAX(score)) D;").statements[0].operation
        assert op.assignments == (
            ast.AggregateCall("n", "COUNT", None),
            ast.AggregateCall("m", "MAX", "score"),
        )

    def test_merge_groupby(self):
        op = parse("A = MERGE(groupby: cell) D;").statements[0].operation
        assert op.groupby == ("cell",)

    def test_group(self):
        op = parse(
            "A = GROUP(groupby: cell; metadata: n AS COUNT(rep); region: m AS COUNT) D;"
        ).statements[0].operation
        assert op.meta_keys == ("cell",)
        assert op.meta_aggregates[0].attribute == "rep"
        assert op.region_aggregates[0].function == "COUNT"

    def test_order(self):
        op = parse(
            "A = ORDER(score DESC, cell; top: 3; region: p_value ASC TOP 5) D;"
        ).statements[0].operation
        assert op.meta_keys == (("score", "DESC"), ("cell", "ASC"))
        assert op.top == 3
        assert op.region_keys == (("p_value", "ASC"),)
        assert op.region_top == 5

    def test_union(self):
        op = parse("A = UNION() X Y;").statements[0].operation
        assert (op.left, op.right) == ("X", "Y")

    def test_difference(self):
        op = parse("A = DIFFERENCE(joinby: cell; exact) X Y;").statements[0].operation
        assert op.joinby == ("cell",)
        assert op.exact

    def test_cover_bounds(self):
        op = parse("A = COVER(2, ANY) D;").statements[0].operation
        assert op.min_acc == ast.BoundExpr("INT", 2)
        assert op.max_acc == ast.BoundExpr("ANY")

    def test_cover_all_arithmetic(self):
        op = parse("A = COVER((ALL + 1) / 2, ALL) D;").statements[0].operation
        assert op.min_acc == ast.BoundExpr("ALL", offset=1, divisor=2)
        assert op.max_acc == ast.BoundExpr("ALL", offset=0, divisor=1)

    def test_summit_variant(self):
        op = parse("A = SUMMIT(1, ANY) D;").statements[0].operation
        assert op.variant == "SUMMIT"

    def test_map_with_joinby(self):
        op = parse("A = MAP(n AS COUNT; joinby: cell) R E;").statements[0].operation
        assert op.joinby == ("cell",)
        assert (op.reference, op.experiment) == ("R", "E")

    def test_map_default_count(self):
        op = parse("A = MAP() R E;").statements[0].operation
        assert op.assignments == ()

    def test_join_clauses(self):
        op = parse(
            "A = JOIN(DLE(1000), MD(1), UP; output: LEFT; joinby: cell) X Y;"
        ).statements[0].operation
        assert op.clauses == (
            ast.GenometricClause("DLE", 1000),
            ast.GenometricClause("MD", 1),
            ast.GenometricClause("UP"),
        )
        assert op.output == "LEFT"
        assert op.joinby == ("cell",)

    def test_join_negative_dle(self):
        op = parse("A = JOIN(DLE(-1)) X Y;").statements[0].operation
        assert op.clauses[0].argument == -1
