"""Failure-injection tests: the distributed pieces must degrade cleanly."""

import os

import pytest

from repro.errors import FormatError, RepositoryError, SearchError
from repro.federation import Network
from repro.formats import read_dataset, write_dataset
from repro.gdm import Dataset, Metadata, RegionSchema, Sample, region
from repro.repository import StagingArea
from repro.search import Crawler, GenomeHost, GenomeSearchService


def small_dataset(name="DS"):
    ds = Dataset(name, RegionSchema.empty())
    ds.add_sample(
        Sample(1, [region("chr1", 0, 50)], Metadata({"cell": "HeLa-S3"}))
    )
    return ds


class TestOfflineHosts:
    @pytest.fixture()
    def world(self):
        network = Network()
        hosts = [GenomeHost(f"h{i}", network) for i in range(3)]
        for i, host in enumerate(hosts):
            host.publish(small_dataset(f"DS{i}"))
        service = GenomeSearchService()
        crawler = Crawler(hosts, network)
        return hosts, service, crawler

    def test_crawl_skips_offline_host(self, world):
        hosts, service, crawler = world
        hosts[1].offline = True
        report = crawler.crawl(service)
        assert report.hosts_failed == 1
        assert report.hosts_visited == 2
        assert 0 < service.coverage(hosts) < 1.0

    def test_offline_host_retried_first_on_recovery(self, world):
        hosts, service, crawler = world
        hosts[1].offline = True
        crawler.crawl(service)
        hosts[1].offline = False
        report = crawler.crawl(service)
        assert report.hosts_failed == 0
        assert service.coverage(hosts) == 1.0

    def test_offline_download_raises(self, world):
        hosts, *_ = world
        hosts[0].offline = True
        with pytest.raises(SearchError, match="unreachable"):
            hosts[0].download("DS0", "user")


class TestCorruptDatasetDirectories:
    def test_bad_schema_header(self, tmp_path):
        directory = tmp_path / "BAD"
        directory.mkdir()
        (directory / "schema.txt").write_text("not-a-schema-token\n")
        with pytest.raises(FormatError, match="bad schema token"):
            read_dataset(str(directory))

    def test_corrupt_region_line_reports_position(self, tmp_path):
        ds = small_dataset()
        write_dataset(ds, str(tmp_path / "DS"))
        sample_file = tmp_path / "DS" / "S_00001.gdm"
        sample_file.write_text("chr1\tnot-a-number\t50\t*\n")
        with pytest.raises(FormatError, match="line 1"):
            read_dataset(str(tmp_path / "DS"))

    def test_missing_meta_file_tolerated(self, tmp_path):
        ds = small_dataset()
        write_dataset(ds, str(tmp_path / "DS"))
        os.remove(tmp_path / "DS" / "S_00001.gdm.meta")
        loaded = read_dataset(str(tmp_path / "DS"))
        assert len(loaded[1].meta) == 0  # regions survive, metadata empty

    def test_corrupt_meta_line(self, tmp_path):
        ds = small_dataset()
        write_dataset(ds, str(tmp_path / "DS"))
        (tmp_path / "DS" / "S_00001.gdm.meta").write_text("no-tab-here\n")
        with pytest.raises(FormatError, match="TAB"):
            read_dataset(str(tmp_path / "DS"))

    def test_stray_files_ignored(self, tmp_path):
        ds = small_dataset()
        write_dataset(ds, str(tmp_path / "DS"))
        (tmp_path / "DS" / "README.txt").write_text("hello")
        loaded = read_dataset(str(tmp_path / "DS"))
        assert len(loaded) == 1


class TestStagingLifecycle:
    def test_release_then_retrieve_fails_cleanly(self):
        staging = StagingArea()
        ticket = staging.stage(small_dataset())
        staging.release(ticket)
        with pytest.raises(RepositoryError, match="unknown or evicted"):
            staging.retrieve_all(ticket)

    def test_double_release_is_idempotent(self):
        staging = StagingArea()
        ticket = staging.stage(small_dataset())
        staging.release(ticket)
        staging.release(ticket)  # no error

    def test_recently_used_survives_eviction(self):
        probe = StagingArea()
        size = len(probe.retrieve_all(probe.stage(small_dataset())))
        staging = StagingArea(budget_bytes=int(size * 2.5))
        first = staging.stage(small_dataset("A"))
        second = staging.stage(small_dataset("B"))
        staging.retrieve_chunk(first, 0)  # refresh A's recency
        staging.stage(small_dataset("C"))  # evicts B, not A
        staging.retrieve_all(first)  # still there
        with pytest.raises(RepositoryError):
            staging.retrieve_all(second)
