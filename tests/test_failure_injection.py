"""Failure-injection tests: the distributed pieces must degrade cleanly.

All outage scenarios are driven by the seeded
:class:`~repro.resilience.FaultInjector` chaos layer -- no ad-hoc state
poking -- so every scenario here replays byte-for-byte from its chaos
spec.  Three fixed seeds (the CI ``chaos`` job's matrix) are exercised
via the ``REPRO_CHAOS_SEED`` environment variable.
"""

import os

import pytest

from repro.engine import ExecutionContext
from repro.errors import (
    CircuitOpenError,
    FederationError,
    FormatError,
    RepositoryError,
    SearchError,
)
from repro.federation import FederatedClient, FederationNode, Network
from repro.formats import read_dataset, write_dataset
from repro.gdm import Dataset, Metadata, RegionSchema, Sample, region
from repro.repository import Catalog, StagingArea
from repro.resilience import (
    BreakerRegistry,
    FaultInjector,
    RetryPolicy,
    SimulatedClock,
)
from repro.search import Crawler, GenomeHost, GenomeSearchService

def chaos_seed_from_env() -> int:
    """The CI chaos job re-runs this module under several fixed seeds."""
    return int(os.environ.get("REPRO_CHAOS_SEED", "1"))


CHAOS_SEED = chaos_seed_from_env()


def small_dataset(name="DS", n_regions=1, start=0):
    ds = Dataset(name, RegionSchema.empty())
    ds.add_sample(
        Sample(
            1,
            [region("chr1", start + i * 100, start + i * 100 + 50)
             for i in range(n_regions)],
            Metadata({"cell": "HeLa-S3"}),
        )
    )
    return ds


def partitioned_federation(spec="", **client_options):
    """Three nodes, each holding one partition of the PEAKS dataset."""
    injector = FaultInjector.from_spec(spec) if spec else None
    network = Network(injector=injector)
    nodes = []
    for index in range(3):
        catalog = Catalog(f"n{index}")
        catalog.register(small_dataset("PEAKS", n_regions=2 + index,
                                       start=1000 * index))
        nodes.append(FederationNode(f"n{index}", catalog, network))
    client = FederatedClient(nodes, network, seed=CHAOS_SEED,
                             **client_options)
    return client, network, injector


PROGRAM = "R = SELECT() PEAKS; MATERIALIZE R;"


class TestDegradedScatterPlan:
    """The acceptance scenario: one host dead, one flaky, plan completes."""

    SPEC = (
        f"seed={CHAOS_SEED};"
        "crash@*:n1;"                                # n1 dies permanently
        "transient@federation.execute:n2?times=1"    # n2 hiccups once
    )

    def test_completes_degraded_with_skipped_host_named(self):
        client, __, __i = partitioned_federation(self.SPEC)
        outcome = client.run_scatter(PROGRAM)
        assert outcome.degraded is True
        assert [host for host, __r in outcome.skipped_hosts] == ["n1"]
        # The survivors both answered, despite n2's transient fault.
        assert sorted(outcome.results) == ["n0", "n2"]
        assert outcome.retries >= 1
        assert "DEGRADED" in outcome.report() and "n1" in outcome.report()

    def test_surviving_results_match_fault_free_run(self):
        chaotic, *__ = partitioned_federation(self.SPEC)
        clean, *__c = partitioned_federation()
        degraded = chaotic.run_scatter(PROGRAM)
        baseline = clean.run_scatter(PROGRAM)
        assert baseline.degraded is False
        for host in ("n0", "n2"):
            assert (
                degraded.results[host]["R"]["sha256"]
                == baseline.results[host]["R"]["sha256"]
            )

    def test_whole_scenario_replays_byte_for_byte_from_seed(self):
        def run():
            client, network, injector = partitioned_federation(self.SPEC)
            outcome = client.run_scatter(PROGRAM)
            return (
                outcome.results,
                outcome.skipped_hosts,
                outcome.bytes_moved,
                outcome.message_count,
                outcome.retries,
                [(i.point, i.kind) for i in injector.injected],
                network.log.simulated_seconds,
            )

        assert run() == run()

    def test_all_hosts_dead_still_raises(self):
        client, *__ = partitioned_federation(f"seed={CHAOS_SEED};crash@*:n*")
        with pytest.raises(FederationError, match="no usable node"):
            client.run_scatter(PROGRAM)


class TestTransientFederation:
    def test_query_shipping_survives_transient_faults(self):
        spec = (f"seed={CHAOS_SEED};"
                "transient@federation.execute:*?times=2")
        chaotic, *__ = partitioned_federation(spec)
        clean, *__c = partitioned_federation()
        bumpy = chaotic.run_query_shipping(PROGRAM)
        smooth = clean.run_query_shipping(PROGRAM)
        assert bumpy.retries >= 2
        assert bumpy.results["R"]["sha256"] == smooth.results["R"]["sha256"]

    def test_corrupted_chunk_detected_and_refetched(self):
        spec = (f"seed={CHAOS_SEED};"
                "corrupt@federation.transfer:*?times=1")
        chaotic, __, injector = partitioned_federation(spec)
        clean, *__c = partitioned_federation()
        bumpy = chaotic.run_scatter(PROGRAM)
        smooth = clean.run_scatter(PROGRAM)
        assert injector.injected_by_kind().get("corrupt") == 1
        assert bumpy.retries >= 1           # the re-fetch
        for host in bumpy.results:
            assert (
                bumpy.results[host]["R"]["sha256"]
                == smooth.results[host]["R"]["sha256"]
            )

    def test_retry_backoff_billed_as_simulated_time(self):
        spec = (f"seed={CHAOS_SEED};"
                "transient@federation.info:n0?times=1")
        client, network, __ = partitioned_federation(spec)
        client.discover()
        assert client.clock.slept > 0
        assert network.log.simulated_seconds >= client.clock.slept


class TestBreakerScenarios:
    def breaker_client(self):
        """Aggressive policy/breaker so circuits open quickly."""
        return partitioned_federation(
            f"seed={CHAOS_SEED};crash@*:n1",
            policy=RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0),
        )

    def test_breaker_opens_after_repeated_failures(self):
        client, *__ = self.breaker_client()
        client.caller.breakers = BreakerRegistry(
            failure_threshold=2, reset_seconds=60.0, clock=client.clock
        )
        client.discover()               # 2 failed attempts trip the breaker
        assert client.caller.breakers.open_hosts() == ["n1"]
        breaker = client.caller.breakers.get("n1")
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_open_breaker_short_circuits_next_plan(self):
        client, network, __ = self.breaker_client()
        client.caller.breakers = BreakerRegistry(
            failure_threshold=2, reset_seconds=60.0, clock=client.clock
        )
        client.discover()
        messages_before = network.log.message_count()
        outcome = client.run_scatter(PROGRAM)
        assert outcome.degraded
        assert outcome.skipped_hosts[0][0] == "n1"
        # No protocol traffic was wasted on the dead host this time.
        dead_traffic = [
            m for m in network.log.messages[messages_before:]
            if "n1" in (m[0], m[1])
        ]
        assert dead_traffic == []

    def test_half_open_probe_recovers_healed_host(self):
        client, *__ = partitioned_federation(
            f"seed={CHAOS_SEED};transient@*:n1?times=2",
            policy=RetryPolicy(max_attempts=1),  # no in-call retries
        )
        client.caller.breakers = BreakerRegistry(
            failure_threshold=2, reset_seconds=5.0, clock=client.clock
        )
        client.discover()               # first failure
        client.discover()               # second failure trips the breaker
        assert client.caller.breakers.open_hosts() == ["n1"]
        client.clock.advance(5.0)       # reset window passes; host healed
        locations = client.discover()   # half-open probe succeeds
        assert client.caller.breakers.open_hosts() == []
        assert locations["PEAKS"] in {"n0", "n1", "n2"}

    def test_metrics_and_spans_surface_resilience_activity(self):
        context = ExecutionContext()
        client, *__ = partitioned_federation(
            f"seed={CHAOS_SEED};transient@federation.info:n0?times=1",
            context=context,
        )
        client.discover()
        snapshot = context.metrics.snapshot()
        assert snapshot["resilience.retries"] >= 1
        assert snapshot["resilience.host.n0.failures"] >= 1
        labels = [span.label for span in context.tracer.iter_spans()]
        assert any(label == "call info:n0" for label in labels)


class TestCrawlerUnderChaos:
    def world(self, spec):
        injector = FaultInjector.from_spec(spec) if spec else None
        network = Network(injector=injector)
        hosts = [GenomeHost(f"h{i}", network) for i in range(3)]
        for i, host in enumerate(hosts):
            host.publish(small_dataset(f"DS{i}"))
        service = GenomeSearchService()
        crawler = Crawler(hosts, network, seed=CHAOS_SEED)
        return hosts, service, crawler

    def test_transient_host_recovers_within_the_pass(self):
        hosts, service, crawler = self.world(
            f"seed={CHAOS_SEED};transient@iog.links:h1?times=2"
        )
        report = crawler.crawl(service)
        assert report.hosts_failed == 0
        assert report.hosts_visited == 3
        assert report.retries == 2
        assert service.coverage(hosts) == 1.0

    def test_dead_host_marked_failed_and_retried_next_pass(self):
        # times=3 outlasts exactly one pass of the default 3-attempt policy.
        hosts, service, crawler = self.world(
            f"seed={CHAOS_SEED};transient@iog.links:h1?times=3"
        )
        report = crawler.crawl(service)
        assert report.failed_hosts() == ["h1"]
        assert report.hosts_planned == report.hosts_visited + report.hosts_failed
        assert 0 < service.coverage(hosts) < 1.0
        # The injected outage heals (times exhausted); h1 is retried first.
        second = crawler.crawl(service)
        assert second.hosts_failed == 0
        assert service.coverage(hosts) == 1.0

    def test_crawl_scenario_is_seed_deterministic(self):
        def run():
            hosts, service, crawler = self.world(
                f"seed={CHAOS_SEED};transient@iog.links:*?p=0.5"
            )
            report = crawler.crawl(service)
            return ([(o.host, o.ok, o.attempts) for o in report.host_outcomes],
                    service.coverage(hosts))

        assert run() == run()


class TestCorruptDatasetDirectories:
    def test_bad_schema_header(self, tmp_path):
        directory = tmp_path / "BAD"
        directory.mkdir()
        (directory / "schema.txt").write_text("not-a-schema-token\n")
        with pytest.raises(FormatError, match="bad schema token"):
            read_dataset(str(directory))

    def test_corrupt_region_line_reports_position(self, tmp_path):
        ds = small_dataset()
        write_dataset(ds, str(tmp_path / "DS"))
        sample_file = tmp_path / "DS" / "S_00001.gdm"
        sample_file.write_text("chr1\tnot-a-number\t50\t*\n")
        with pytest.raises(FormatError, match="line 1"):
            read_dataset(str(tmp_path / "DS"))

    def test_missing_meta_file_tolerated(self, tmp_path):
        ds = small_dataset()
        write_dataset(ds, str(tmp_path / "DS"))
        os.remove(tmp_path / "DS" / "S_00001.gdm.meta")
        loaded = read_dataset(str(tmp_path / "DS"))
        assert len(loaded[1].meta) == 0  # regions survive, metadata empty

    def test_corrupt_meta_line(self, tmp_path):
        ds = small_dataset()
        write_dataset(ds, str(tmp_path / "DS"))
        (tmp_path / "DS" / "S_00001.gdm.meta").write_text("no-tab-here\n")
        with pytest.raises(FormatError, match="TAB"):
            read_dataset(str(tmp_path / "DS"))

    def test_stray_files_ignored(self, tmp_path):
        ds = small_dataset()
        write_dataset(ds, str(tmp_path / "DS"))
        (tmp_path / "DS" / "README.txt").write_text("hello")
        loaded = read_dataset(str(tmp_path / "DS"))
        assert len(loaded) == 1


class TestStagingLifecycle:
    def test_release_then_retrieve_fails_cleanly(self):
        staging = StagingArea()
        ticket = staging.stage(small_dataset())
        staging.release(ticket)
        with pytest.raises(RepositoryError, match="unknown or evicted"):
            staging.retrieve_all(ticket)

    def test_double_release_is_idempotent(self):
        staging = StagingArea()
        ticket = staging.stage(small_dataset())
        staging.release(ticket)
        staging.release(ticket)  # no error

    def test_recently_used_survives_eviction(self):
        probe = StagingArea()
        size = len(probe.retrieve_all(probe.stage(small_dataset())))
        staging = StagingArea(budget_bytes=int(size * 2.5))
        first = staging.stage(small_dataset("A"))
        second = staging.stage(small_dataset("B"))
        staging.retrieve_chunk(first, 0)  # refresh A's recency
        staging.stage(small_dataset("C"))  # evicts B, not A
        staging.retrieve_all(first)  # still there
        with pytest.raises(RepositoryError):
            staging.retrieve_all(second)

    def test_staging_chaos_point_fires(self):
        injector = FaultInjector.from_spec(
            f"seed={CHAOS_SEED};transient@staging.stage:n9?times=1"
        )
        network = Network(injector=injector)
        staging = StagingArea(fire=network.fire, owner="n9")
        from repro.errors import TransientNetworkError

        with pytest.raises(TransientNetworkError):
            staging.stage(small_dataset())
        ticket = staging.stage(small_dataset())   # healed
        assert staging.retrieve_all(ticket)
