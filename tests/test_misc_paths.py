"""Coverage for smaller paths: provenance cycles, pool shutdown, edges."""

import pytest

from repro.analysis import GenomeSpace, silhouette
from repro.gdm import Dataset, Metadata, RegionSchema, Sample, region
from repro.gmql.provenance import explain, record


class TestProvenanceEdges:
    def test_cycle_guard(self):
        ds = Dataset("D", RegionSchema.empty(), [Sample(1)])
        # A pathological self-referential catalog entry must not loop.
        ds.provenance.append(record("SELECT", 1, [("D", 1)]))
        text = explain(ds, 1, catalog={"D": ds})
        assert "already shown" in text

    def test_multiple_records_per_sample(self):
        ds = Dataset("D", RegionSchema.empty(), [Sample(1)])
        ds.provenance.append(record("UNION", 1, [("A", 1)], "left"))
        ds.provenance.append(record("UNION", 1, [("B", 2)], "right"))
        text = explain(ds, 1)
        assert "A[1]" in text and "B[2]" in text

    def test_source_sample(self):
        ds = Dataset("SRC", RegionSchema.empty(), [Sample(3)])
        assert "(source)" in explain(ds, 3)


class TestParallelPoolLifecycle:
    def test_close_is_idempotent(self):
        from repro.engine.parallel import ParallelBackend

        backend = ParallelBackend(max_workers=2)
        # Force pool creation through a tiny difference call.
        from repro.gmql.lang import Interpreter, compile_program

        data = Dataset(
            "DATA",
            RegionSchema.empty(),
            [Sample(1, [region("chr1", 0, 10)], Metadata({"x": 1}))],
        )
        compiled = compile_program(
            "R = DIFFERENCE() DATA DATA; MATERIALIZE R;"
        )
        Interpreter(backend, {"DATA": data}).run_program(compiled)
        backend.close()
        backend.close()  # second close: no error

    def test_workers_parameter(self):
        from repro.engine.parallel import ParallelBackend

        backend = ParallelBackend(max_workers=3)
        assert backend._max_workers == 3
        backend.close()


class TestSilhouetteEdges:
    def test_single_cluster_is_zero(self):
        import numpy as np

        space = GenomeSpace(
            np.ones((3, 2)),
            ["a", "b", "c"],
            ["e1", "e2"],
            [("chr1", i, i + 1, "+") for i in range(3)],
        )
        assert silhouette(space, [0, 0, 0]) == 0.0


class TestCliConvertReverse:
    def test_bed_to_narrowpeak(self, tmp_path):
        from repro.cli import main

        source = tmp_path / "in.bed"
        source.write_text("chr1\t10\t90\tpeakX\t7\t-\n")
        destination = tmp_path / "out.narrowPeak"
        assert main(["convert", str(source), str(destination)]) == 0
        fields = destination.read_text().strip().split("\t")
        assert fields[:4] == ["chr1", "10", "90", "peakX"]
        assert len(fields) == 10  # full narrowPeak row with fillers


class TestVersionAndExports:
    def test_version_string(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_public_exports_resolve(self):
        """Every name in each package's __all__ must exist."""
        import importlib

        for module_name in (
            "repro.gdm",
            "repro.intervals",
            "repro.formats",
            "repro.gmql",
            "repro.gmql.lang",
            "repro.engine",
            "repro.ngs",
            "repro.simulate",
            "repro.analysis",
            "repro.ontology",
            "repro.repository",
            "repro.federation",
            "repro.search",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{module_name}.{name}"
