"""Golden-snippet self-tests for the repo lint rules.

Every ``RL0xx`` rule has one intentionally-violating snippet under
``tests/lint/snippets/``; each snippet declares its expected findings
with ``#! expect: RL0xx @ <line>`` annotations and the tests verify the
rule fires at exactly those (code, line) pairs -- no more, no fewer.
A coverage test asserts the corpus spans the whole rule table, so a new
rule cannot land without its golden snippet.
"""

import importlib.util
import re
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SNIPPET_DIR = Path(__file__).resolve().parent / "snippets"

EXPECT = re.compile(r"#! expect: (RL\d{3}) @ (\d+)")


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "lint_repo", REPO_ROOT / "benchmarks" / "lint_repo.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("lint_repo", module)
    spec.loader.exec_module(module)
    return module


lint = _load_lint()

SNIPPETS = sorted(SNIPPET_DIR.glob("*.py"))


def expectations(snippet: Path) -> list:
    """The ``(code, line)`` pairs a snippet declares it must trip."""
    return [
        (match.group(1), int(match.group(2)))
        for match in EXPECT.finditer(snippet.read_text())
    ]


class TestGoldenSnippets:
    @pytest.mark.parametrize(
        "snippet", SNIPPETS, ids=[s.stem for s in SNIPPETS]
    )
    def test_snippet_trips_exactly_its_expected_findings(self, snippet):
        expected = expectations(snippet)
        assert expected, f"{snippet.name} declares no '#! expect:' lines"
        problems = lint.check_file(snippet, set(lint.ALL_CODES))
        actual = [(p.code, p.line) for p in problems]
        assert sorted(actual) == sorted(expected)

    def test_every_file_rule_has_a_golden_snippet(self):
        covered = {code for s in SNIPPETS for code, __ in expectations(s)}
        # RL005 is repo-level (operator registry); it is covered by the
        # fixture-based test below, not a snippet.
        file_rules = set(lint.ALL_CODES) - {"RL005"}
        assert covered == file_rules

    def test_snippet_corpus_is_exempt_from_the_repo_sweep(self):
        swept = set(lint._python_files())
        assert not (swept & set(SNIPPETS))


class TestRegistryRule:
    def test_rl005_fires_on_an_unimported_operator_module(
        self, tmp_path, monkeypatch
    ):
        operators = tmp_path / "operators"
        operators.mkdir()
        (operators / "__init__.py").write_text(
            "from repro.gmql.operators.map import run_map\n"
        )
        (operators / "map.py").write_text("def run_map(): pass\n")
        (operators / "orphan.py").write_text("def run_orphan(): pass\n")
        monkeypatch.setattr(lint, "OPERATORS_DIR", operators)
        monkeypatch.setattr(lint, "ROOT", tmp_path)
        problems = lint.check_operator_registry({"RL005"})
        assert [(p.code, str(p.path)) for p in problems] == [
            ("RL005", "operators/orphan.py")
        ]

    def test_rl005_respects_ignore(self):
        assert lint.check_operator_registry(set()) == []


class TestRuleSelection:
    def test_select_narrows_to_the_named_codes(self):
        assert lint.active_codes(select="RL001,RL007") == {"RL001", "RL007"}

    def test_ignore_removes_codes_from_the_default_set(self):
        active = lint.active_codes(ignore="RL002")
        assert "RL002" not in active
        assert active == set(lint.ALL_CODES) - {"RL002"}

    def test_unknown_code_is_rejected(self):
        with pytest.raises(SystemExit, match="RL999"):
            lint.active_codes(select="RL999")

    def test_selected_rule_is_the_only_one_that_fires(self):
        snippet = SNIPPET_DIR / "rl007_clock_seam.py"
        only_environ = lint.check_file(snippet, {"RL008"})
        assert only_environ == []
        only_clock = lint.check_file(snippet, {"RL007"})
        assert {p.code for p in only_clock} == {"RL007"}


class TestRepoIsClean:
    def test_the_repo_passes_its_own_lint(self):
        problems = []
        for path in lint._python_files():
            problems.extend(lint.check_file(path, set(lint.ALL_CODES)))
        problems.extend(lint.check_operator_registry(set(lint.ALL_CODES)))
        assert problems == [], "\n".join(p.render() for p in problems)
