"""Golden violation for RL004: raw memory map construction."""
import numpy as np


def map_blocks(path, n):
    #! expect: RL004 @ 7
    return np.memmap(path, dtype="int64", mode="r", shape=(n,))
