"""Golden violation for RL008: os.environ read outside *_from_env."""
import os


def cache_dir(default):
    #! expect: RL008 @ 7
    return os.environ.get("SNIPPET_CACHE_DIR", default)
