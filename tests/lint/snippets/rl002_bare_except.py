"""Golden violation for RL002: bare except handler."""


def swallow_everything(fn):
    try:
        return fn()
    #! expect: RL002 @ 8
    except:
        return None
