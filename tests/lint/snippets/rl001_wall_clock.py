"""Golden violation for RL001: direct wall-clock read."""
import time


def stamp_result(result):
    #! expect: RL001 @ 7
    result["created_at"] = time.time()
    return result
