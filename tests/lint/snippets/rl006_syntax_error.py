"""Golden violation for RL006: the file does not parse."""
#! expect: RL006 @ 5


def broken(:
    pass
