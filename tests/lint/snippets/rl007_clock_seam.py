"""Golden violation for RL007: monotonic read bypassing the clock seam."""
import time


def wait_until_ready(poll):
    deadline = 5.0
    #! expect: RL007 @ 8
    while time.monotonic() < deadline:
        #! expect: RL007 @ 10
        time.sleep(0.01)
        if poll():
            return True
    return False
