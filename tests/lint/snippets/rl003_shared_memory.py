"""Golden violation for RL003: raw SharedMemory construction."""
from multiprocessing.shared_memory import SharedMemory


def leaky_segment(n):
    #! expect: RL003 @ 7
    segment = SharedMemory(create=True, size=n)
    return segment.name
