"""Cross-engine differential suite for the float MAP aggregates.

Every float aggregate (SUM, AVG, STD, MEDIAN, BAG) must be **bit
identical** across the naive, columnar, auto and parallel backends over
adversarial inputs: denormals, signed zeros, NaN, and large-magnitude
cancellation where one misordered addition visibly changes the result.
Values are compared through ``repr``, which distinguishes ``-0.0`` from
``0.0``, ``1`` from ``1.0``, and treats NaN as equal to itself.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.context import ExecutionContext
from repro.gdm import (
    Dataset,
    FLOAT,
    GenomicRegion,
    Metadata,
    RegionSchema,
    Sample,
)
from repro.gmql.lang import execute

BIN = 64

PROGRAM = """
A = SELECT(side == 'left') DATA;
B = SELECT(side == 'right') DATA;
M = MAP(s AS SUM(p), a AS AVG(p), d AS STD(p),
        m AS MEDIAN(p), b AS BAG(p)) A B;
MATERIALIZE M;
"""

#: Adversarial float attribute values.  ``1e16 + 1.0 - 1e16`` is the
#: canary: a float64 running sum returns 0.0, the exact sum returns 1.0.
_NASTY_FLOATS = [
    0.0, -0.0, 1.0, -1.0, 0.1, -0.1,
    5e-324, -5e-324, 1e-308,
    1e16, -1e16, 1.0 + 2**-52,
    1e300, -1e300, float("nan"),
]
_POSITIONS = st.one_of(
    st.integers(0, 6 * BIN),
    st.sampled_from([0, BIN - 1, BIN, BIN + 1, 2 * BIN]),
)
_INTERVALS = st.tuples(
    st.sampled_from(["chr1", "chr2"]),
    _POSITIONS,
    st.one_of(st.integers(0, 2 * BIN), st.sampled_from([0, BIN])),
    st.one_of(st.sampled_from(_NASTY_FLOATS),
              # Bounded like the largest nasty value: a whole group must
              # stay summable -- fsum overflows (by design, with kernel
              # exception parity) once the true sum leaves float range,
              # which is not the behaviour under test here.
              st.floats(width=64, allow_nan=False, allow_infinity=False,
                        min_value=-1e300, max_value=1e300)),
)
_SPECS = st.lists(_INTERVALS, min_size=1, max_size=16)


def make_dataset(left_spec, right_spec) -> Dataset:
    schema = RegionSchema.of(("p", FLOAT))
    samples = []
    for sample_id, (side, spec) in enumerate(
        (("left", left_spec), ("right", right_spec)), start=1
    ):
        regions = [
            GenomicRegion(chrom, pos, pos + width, "*", (float(value),))
            for chrom, pos, width, value in spec
        ]
        samples.append(Sample(sample_id, regions, Metadata({"side": side})))
    return Dataset("DATA", schema, samples, validate=False)


def run(dataset, engine, use_shm=True):
    context = ExecutionContext(
        bin_size=BIN,
        result_cache=False,
        config={"use_store": True, "use_shm": use_shm},
    )
    return execute(PROGRAM, {"DATA": dataset}, engine=engine,
                   context=context)


def bitwise(results) -> dict:
    """Order-preserving deep form with repr-compared attribute values."""
    out = {}
    for name, dataset in results.items():
        out[name] = [
            (tuple(sorted(sample.meta)),
             [(r.chrom, r.left, r.right, r.strand,
               tuple(repr(v) for v in r.values))
              for r in sample.regions])
            for sample in dataset
        ]
    return out


class TestFloatAggregateDifferential:
    @given(_SPECS, _SPECS)
    @settings(max_examples=40, deadline=None)
    def test_columnar_and_auto_match_naive(self, left_spec, right_spec):
        dataset = make_dataset(left_spec, right_spec)
        expected = bitwise(run(dataset, "naive"))
        assert bitwise(run(dataset, "columnar")) == expected
        assert bitwise(run(dataset, "auto")) == expected

    def test_cancellation_canary(self):
        # One reference overlapping three experiment regions whose hit
        # order matters to a float64 running sum but not to fsum.
        left = [("chr1", 0, 3 * BIN, 0.0)]
        right = [
            ("chr1", 0, 10, 1e16),
            ("chr1", 5, 10, 1.0),
            ("chr1", 10, 10, -1e16),
        ]
        dataset = make_dataset(left, right)
        results = {
            engine: bitwise(run(dataset, engine))
            for engine in ("naive", "columnar", "auto")
        }
        assert results["columnar"] == results["naive"]
        assert results["auto"] == results["naive"]
        (__, regions), = results["naive"]["M"][0:1]
        # values = (p, s, a, d, m, b): SUM is the second column.
        assert regions[0][4][1] == "1.0"  # SUM survived the cancellation


def _nasty_dataset(seed: int = 7, n: int = 140) -> Dataset:
    """Deterministic adversarial dataset big enough for real morsels."""
    rng = random.Random(seed)
    left, right = [], []
    for spec in (left, right):
        for __ in range(n):
            chrom = rng.choice(["chr1", "chr2"])
            pos = rng.choice(
                [rng.randint(0, 6 * BIN), 0, BIN - 1, BIN, BIN + 1]
            )
            width = rng.choice([0, 1, BIN, rng.randint(0, 2 * BIN)])
            value = rng.choice(
                _NASTY_FLOATS + [rng.uniform(-1e3, 1e3)]
            )
            spec.append((chrom, pos, width, value))
    return make_dataset(left, right)


class TestParallelFloatAggregates:
    def test_parallel_matches_naive(self):
        dataset = _nasty_dataset()
        expected = bitwise(run(dataset, "naive"))
        assert bitwise(run(dataset, "parallel")) == expected
        assert bitwise(
            run(dataset, "parallel", use_shm=False)
        ) == expected
