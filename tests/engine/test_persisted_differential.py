"""Differential property: the persisted store never changes results.

The acceptance bar of the disk-native store: for hypothesis-generated
datasets seeded with bin-boundary nasties, running the full operator mix
(MAP, DIFFERENCE, COVER, JOIN) with a persistent store root -- blocks
built, persisted, then *re-served from memory-mapped segments by a
second run* -- must be byte-identical to the plain in-memory path, on
every engine.  The second run is forced onto the persisted segments by
using a fresh dataset object (same content, new identity), so nothing
can leak through the per-dataset store memo.
"""

import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.context import ExecutionContext
from repro.gdm import Dataset, GenomicRegion, Metadata, RegionSchema, Sample
from repro.gmql.lang import execute
from repro.store.persist import (
    close_opened_segments,
    reset_residency_ledger,
    set_store_root,
)

BIN = 64  # small bin size so spanning/edge cases actually cross bins

PROGRAM = """
A = SELECT(side == 'left') DATA;
B = SELECT(side == 'right') DATA;
M = MAP() A B;
D = DIFFERENCE() A B;
C = COVER(1, ANY) A;
C2 = COVER(2, ALL) A;
F = FLAT(1, ANY) A;
S = SUMMIT(1, 2) A;
H = HISTOGRAM(2, ALL) A;
J = JOIN(DLE(50); output: LEFT) A B;
MATERIALIZE M;
MATERIALIZE D;
MATERIALIZE C;
MATERIALIZE C2;
MATERIALIZE F;
MATERIALIZE S;
MATERIALIZE H;
MATERIALIZE J;
"""

_POSITIONS = st.one_of(
    st.integers(0, 5 * BIN),
    st.sampled_from([0, BIN - 1, BIN, BIN + 1, 2 * BIN, 3 * BIN]),
)
_WIDTHS = st.one_of(
    st.integers(0, 3 * BIN),
    st.sampled_from([0, BIN, 2 * BIN]),
)
_INTERVALS = st.tuples(
    st.sampled_from(["chr1", "chr2"]), _POSITIONS, _WIDTHS
)


@pytest.fixture(autouse=True)
def no_leaked_store_state():
    set_store_root(None)
    reset_residency_ledger(None)
    yield
    set_store_root(None)
    reset_residency_ledger(None)
    close_opened_segments()


def make_dataset(left_spec, right_spec):
    samples = []
    for sample_id, (side, spec) in enumerate(
        (("left", left_spec), ("right", right_spec)), start=1
    ):
        regions = [
            GenomicRegion(chrom, pos, pos + width, "*", ())
            for chrom, pos, width in spec
        ]
        samples.append(Sample(sample_id, regions, Metadata({"side": side})))
    return Dataset("DATA", RegionSchema.empty(), samples, validate=False)


def run(dataset, engine):
    context = ExecutionContext(bin_size=BIN, config={"use_store": True})
    results = execute(PROGRAM, {"DATA": dataset}, engine=engine,
                      context=context)
    return results


def rows(results):
    return {
        name: (dataset.name, list(dataset.region_rows()))
        for name, dataset in results.items()
    }


def run_persisted(left_spec, right_spec, engine):
    """Two persisted runs: the builder, then a pure mmap consumer."""
    store_dir = tempfile.mkdtemp(prefix="repro-test-persist-")
    try:
        set_store_root(store_dir, sync=True)
        cold = rows(run(make_dataset(left_spec, right_spec), engine))
        # A fresh dataset object with identical content: its store must
        # come entirely from the persisted segments.
        remap = make_dataset(left_spec, right_spec)
        warm = rows(run(remap, engine))
        mapped = sum(
            store.blocks_mapped for store in remap._stores.values()
        )
        built = sum(
            store.blocks_built for store in remap._stores.values()
        )
        return cold, warm, mapped, built
    finally:
        set_store_root(None)
        close_opened_segments()
        shutil.rmtree(store_dir, ignore_errors=True)


@given(
    st.lists(_INTERVALS, min_size=1, max_size=12),
    st.lists(_INTERVALS, min_size=1, max_size=12),
    st.sampled_from(["naive", "columnar", "auto"]),
)
@settings(max_examples=30, deadline=None)
def test_persisted_store_matches_in_memory(left_spec, right_spec, engine):
    reference = rows(run(make_dataset(left_spec, right_spec), engine))
    cold, warm, mapped, built = run_persisted(left_spec, right_spec, engine)
    assert cold == reference
    assert warm == reference
    if engine != "naive":   # the naive engine never consults the store
        assert mapped > 0
        assert built == 0


def test_parallel_persisted_matches_naive_on_boundary_cases():
    # Process pools are too slow for hypothesis; one hand-built dataset
    # packed with edge cases covers the mmap-handle shipping path.
    left = [
        ("chr1", 0, BIN),           # ends exactly on the first bin edge
        ("chr1", BIN, 0),           # zero-length on a bin edge
        ("chr1", BIN - 1, 2),       # straddles the edge
        ("chr1", 0, 3 * BIN),       # spans several bins
        ("chr2", 5 * BIN, 10),      # distant chromosome cluster
        ("chr2", 0, 0),             # zero-length at a probe's left edge
        ("chr2", 10, 0),            # zero-length at a probe's right edge
        ("chr2", 5, 0),             # zero-length strictly inside a probe
        ("chr1", 2 * BIN, 0),       # coincident with a zero-length probe
    ]
    right = [
        ("chr1", BIN // 2, BIN),
        ("chr1", 2 * BIN, 0),
        ("chr2", 0, 10),
        ("chr2", 10, 10),           # seam at 10: a point there hits neither
    ]
    reference = rows(run(make_dataset(left, right), "naive"))
    cold, warm, mapped, built = run_persisted(left, right, "parallel")
    assert cold == reference
    assert warm == reference
    assert mapped > 0
    assert built == 0
