"""Tests for the execution context: spans, metrics, deadlines, workers."""

import pytest

from repro.engine import ExecutionContext, MetricsRegistry, SpanTracer
from repro.engine.context import workers_from_env
from repro.errors import EngineError, ExecutionCancelled


class TestSpanTracer:
    def test_nesting_and_timing(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner", backend="naive") as inner:
                pass
        assert tracer.current is None
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert outer.seconds >= inner.seconds >= 0
        assert inner.attributes["backend"] == "naive"

    def test_annotate_and_render(self):
        tracer = SpanTracer()
        with tracer.span("MAP[n]") as span:
            span.annotate(input_regions=100, output_regions=40)
        text = tracer.render()
        assert "MAP[n]" in text
        assert "input_regions=100" in text
        assert "output_regions=40" in text
        assert "ms" in text

    def test_iter_spans(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.label for s in tracer.iter_spans()] == ["a", "b", "c"]


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("operator.MAP.calls")
        metrics.increment("operator.MAP.calls", 2)
        assert metrics.counter("operator.MAP.calls") == 3
        assert metrics.counter("missing") == 0

    def test_observations(self):
        metrics = MetricsRegistry()
        metrics.observe("seconds", 1.0)
        metrics.observe("seconds", 3.0)
        snap = metrics.snapshot()["seconds"]
        assert snap["count"] == 2
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == 2.0


class TestCancellation:
    def test_cancel(self):
        context = ExecutionContext()
        context.check()  # no-op while healthy
        context.cancel()
        assert context.cancelled
        with pytest.raises(ExecutionCancelled):
            context.check()

    def test_cancelled_is_engine_error(self):
        assert issubclass(ExecutionCancelled, EngineError)

    def test_deadline(self):
        context = ExecutionContext(timeout_seconds=0)
        with pytest.raises(ExecutionCancelled):
            context.check()
        assert context.remaining_seconds() <= 0

    def test_no_deadline(self):
        assert ExecutionContext().remaining_seconds() is None

    def test_cancel_aborts_execution(self):
        from repro.gmql.lang import execute
        from tests.engine.test_backends import random_dataset

        context = ExecutionContext()
        context.cancel()
        with pytest.raises(ExecutionCancelled):
            execute(
                "R = MAP() DATA DATA; MATERIALIZE R;",
                {"DATA": random_dataset(1)},
                context=context,
            )


class TestWorkersConfig:
    def test_workers_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert workers_from_env() == 3
        assert ExecutionContext().workers == 3

    def test_workers_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        assert workers_from_env() is None
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert workers_from_env() is None

    def test_explicit_workers_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert ExecutionContext(workers=5).workers == 5


class TestBackendIntegration:
    def test_kernels_record_into_context(self):
        from repro.gmql.lang import execute
        from tests.engine.test_backends import random_dataset

        context = ExecutionContext()
        execute(
            "R = MAP() DATA DATA; MATERIALIZE R;",
            {"DATA": random_dataset(2)},
            context=context,
        )
        assert context.metrics.counter("operator.MAP.calls") == 1
        labels = [s.label for s in context.tracer.iter_spans()]
        assert any(label.startswith("MAP") for label in labels)
        map_span = next(
            s for s in context.tracer.iter_spans() if s.label.startswith("MAP")
        )
        assert map_span.attributes["output_regions"] > 0
        assert map_span.attributes["input_samples"] > 0
        assert map_span.children  # the SCAN nests under MAP
