"""Tests for the execution context: spans, metrics, deadlines, workers."""

import pytest

from repro.engine import ExecutionContext, MetricsRegistry, SpanTracer
from repro.engine.context import workers_from_env
from repro.errors import EngineError, ExecutionCancelled


class TestSpanTracer:
    def test_nesting_and_timing(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner", backend="naive") as inner:
                pass
        assert tracer.current is None
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert outer.seconds >= inner.seconds >= 0
        assert inner.attributes["backend"] == "naive"

    def test_annotate_and_render(self):
        tracer = SpanTracer()
        with tracer.span("MAP[n]") as span:
            span.annotate(input_regions=100, output_regions=40)
        text = tracer.render()
        assert "MAP[n]" in text
        assert "input_regions=100" in text
        assert "output_regions=40" in text
        assert "ms" in text

    def test_iter_spans(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.label for s in tracer.iter_spans()] == ["a", "b", "c"]


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("operator.MAP.calls")
        metrics.increment("operator.MAP.calls", 2)
        assert metrics.counter("operator.MAP.calls") == 3
        assert metrics.counter("missing") == 0

    def test_observations(self):
        metrics = MetricsRegistry()
        metrics.observe("seconds", 1.0)
        metrics.observe("seconds", 3.0)
        snap = metrics.snapshot()["seconds"]
        assert snap["count"] == 2
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == 2.0


class TestCancellation:
    def test_cancel(self):
        context = ExecutionContext()
        context.check()  # no-op while healthy
        context.cancel()
        assert context.cancelled
        with pytest.raises(ExecutionCancelled):
            context.check()

    def test_cancelled_is_engine_error(self):
        assert issubclass(ExecutionCancelled, EngineError)

    def test_deadline(self):
        context = ExecutionContext(timeout_seconds=0)
        with pytest.raises(ExecutionCancelled):
            context.check()
        assert context.remaining_seconds() <= 0

    def test_no_deadline(self):
        assert ExecutionContext().remaining_seconds() is None

    def test_cancel_aborts_execution(self):
        from repro.gmql.lang import execute
        from tests.engine.test_backends import random_dataset

        context = ExecutionContext()
        context.cancel()
        with pytest.raises(ExecutionCancelled):
            execute(
                "R = MAP() DATA DATA; MATERIALIZE R;",
                {"DATA": random_dataset(1)},
                context=context,
            )


class TestDeadlineClock:
    def test_deadline_measured_on_injected_clock(self):
        from repro.resilience import SimulatedClock

        clock = SimulatedClock()
        context = ExecutionContext(timeout_seconds=5.0, clock=clock)
        context.check()
        assert context.remaining_seconds() == pytest.approx(5.0)
        clock.advance(4.0)
        context.check()                  # still inside the budget
        clock.advance(2.0)
        with pytest.raises(ExecutionCancelled):
            context.check()

    def test_real_clock_still_default(self):
        context = ExecutionContext(timeout_seconds=100.0)
        assert 0 < context.remaining_seconds() <= 100.0


class TestDeadlineRetryInteraction:
    """The run deadline must cut retries short *promptly* (satellite #3)."""

    def test_backoff_sleep_never_outlives_deadline(self):
        from repro.errors import TransientNetworkError
        from repro.resilience import RetryPolicy, SimulatedClock, call_with_retry

        clock = SimulatedClock()
        context = ExecutionContext(timeout_seconds=1.0, clock=clock)

        def always_flaky():
            raise TransientNetworkError("blip")

        # Backoff (10s) dwarfs the deadline (1s): the loop must cancel
        # immediately instead of finishing the sleep.
        with pytest.raises(ExecutionCancelled):
            call_with_retry(
                always_flaky,
                RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.0),
                clock=clock, context=context,
            )
        assert clock.slept == 0.0        # cancelled before sleeping
        assert clock.now < 1.0           # and well before the deadline

    def test_deadline_allows_retries_that_fit(self):
        from repro.errors import TransientNetworkError
        from repro.resilience import RetryPolicy, SimulatedClock, call_with_retry

        clock = SimulatedClock()
        context = ExecutionContext(timeout_seconds=10.0, clock=clock)
        calls = []

        def flaky_once():
            calls.append(1)
            if len(calls) == 1:
                raise TransientNetworkError("blip")
            return "ok"

        result = call_with_retry(
            flaky_once, RetryPolicy(max_attempts=3, base_delay=0.1,
                                    jitter=0.0),
            clock=clock, context=context,
        )
        assert result == "ok"
        assert clock.slept == pytest.approx(0.1)

    def test_cancellation_between_retries_is_honoured(self):
        from repro.errors import TransientNetworkError
        from repro.resilience import RetryPolicy, SimulatedClock, call_with_retry

        clock = SimulatedClock()
        context = ExecutionContext(clock=clock)

        def flaky_and_cancelling():
            context.cancel()
            raise TransientNetworkError("blip")

        with pytest.raises(ExecutionCancelled):
            call_with_retry(
                flaky_and_cancelling,
                RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0),
                clock=clock, context=context,
            )

    def test_per_call_timeout_never_exceeds_remaining_deadline(self):
        from repro.resilience import SimulatedClock, Timeout

        clock = SimulatedClock()
        context = ExecutionContext(timeout_seconds=3.0, clock=clock)
        clock.advance(2.0)
        assert Timeout(5.0).budget(context) == pytest.approx(1.0)
        assert Timeout(0.5).budget(context) == pytest.approx(0.5)


class TestWorkersConfig:
    def test_workers_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert workers_from_env() == 3
        assert ExecutionContext().workers == 3

    def test_workers_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        assert workers_from_env() is None
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert workers_from_env() is None

    def test_explicit_workers_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert ExecutionContext(workers=5).workers == 5


class TestBackendIntegration:
    def test_kernels_record_into_context(self):
        from repro.gmql.lang import execute
        from tests.engine.test_backends import random_dataset

        context = ExecutionContext()
        execute(
            "R = MAP() DATA DATA; MATERIALIZE R;",
            {"DATA": random_dataset(2)},
            context=context,
        )
        assert context.metrics.counter("operator.MAP.calls") == 1
        labels = [s.label for s in context.tracer.iter_spans()]
        assert any(label.startswith("MAP") for label in labels)
        map_span = next(
            s for s in context.tracer.iter_spans() if s.label.startswith("MAP")
        )
        assert map_span.attributes["output_regions"] > 0
        assert map_span.attributes["input_samples"] > 0
        assert map_span.children  # the SCAN nests under MAP
