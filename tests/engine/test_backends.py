"""Differential tests: every backend must agree with the naive reference.

The naive backend is the semantics oracle; columnar and parallel are run
on the same queries over randomised datasets and compared region-by-region
and metadata-by-metadata.
"""

import random

import pytest

from repro.engine import available_backends, get_backend
from repro.errors import EngineError
from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region
from repro.gmql.lang import execute


def random_dataset(seed: int, n_samples: int = 4, n_regions: int = 60) -> Dataset:
    rng = random.Random(seed)
    schema = RegionSchema.of(("score", FLOAT))
    samples = []
    for sample_id in range(1, n_samples + 1):
        regions = []
        for __ in range(n_regions):
            chrom = f"chr{rng.randint(1, 3)}"
            left = rng.randint(0, 5000)
            width = rng.randint(1, 400)
            regions.append(
                region(chrom, left, left + width, rng.choice("+-*"),
                       round(rng.random() * 10, 3))
            )
        samples.append(
            Sample(
                sample_id,
                regions,
                Metadata(
                    {
                        "cell": rng.choice(["HeLa", "K562", "GM12878"]),
                        "dataType": rng.choice(["ChipSeq", "RnaSeq"]),
                        "replicate": sample_id,
                    }
                ),
            )
        )
    return Dataset("DATA", schema, samples)


def canonical(dataset) -> list:
    """Order-insensitive canonical form of a dataset for comparison."""
    out = []
    for sample in dataset:
        rows = sorted(
            (r.chrom, r.left, r.right, r.strand, r.values) for r in sample.regions
        )
        out.append((tuple(sorted(sample.meta)), tuple(rows)))
    out.sort()
    return out


QUERIES = [
    pytest.param(
        "R = SELECT(dataType == 'ChipSeq'; region: score > 5) DATA;"
        " MATERIALIZE R;",
        id="select",
    ),
    pytest.param(
        "R = MAP() DATA DATA; MATERIALIZE R;",
        id="map-count-self",
    ),
    pytest.param(
        "A = SELECT(cell == 'HeLa') DATA; R = MAP(n AS COUNT) A DATA;"
        " MATERIALIZE R;",
        id="map-after-select",
    ),
    pytest.param(
        "R = COVER(2, ANY) DATA; MATERIALIZE R;",
        id="cover",
    ),
    pytest.param(
        "R = HISTOGRAM(1, ANY) DATA; MATERIALIZE R;",
        id="histogram",
    ),
    pytest.param(
        "R = SUMMIT(1, ANY) DATA; MATERIALIZE R;",
        id="summit",
    ),
    pytest.param(
        "R = FLAT(2, ANY) DATA; MATERIALIZE R;",
        id="flat",
    ),
    pytest.param(
        "A = SELECT(cell == 'HeLa') DATA; B = SELECT(cell == 'K562') DATA;"
        " R = DIFFERENCE() A B; MATERIALIZE R;",
        id="difference",
    ),
    pytest.param(
        "A = SELECT(replicate == 1) DATA; B = SELECT(replicate == 2) DATA;"
        " R = JOIN(DLE(500); output: LEFT) A B; MATERIALIZE R;",
        id="join-dle",
    ),
    pytest.param(
        "A = SELECT(replicate == 1) DATA; B = SELECT(replicate == 2) DATA;"
        " R = JOIN(MD(2), DLE(2000); output: CAT) A B; MATERIALIZE R;",
        id="join-md",
    ),
]


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "naive" in names
        assert "columnar" in names
        assert "parallel" in names
        assert "auto" in names

    def test_unknown_backend(self):
        with pytest.raises(EngineError):
            get_backend("spark")


class TestDifferential:
    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("seed", [1, 7])
    def test_columnar_matches_naive(self, query, seed):
        data = random_dataset(seed)
        reference = execute(query, {"DATA": data}, engine="naive")
        candidate = execute(query, {"DATA": data}, engine="columnar")
        for name in reference:
            assert canonical(candidate[name]) == canonical(reference[name])

    @pytest.mark.parametrize(
        "query",
        [
            QUERIES[1],  # map
            QUERIES[3],  # cover
            QUERIES[7],  # difference
            QUERIES[8],  # join-dle
        ],
    )
    def test_parallel_matches_naive(self, query):
        data = random_dataset(99, n_samples=3, n_regions=40)
        reference = execute(query, {"DATA": data}, engine="naive")
        candidate = execute(query, {"DATA": data}, engine="parallel")
        for name in reference:
            assert canonical(candidate[name]) == canonical(reference[name])


class TestDifferentialProperty:
    """Property-based differential suite: on randomized datasets, every
    backend (including ``auto``'s per-node routing) and the optimized and
    unoptimized plans must all produce the naive reference's results."""

    PROPERTY_QUERIES = [
        "R = SELECT(dataType == 'ChipSeq'; region: score > 2) DATA;"
        " MATERIALIZE R;",
        "A = SELECT(cell == 'HeLa') DATA; R = MAP(n AS COUNT) A DATA;"
        " MATERIALIZE R;",
        "R = COVER(2, ANY) DATA; MATERIALIZE R;",
        "A = SELECT(replicate == 1) DATA; B = SELECT(replicate == 2) DATA;"
        " R = JOIN(DLE(800); output: LEFT) A B; MATERIALIZE R;",
        "A = SELECT(cell == 'HeLa') DATA; B = SELECT(cell == 'K562') DATA;"
        " R = DIFFERENCE() A B; MATERIALIZE R;",
    ]

    @staticmethod
    def _check_all_agree(seed, n_samples, n_regions, query):
        data = random_dataset(seed, n_samples=n_samples, n_regions=n_regions)
        reference = execute(query, {"DATA": data}, engine="naive")
        expected = {
            name: canonical(dataset) for name, dataset in reference.items()
        }
        unoptimized = execute(
            query, {"DATA": data}, engine="naive", optimized=False
        )
        for name in expected:
            assert canonical(unoptimized[name]) == expected[name]
        for engine in ("columnar", "auto"):
            candidate = execute(query, {"DATA": data}, engine=engine)
            for name in expected:
                assert canonical(candidate[name]) == expected[name], (
                    engine, name,
                )

    try:
        from hypothesis import given, settings, strategies as st

        @staticmethod
        @given(
            seed=st.integers(min_value=0, max_value=2**16),
            n_samples=st.integers(min_value=2, max_value=5),
            n_regions=st.integers(min_value=5, max_value=60),
            query=st.sampled_from(PROPERTY_QUERIES),
        )
        @settings(max_examples=12, deadline=None)
        def test_backends_agree(seed, n_samples, n_regions, query):
            TestDifferentialProperty._check_all_agree(
                seed, n_samples, n_regions, query
            )
    except ImportError:  # pragma: no cover - hypothesis ships with the image
        @staticmethod
        @pytest.mark.parametrize("seed", [0, 13, 21_001])
        @pytest.mark.parametrize("query", PROPERTY_QUERIES)
        def test_backends_agree(seed, query):
            TestDifferentialProperty._check_all_agree(seed, 4, 40, query)

    def test_parallel_agrees(self):
        # One process-pool run (kept out of the property loop: worker
        # startup dominates and the kernels are shared across examples).
        query = self.PROPERTY_QUERIES[1]
        data = random_dataset(4242, n_samples=3, n_regions=40)
        reference = execute(query, {"DATA": data}, engine="naive")
        candidate = execute(query, {"DATA": data}, engine="parallel")
        for name in reference:
            assert canonical(candidate[name]) == canonical(reference[name])


class TestParallelWorkersConfig:
    def test_constructor_argument(self):
        from repro.engine.parallel import ParallelBackend

        backend = ParallelBackend(max_workers=3)
        assert backend.max_workers == 3

    def test_env_var_default(self, monkeypatch):
        from repro.engine.parallel import ParallelBackend

        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert ParallelBackend().max_workers == 5

    def test_constructor_beats_env(self, monkeypatch):
        from repro.engine.parallel import ParallelBackend

        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert ParallelBackend(max_workers=2).max_workers == 2

    def test_context_workers_apply_before_pool_creation(self):
        from repro.engine import ExecutionContext
        from repro.engine.parallel import ParallelBackend

        backend = ParallelBackend()
        backend.bind_context(ExecutionContext(workers=3))
        assert backend.max_workers == 3
        # ...but an explicitly configured backend keeps its setting.
        pinned = ParallelBackend(max_workers=2)
        pinned.bind_context(ExecutionContext(workers=6))
        assert pinned.max_workers == 2

    def test_pool_reused_across_kernels(self):
        from repro.engine.parallel import ParallelBackend
        from repro.gmql.lang import compile_program, Interpreter

        backend = ParallelBackend(max_workers=2)
        try:
            data = random_dataset(77, n_samples=2, n_regions=20)
            program = compile_program(
                "R = MAP() DATA DATA; MATERIALIZE R;"
            )
            Interpreter(backend, {"DATA": data}).run_program(program)
            first_pool = backend._pool
            assert first_pool is not None
            Interpreter(backend, {"DATA": data}).run_program(
                compile_program("R = COVER(1, ANY) DATA; MATERIALIZE R;")
            )
            assert backend._pool is first_pool
        finally:
            backend.close()


class TestEngineStats:
    def test_stats_recorded(self):
        from repro.engine.naive import NaiveBackend
        from repro.gmql.lang import compile_program, Interpreter

        data = random_dataset(3)
        backend = NaiveBackend()
        compiled = compile_program("R = MAP() DATA DATA; MATERIALIZE R;")
        Interpreter(backend, {"DATA": data}).run_program(compiled)
        assert backend.stats.operator_calls.get("MAP") == 1
        assert backend.stats.total_seconds() > 0
        assert backend.stats.samples_produced > 0

    def test_reset(self):
        from repro.engine.naive import NaiveBackend

        backend = NaiveBackend()
        backend.reset_stats()
        assert backend.stats.total_seconds() == 0

    def test_per_node_records(self):
        from repro.engine.naive import NaiveBackend
        from repro.gmql.lang import compile_program, Interpreter

        data = random_dataset(3)
        backend = NaiveBackend()
        compiled = compile_program(
            "A = SELECT(cell == 'HeLa') DATA; R = MAP() A DATA;"
            " MATERIALIZE R;"
        )
        Interpreter(backend, {"DATA": data}).run_program(compiled)
        operators = [stat.operator for stat in backend.stats.records]
        assert operators == ["SELECT", "MAP"]
        for stat in backend.stats.records:
            assert stat.backend == "naive"
            assert stat.label  # plan-node label captured from the span
            assert stat.seconds >= 0
        assert backend.stats.by_backend().keys() == {"naive"}


class TestCustomBackend:
    def test_register_and_use_custom_backend(self):
        from repro.engine import NaiveBackend, get_backend, register_backend

        class TracingBackend(NaiveBackend):
            name = "tracing"

            def run_select(self, plan, child, semijoin_data):
                result = super().run_select(plan, child, semijoin_data)
                self.trace = getattr(self, "trace", 0) + 1
                return result

        register_backend("tracing", TracingBackend)
        data = random_dataset(5)
        from repro.gmql.lang import compile_program, Interpreter

        backend = get_backend("tracing")
        compiled = compile_program(
            "A = SELECT(cell == 'HeLa') DATA; MATERIALIZE A;"
        )
        Interpreter(backend, {"DATA": data}).run_program(compiled)
        assert backend.trace == 1
