"""Differential tests for the single-process ``sharded`` backend.

Sharded execution merges chromosome-group partials with the same
``merge_partials`` the federated client uses, so the bar here is strict:
results must be **byte-identical** to the columnar backend (same row
order, same metadata), not merely set-equal.
"""

import random

import pytest

from repro.engine.auto import choose_backend
from repro.engine.context import ExecutionContext
from repro.engine.sharded import ShardedBackend, shard_groups_from_env
from repro.gdm import (
    Dataset,
    FLOAT,
    Metadata,
    RegionSchema,
    Sample,
    chromosome_sort_key,
    region,
)
from repro.gmql.lang import execute


def clustered_dataset(seed: int, n_samples: int = 4, n_regions: int = 60) -> Dataset:
    """A randomised dataset whose regions are in genome order.

    Sharding requires chromosome-clustered operands; unsorted regions
    exercise only the delegation path (see ``test_unclustered_input...``).
    """
    rng = random.Random(seed)
    schema = RegionSchema.of(("score", FLOAT))
    samples = []
    for sample_id in range(1, n_samples + 1):
        regions = []
        for __ in range(n_regions):
            chrom = f"chr{rng.randint(1, 4)}"
            left = rng.randint(0, 5000)
            width = rng.randint(1, 400)
            regions.append(
                region(chrom, left, left + width, rng.choice("+-*"),
                       round(rng.random() * 10, 3))
            )
        regions.sort(
            key=lambda r: (chromosome_sort_key(r.chrom), r.left, r.right)
        )
        samples.append(
            Sample(
                sample_id,
                regions,
                Metadata(
                    {
                        "cell": rng.choice(["HeLa", "K562"]),
                        "replicate": sample_id,
                    }
                ),
            )
        )
    return Dataset("DATA", schema, samples)


def unclustered_dataset(seed: int) -> Dataset:
    ds = clustered_dataset(seed)
    samples = []
    for sample in ds:
        regions = list(sample.regions)
        random.Random(seed).shuffle(regions)
        samples.append(Sample(sample.id, regions, sample.meta))
    return Dataset("DATA", ds.schema, samples)


def exact(dataset) -> tuple:
    """Byte-order-sensitive form: row sequence plus sorted metadata."""
    return (
        list(dataset.region_rows()),
        sorted(dataset.metadata_triples()),
    )


QUERIES = [
    pytest.param(
        "R = MAP(n AS COUNT, s AS SUM(score)) DATA DATA; MATERIALIZE R;",
        id="map",
    ),
    pytest.param(
        "A = SELECT(replicate == 1) DATA; B = SELECT(replicate == 2) DATA;"
        " R = JOIN(MD(1); output: LEFT) A B; MATERIALIZE R;",
        id="join-md1",
    ),
    pytest.param(
        "R = COVER(2, ANY) DATA; MATERIALIZE R;",
        id="cover",
    ),
    pytest.param(
        "R = HISTOGRAM(1, ANY) DATA; MATERIALIZE R;",
        id="histogram",
    ),
    pytest.param(
        "A = SELECT(cell == 'HeLa') DATA; B = SELECT(cell == 'K562') DATA;"
        " R = DIFFERENCE() A B; MATERIALIZE R;",
        id="difference",
    ),
    pytest.param(
        "A = SELECT(replicate == 1) DATA; B = SELECT(replicate == 2) DATA;"
        " R = UNION() A B; MATERIALIZE R;",
        id="union",
    ),
]


class TestShardedIdentity:
    @pytest.mark.parametrize("program", QUERIES)
    @pytest.mark.parametrize("seed", [11, 12])
    def test_byte_identical_to_columnar(self, program, seed):
        sources = {"DATA": clustered_dataset(seed)}
        expected = execute(program, dict(sources), engine="columnar")
        actual = execute(program, dict(sources), engine="sharded")
        assert exact(actual["R"]) == exact(expected["R"])

    def test_sharded_path_actually_shards(self):
        context = ExecutionContext()
        execute(
            "R = MAP() DATA DATA; MATERIALIZE R;",
            {"DATA": clustered_dataset(13)},
            engine="sharded",
            context=context,
        )
        assert context.metrics.counter("federation.shards_placed") >= 2

    def test_explicit_group_count_caps_partials(self):
        context = ExecutionContext()
        backend = ShardedBackend(groups=2).bind_context(context)
        try:
            sources = {"DATA": clustered_dataset(14)}
            from repro.gmql.lang import Interpreter, compile_program, optimize

            Interpreter(backend, dict(sources), context=context).run_program(
                optimize(compile_program("R = COVER(1, ANY) DATA; MATERIALIZE R;"))
            )
        finally:
            backend.close()
        assert context.metrics.counter("federation.shards_placed") == 2


class TestDelegation:
    def test_unclustered_input_delegates_and_stays_correct(self):
        context = ExecutionContext()
        sources = {"DATA": unclustered_dataset(21)}
        expected = execute(
            "R = MAP() DATA DATA; MATERIALIZE R;", dict(sources),
            engine="columnar",
        )
        actual = execute(
            "R = MAP() DATA DATA; MATERIALIZE R;", dict(sources),
            engine="sharded", context=context,
        )
        assert exact(actual["R"]) == exact(expected["R"])
        # Merge order would not be reproducible: no shards were placed.
        assert context.metrics.counter("federation.shards_placed") == 0

    def test_cross_chromosome_operators_delegate(self):
        # EXTEND aggregates across chromosomes (fsum-of-fsums != fsum).
        context = ExecutionContext()
        sources = {"DATA": clustered_dataset(22)}
        program = "R = EXTEND(n AS COUNT, s AS SUM(score)) DATA; MATERIALIZE R;"
        expected = execute(program, dict(sources), engine="columnar")
        actual = execute(
            program, dict(sources), engine="sharded", context=context
        )
        assert exact(actual["R"]) == exact(expected["R"])
        assert context.metrics.counter("federation.shards_placed") == 0

    def test_single_group_request_runs_unsharded(self):
        context = ExecutionContext()
        backend = ShardedBackend(groups=1).bind_context(context)
        try:
            from repro.gmql.lang import Interpreter, compile_program, optimize

            Interpreter(
                backend, {"DATA": clustered_dataset(23)}, context=context
            ).run_program(
                optimize(compile_program("R = COVER(1, ANY) DATA; MATERIALIZE R;"))
            )
        finally:
            backend.close()
        assert context.metrics.counter("federation.shards_placed") == 0


class TestGroupsFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_GROUPS", raising=False)
        assert shard_groups_from_env() is None
        assert shard_groups_from_env(default=3) == 3

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_GROUPS", " 4 ")
        assert shard_groups_from_env() == 4

    @pytest.mark.parametrize("raw", ["zero", "0", "-2", "2.5"])
    def test_broken_values_never_change_strategy(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_GROUPS", raw)
        assert shard_groups_from_env() is None
        assert shard_groups_from_env(default=2) == 2


class TestAutoRouting:
    AVAILABLE = ("naive", "columnar", "parallel", "sharded", "source")

    def test_auto_routes_heavy_operators_when_groups_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_GROUPS", "4")
        name, reason = choose_backend("map", 10_000_000, self.AVAILABLE)
        assert name == "sharded"
        assert "REPRO_SHARD_GROUPS=4" in reason

    def test_auto_ignores_sharded_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_GROUPS", raising=False)
        name, __ = choose_backend("map", 10_000_000, self.AVAILABLE)
        assert name != "sharded"
