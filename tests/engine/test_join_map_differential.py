"""Cross-engine differential suite for JOIN and MAP.

The naive backend is the semantics oracle.  Every genometric condition
shape (DLE -- including the touching ``DLE(0)`` and overlap-only
``DLE(-1)`` forms -- DGE, MD(k), UP, DOWN and combinations) and every
registered MAP aggregate must produce *identical* results on the
columnar, auto and parallel backends: same regions, same attribute
values, same metadata, same order.

Inputs are hypothesis-generated with the usual nasties baked into the
strategies: strandless regions under strand-aware UP/DOWN, zero-length
regions, coincident points, and intervals straddling the BIN=64
zone-map grid.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.context import ExecutionContext
from repro.gdm import (
    Dataset,
    FLOAT,
    GenomicRegion,
    INT,
    Metadata,
    RegionSchema,
    Sample,
)
from repro.gmql.aggregates import available_aggregates
from repro.gmql.lang import execute

BIN = 64

#: (condition text, output mode) -- every clause shape the grammar
#: admits, spread across the four emit modes.
JOIN_CONDITIONS = (
    ("DLE(40)", "LEFT"),
    ("DLE(0)", "RIGHT"),
    ("DLE(-1)", "INT"),
    ("DGE(5)", "LEFT"),
    ("DLE(100), DGE(3)", "CAT"),
    ("MD(1)", "LEFT"),
    ("MD(3)", "CAT"),
    ("MD(2), DLE(80)", "LEFT"),
    ("DLE(60), UP", "LEFT"),
    ("MD(1), DOWN", "LEFT"),
    ("UP", "LEFT"),
    ("DOWN", "RIGHT"),
)


def _join_program() -> str:
    lines = [
        "A = SELECT(side == 'left') DATA;",
        "B = SELECT(side == 'right') DATA;",
    ]
    for i, (condition, output) in enumerate(JOIN_CONDITIONS):
        lines.append(
            f"J{i} = JOIN({condition}; output: {output}) A B;"
            f" MATERIALIZE J{i};"
        )
    return "\n".join(lines)


def _map_program() -> str:
    lines = [
        "A = SELECT(side == 'left') DATA;",
        "B = SELECT(side == 'right') DATA;",
        "M_BARE = MAP() A B; MATERIALIZE M_BARE;",
    ]
    for name in available_aggregates():
        if name == "COUNT":
            call = "n AS COUNT"
        else:
            call = f"s AS {name}(score), h AS {name}(hits)"
        lines.append(
            f"M_{name} = MAP({call}) A B; MATERIALIZE M_{name};"
        )
    return "\n".join(lines)


JOIN_PROGRAM = _join_program()
MAP_PROGRAM = _map_program()

#: Positions biased toward the BIN=64 zone-map grid so straddling and
#: edge-exact intervals occur constantly; widths include zero-length.
_POSITIONS = st.one_of(
    st.integers(0, 6 * BIN),
    st.sampled_from([0, BIN - 1, BIN, BIN + 1, 2 * BIN, 3 * BIN]),
)
_WIDTHS = st.one_of(
    st.integers(0, 3 * BIN),
    st.sampled_from([0, BIN, 2 * BIN]),
)
_INTERVALS = st.tuples(
    st.sampled_from(["chr1", "chr2"]),
    _POSITIONS,
    _WIDTHS,
    st.sampled_from(["+", "-", "*"]),
    st.integers(-20, 20),
)


def make_dataset(left_spec, right_spec) -> Dataset:
    schema = RegionSchema.of(("score", FLOAT), ("hits", INT))
    samples = []
    for sample_id, (side, spec) in enumerate(
        (("left", left_spec), ("right", right_spec)), start=1
    ):
        regions = [
            GenomicRegion(
                chrom, pos, pos + width, strand, (value / 4, value)
            )
            for chrom, pos, width, strand, value in spec
        ]
        samples.append(Sample(sample_id, regions, Metadata({"side": side})))
    return Dataset("DATA", schema, samples, validate=False)


def run(program, dataset, engine, use_shm=True):
    context = ExecutionContext(
        bin_size=BIN,
        result_cache=False,
        config={"use_store": True, "use_shm": use_shm},
    )
    return execute(program, {"DATA": dataset}, engine=engine,
                   context=context)


def canonical(results) -> dict:
    """Order-preserving deep form of every materialised dataset."""
    out = {}
    for name, dataset in results.items():
        out[name] = [
            (tuple(sorted(sample.meta)),
             [(r.chrom, r.left, r.right, r.strand, r.values)
              for r in sample.regions])
            for sample in dataset
        ]
    return out


_SPECS = st.lists(_INTERVALS, min_size=1, max_size=14)


class TestJoinDifferential:
    @given(_SPECS, _SPECS)
    @settings(max_examples=25, deadline=None)
    def test_columnar_and_auto_match_naive(self, left_spec, right_spec):
        dataset = make_dataset(left_spec, right_spec)
        expected = canonical(run(JOIN_PROGRAM, dataset, "naive"))
        assert canonical(run(JOIN_PROGRAM, dataset, "columnar")) == expected
        assert canonical(run(JOIN_PROGRAM, dataset, "auto")) == expected


class TestMapDifferential:
    @given(_SPECS, _SPECS)
    @settings(max_examples=25, deadline=None)
    def test_columnar_and_auto_match_naive(self, left_spec, right_spec):
        dataset = make_dataset(left_spec, right_spec)
        expected = canonical(run(MAP_PROGRAM, dataset, "naive"))
        assert canonical(run(MAP_PROGRAM, dataset, "columnar")) == expected
        assert canonical(run(MAP_PROGRAM, dataset, "auto")) == expected


def _nasty_dataset(seed: int = 11, n: int = 120) -> Dataset:
    """Deterministic dataset packed with the edge cases above, big
    enough that the parallel backend ships real morsels."""
    rng = random.Random(seed)
    left, right = [], []
    for spec in (left, right):
        for __ in range(n):
            chrom = rng.choice(["chr1", "chr2"])
            pos = rng.choice(
                [rng.randint(0, 6 * BIN), 0, BIN - 1, BIN, BIN + 1, 2 * BIN]
            )
            width = rng.choice([0, 1, BIN, 2 * BIN, rng.randint(0, 3 * BIN)])
            strand = rng.choice(["+", "-", "*"])
            spec.append((chrom, pos, width, strand, rng.randint(-20, 20)))
        # Coincident zero-length points, repeated so MD ties are real.
        spec.extend(
            ("chr1", 2 * BIN, 0, "*", 5) for __ in range(3)
        )
    return make_dataset(left, right)


class TestParallelDifferential:
    """The parallel backend forks a pool per run, so it gets one fixed
    adversarial dataset instead of a hypothesis loop."""

    def test_join_matches_naive(self):
        dataset = _nasty_dataset()
        expected = canonical(run(JOIN_PROGRAM, dataset, "naive"))
        assert canonical(run(JOIN_PROGRAM, dataset, "parallel")) == expected
        assert canonical(
            run(JOIN_PROGRAM, dataset, "parallel", use_shm=False)
        ) == expected

    def test_map_matches_naive(self):
        dataset = _nasty_dataset(seed=12)
        expected = canonical(run(MAP_PROGRAM, dataset, "naive"))
        assert canonical(run(MAP_PROGRAM, dataset, "parallel")) == expected
        assert canonical(
            run(MAP_PROGRAM, dataset, "parallel", use_shm=False)
        ) == expected
