"""Direct tests of the columnar kernels (vectorised paths + fallbacks)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.columnar import (
    _vectorise_predicate,
    coverage_segments_from_blocks,
)
from repro.gdm import FLOAT, GenomicRegion, RegionSchema, STR
from repro.gmql.predicates import RegionCompare
from repro.intervals import coverage_profile
from repro.store import SampleBlocks, count_overlaps_blocks

BIN = 64


def make(spec, chrom="chr1"):
    return [GenomicRegion(chrom, l, l + w) for l, w in spec]


def blocks(regions):
    """Ephemeral store blocks, the array source all kernels share now."""
    return SampleBlocks(None, regions, BIN)


class TestVectorisedCounting:
    def test_empty_references(self):
        counts, __ = count_overlaps_blocks(blocks([]), blocks([]))
        assert counts.tolist() == []

    def test_no_probes_on_chromosome(self):
        refs = make([(0, 10)])
        counts, __ = count_overlaps_blocks(
            blocks(refs), blocks(make([(0, 10)], "chr2"))
        )
        assert counts.tolist() == [0]

    @given(
        st.lists(st.tuples(st.integers(0, 400), st.integers(0, 60)), max_size=30),
        st.lists(st.tuples(st.integers(0, 400), st.integers(0, 60)), max_size=30),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, ref_spec, probe_spec):
        refs = make(ref_spec)
        probes = make(probe_spec)
        expected = [sum(1 for p in probes if r.overlaps(p)) for r in refs]
        got, __ = count_overlaps_blocks(blocks(refs), blocks(probes))
        assert got.tolist() == expected


class TestVectorisedCoverage:
    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 40)),
                    max_size=25))
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_profile(self, spec):
        regions = make(spec)
        scalar = [
            (s.chrom, s.left, s.right, s.depth)
            for s in coverage_profile(regions)
        ]
        vectorised = [
            (s.chrom, s.left, s.right, s.depth)
            for s in coverage_segments_from_blocks([blocks(regions)])
        ]
        assert vectorised == scalar


class TestPredicateVectorisation:
    SCHEMA = RegionSchema.of(("score", FLOAT), ("name", STR))

    def regions(self):
        return [
            GenomicRegion("chr1", 0, 10, "+", (1.0, "a")),
            GenomicRegion("chr2", 5, 25, "-", (None, "b")),
            GenomicRegion("chr1", 50, 90, "*", (3.5, None)),
        ]

    def test_fixed_attribute_mask(self):
        mask = _vectorise_predicate(
            RegionCompare("chrom", "==", "chr1"), self.SCHEMA, self.regions()
        )
        assert mask.tolist() == [True, False, True]

    def test_numeric_attribute_mask_with_missing(self):
        mask = _vectorise_predicate(
            RegionCompare("score", ">", 2), self.SCHEMA, self.regions()
        )
        # None became nan: comparison is False, like the scalar path.
        assert mask.tolist() == [False, False, True]

    def test_string_attribute_mask(self):
        mask = _vectorise_predicate(
            RegionCompare("name", "==", "b"), self.SCHEMA, self.regions()
        )
        assert mask.tolist() == [False, True, False]

    def test_composite_predicate(self):
        predicate = RegionCompare("chrom", "==", "chr1") & RegionCompare(
            "left", "<", 40
        )
        mask = _vectorise_predicate(predicate, self.SCHEMA, self.regions())
        assert mask.tolist() == [True, False, False]

    def test_negation(self):
        mask = _vectorise_predicate(
            ~RegionCompare("strand", "==", "+"), self.SCHEMA, self.regions()
        )
        assert mask.tolist() == [False, True, True]

    def test_unknown_attribute_falls_back(self):
        mask = _vectorise_predicate(
            RegionCompare("missing", "==", 1), self.SCHEMA, self.regions()
        )
        assert mask is None  # caller uses the scalar path

    def test_non_numeric_target_on_numeric_column_falls_back(self):
        mask = _vectorise_predicate(
            RegionCompare("score", ">", "abc"), self.SCHEMA, self.regions()
        )
        assert mask is None

    def test_empty_region_list(self):
        mask = _vectorise_predicate(
            RegionCompare("chrom", "==", "chr1"), self.SCHEMA, []
        )
        assert mask.tolist() == []
