"""Tests for BED parsing/serialisation and the custom-schema dialect."""

import pytest

from repro.errors import FormatError
from repro.formats import BedFormat, CustomBedFormat, schema_from_header, schema_to_header
from repro.gdm import FLOAT, INT, RegionSchema, STR, region


class TestBedParse:
    def test_bed6_line(self):
        fmt = BedFormat()
        regions = fmt.parse("chr1\t100\t200\tpeak1\t13.5\t+\n")
        assert len(regions) == 1
        r = regions[0]
        assert (r.chrom, r.left, r.right, r.strand) == ("chr1", 100, 200, "+")
        assert r.values == ("peak1", 13.5)

    def test_bed3_degrades(self):
        r = BedFormat().parse("chr1\t0\t10\n")[0]
        assert r.values == (None, None)
        assert r.strand == "*"

    def test_dot_strand_maps_to_star(self):
        r = BedFormat().parse("chr1\t0\t10\tx\t1\t.\n")[0]
        assert r.strand == "*"

    def test_comments_and_track_lines_skipped(self):
        text = "# comment\ntrack name=peaks\nbrowser position chr1\nchr1\t0\t10\n"
        assert len(BedFormat().parse(text)) == 1

    def test_blank_lines_skipped(self):
        assert len(BedFormat().parse("\n\nchr1\t0\t10\n\n")) == 1

    def test_too_few_fields_raises_with_line_number(self):
        with pytest.raises(FormatError, match="line 1"):
            BedFormat().parse("chr1\t100\n")

    def test_bad_coordinate_raises(self):
        with pytest.raises(FormatError):
            BedFormat().parse("chr1\tabc\t200\n")

    def test_round_trip(self):
        fmt = BedFormat()
        original = "chr1\t100\t200\tpeak1\t13.5\t+\n"
        regions = fmt.parse(original)
        assert fmt.serialize(regions) == original

    def test_missing_name_and_score_round_trip(self):
        fmt = BedFormat()
        text = fmt.serialize([region("chr2", 5, 9)])
        assert text == "chr2\t5\t9\t.\t.\t.\n"
        assert fmt.parse(text)[0].values == (None, None)


class TestCustomBed:
    @pytest.fixture()
    def fmt(self):
        return CustomBedFormat(RegionSchema.of(("p_value", FLOAT), ("count", INT)))

    def test_parse_with_schema(self, fmt):
        r = fmt.parse("chr1\t0\t10\t+\t1e-5\t42\n")[0]
        assert r.values == (1e-5, 42)

    def test_missing_values(self, fmt):
        r = fmt.parse("chr1\t0\t10\t+\t.\t7\n")[0]
        assert r.values == (None, 7)

    def test_short_line_pads(self, fmt):
        r = fmt.parse("chr1\t0\t10\t-\n")[0]
        assert r.values == ()
        assert r.strand == "-"

    def test_excess_fields_rejected(self, fmt):
        with pytest.raises(FormatError):
            fmt.parse("chr1\t0\t10\t+\t1\t2\t3\n")

    def test_round_trip(self, fmt):
        text = "chr1\t0\t10\t+\t1e-05\t42\n"
        regions = fmt.parse(text)
        reparsed = fmt.parse(fmt.serialize(regions))
        assert reparsed == regions


class TestSchemaHeader:
    def test_round_trip(self):
        schema = RegionSchema.of(("a", INT), ("b", FLOAT), ("c", STR))
        assert schema_from_header(schema_to_header(schema)) == schema

    def test_empty_schema(self):
        assert len(schema_from_header("")) == 0
        assert schema_to_header(RegionSchema.empty()) == ""

    def test_bad_token_rejected(self):
        with pytest.raises(FormatError):
            schema_from_header("no-type-marker")
