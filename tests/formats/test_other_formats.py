"""Tests for narrowPeak/broadPeak, GTF, VCF and SAM dialects."""

import pytest

from repro.errors import FormatError
from repro.formats import (
    BroadPeakFormat,
    GtfFormat,
    NarrowPeakFormat,
    SamFormat,
    VcfFormat,
)


class TestNarrowPeak:
    LINE = "chr1\t9356548\t9356648\tpeak1\t0\t.\t182\t5.0945\t-1\t50\n"

    def test_parse(self):
        r = NarrowPeakFormat().parse(self.LINE)[0]
        assert (r.left, r.right) == (9356548, 9356648)
        name, score, signal, p_value, q_value, peak = r.values
        assert signal == 182.0
        assert p_value == 5.0945
        assert q_value is None  # -1 means unavailable
        assert peak == 50

    def test_round_trip(self):
        fmt = NarrowPeakFormat()
        regions = fmt.parse(self.LINE)
        assert fmt.parse(fmt.serialize(regions)) == regions

    def test_schema_has_p_value(self):
        assert "p_value" in NarrowPeakFormat().schema()

    def test_too_few_fields(self):
        with pytest.raises(FormatError):
            NarrowPeakFormat().parse("chr1\t0\t10\n")


class TestBroadPeak:
    LINE = "chr2\t100\t900\t.\t0\t+\t3.1\t2.5\t1.9\n"

    def test_parse(self):
        r = BroadPeakFormat().parse(self.LINE)[0]
        assert r.strand == "+"
        assert r.values[2:] == (3.1, 2.5, 1.9)

    def test_round_trip(self):
        fmt = BroadPeakFormat()
        regions = fmt.parse(self.LINE)
        assert fmt.parse(fmt.serialize(regions)) == regions


class TestGtf:
    LINE = (
        'chr3\tRefSeq\texon\t101\t200\t0.5\t-\t0\t'
        'gene_id "Fbln2"; transcript_id "Fbln2.1";\n'
    )

    def test_coordinates_converted_to_half_open(self):
        r = GtfFormat().parse(self.LINE)[0]
        assert (r.left, r.right) == (100, 200)

    def test_attributes_extracted(self):
        r = GtfFormat().parse(self.LINE)[0]
        source, feature, score, frame, gene_id, transcript_id = r.values
        assert source == "RefSeq"
        assert feature == "exon"
        assert gene_id == "Fbln2"
        assert transcript_id == "Fbln2.1"

    def test_round_trip_preserves_coordinates(self):
        fmt = GtfFormat()
        regions = fmt.parse(self.LINE)
        assert fmt.parse(fmt.serialize(regions)) == regions

    def test_zero_start_rejected(self):
        with pytest.raises(FormatError):
            GtfFormat().parse("chr1\t.\t.\t0\t10\t.\t+\t.\t.\n")


class TestVcf:
    LINE = "chr1\t1001\trs123\tAT\tA\t50\tPASS\tDP=100\n"

    def test_parse_deletion_span(self):
        r = VcfFormat().parse(self.LINE)[0]
        assert (r.left, r.right) == (1000, 1002)  # ref allele AT spans 2

    def test_snv_is_width_one(self):
        r = VcfFormat().parse("chr1\t5\t.\tA\tG\t.\t.\t.\n")[0]
        assert r.length == 1

    def test_header_lines_skipped(self):
        text = "##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n" + self.LINE
        assert len(VcfFormat().parse(text)) == 1

    def test_round_trip(self):
        fmt = VcfFormat()
        regions = fmt.parse(self.LINE)
        assert fmt.parse(fmt.serialize(regions)) == regions


class TestSam:
    HEADER = "@HD\tVN:1.6\n@SQ\tSN:chr1\tLN:10000\n"
    MAPPED = "read1\t0\tchr1\t101\t60\t50M\t*\t0\t0\t" + "A" * 50 + "\t*\n"
    REVERSE = "read2\t16\tchr1\t201\t60\t50M\t*\t0\t0\t" + "C" * 50 + "\t*\n"
    UNMAPPED = "read3\t4\t*\t0\t0\t*\t*\t0\t0\tGGGG\t*\n"

    def test_mapped_read_coordinates(self):
        r = SamFormat().parse(self.HEADER + self.MAPPED)[0]
        assert (r.left, r.right, r.strand) == (100, 150, "+")

    def test_reverse_flag_sets_strand(self):
        r = SamFormat().parse(self.REVERSE)[0]
        assert r.strand == "-"

    def test_unmapped_reads_dropped(self):
        regions = SamFormat().parse(self.HEADER + self.MAPPED + self.UNMAPPED)
        assert len(regions) == 1

    def test_round_trip(self):
        fmt = SamFormat()
        regions = fmt.parse(self.MAPPED)
        assert fmt.parse(fmt.serialize(regions)) == regions
