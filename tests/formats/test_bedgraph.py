"""Tests for the bedGraph browser-track format."""

import pytest

from repro.formats import (
    BedGraphFormat,
    coverage_to_bedgraph,
    dataset_to_bedgraph,
    format_for_path,
)
from repro.gdm import Dataset, GenomicRegion, INT, RegionSchema, Sample, region


class TestBedGraphFormat:
    def test_parse_and_serialize(self):
        fmt = BedGraphFormat()
        text = "chr1\t0\t100\t3.5\n"
        regions = fmt.parse(text)
        assert regions[0].values == (3.5,)
        assert fmt.serialize(regions) == text

    def test_registered_by_extension(self):
        assert format_for_path("signal.bedGraph").name == "bedgraph"
        assert format_for_path("signal.bdg").name == "bedgraph"

    def test_track_lines_skipped_on_parse(self):
        fmt = BedGraphFormat()
        text = 'track type=bedGraph name="x"\nchr1\t0\t10\t1\n'
        assert len(fmt.parse(text)) == 1


class TestCoverageExport:
    def test_coverage_to_bedgraph_depths(self):
        regions = [region("chr1", 0, 10), region("chr1", 5, 15)]
        document = coverage_to_bedgraph(regions, track_name="depth")
        lines = document.strip().split("\n")
        assert lines[0].startswith("track type=bedGraph")
        assert lines[1:] == [
            "chr1\t0\t5\t1",
            "chr1\t5\t10\t2",
            "chr1\t10\t15\t1",
        ]

    def test_round_trip_through_parser(self):
        regions = [region("chr1", 0, 10), region("chr1", 5, 15)]
        document = coverage_to_bedgraph(regions)
        parsed = BedGraphFormat().parse(document)
        assert [r.values[0] for r in parsed] == [1.0, 2.0, 1.0]


class TestDatasetExport:
    def test_cover_result_to_track(self):
        dataset = Dataset(
            "COVERED",
            RegionSchema.of(("acc_index", INT)),
            [
                Sample(1, [
                    GenomicRegion("chr1", 20, 30, "*", (3,)),
                    GenomicRegion("chr1", 0, 10, "*", (2,)),
                ])
            ],
        )
        document = dataset_to_bedgraph(dataset, "acc_index")
        lines = document.strip().split("\n")
        assert 'name="COVERED"' in lines[0]
        # Regions come out in genome order.
        assert lines[1] == "chr1\t0\t10\t2"
        assert lines[2] == "chr1\t20\t30\t3"

    def test_unknown_attribute_raises(self):
        dataset = Dataset("D", RegionSchema.empty(), [Sample(1)])
        with pytest.raises(Exception):
            dataset_to_bedgraph(dataset, "nope")
