"""Tests for .meta files, dataset directories and the format registry."""

import pytest

from repro.errors import FormatError
from repro.formats import (
    available_formats,
    dataset_from_documents,
    format_for_path,
    format_named,
    parse_meta,
    read_dataset,
    register,
    serialize_meta,
    write_dataset,
)
from repro.formats.base import RegionFormat
from repro.gdm import Dataset, FLOAT, Metadata, RegionSchema, Sample, region


class TestMetaFiles:
    def test_parse_pairs(self):
        meta = parse_meta("cell\tHeLa\nantibody\tCTCF\n")
        assert meta.first("cell") == "HeLa"
        assert meta.first("antibody") == "CTCF"

    def test_values_are_typed(self):
        meta = parse_meta("replicate\t2\nfrip\t0.25\nname\tx\n")
        assert meta.first("replicate") == 2
        assert meta.first("frip") == 0.25
        assert meta.first("name") == "x"

    def test_multivalued_attributes(self):
        meta = parse_meta("treatment\ta\ntreatment\tb\n")
        assert meta.values("treatment") == ("a", "b")

    def test_missing_tab_rejected(self):
        with pytest.raises(FormatError, match="line 1"):
            parse_meta("no-separator\n")

    def test_round_trip(self):
        meta = Metadata({"cell": "HeLa", "replicate": 2})
        assert parse_meta(serialize_meta(meta)) == meta


class TestDatasetDirectory:
    @pytest.fixture()
    def dataset(self):
        schema = RegionSchema.of(("p_value", FLOAT))
        return Dataset(
            "PEAKS",
            schema,
            [
                Sample(1, [region("chr1", 0, 10, "+", 1e-5)],
                       Metadata({"cell": "HeLa"})),
                Sample(2, [region("chr2", 5, 25, "*", 2e-3)],
                       Metadata({"cell": "K562", "sex": "female"})),
            ],
        )

    def test_write_read_round_trip(self, dataset, tmp_path):
        write_dataset(dataset, str(tmp_path / "PEAKS"))
        loaded = read_dataset(str(tmp_path / "PEAKS"))
        assert loaded.schema == dataset.schema
        assert len(loaded) == 2
        assert loaded[1].regions == dataset[1].regions
        assert loaded[2].meta.first("sex") == "female"

    def test_read_missing_schema_raises(self, tmp_path):
        with pytest.raises(FormatError):
            read_dataset(str(tmp_path))

    def test_dataset_name_defaults_to_directory(self, dataset, tmp_path):
        write_dataset(dataset, str(tmp_path / "MYDATA"))
        assert read_dataset(str(tmp_path / "MYDATA")).name == "MYDATA"


class TestRegistry:
    def test_builtins_present(self):
        names = available_formats()
        for expected in ("bed", "narrowpeak", "broadpeak", "gtf", "vcf", "sam"):
            assert expected in names

    def test_lookup_by_name_case_insensitive(self):
        assert format_named("BED").name == "bed"

    def test_unknown_name_raises(self):
        with pytest.raises(FormatError):
            format_named("bigwig")

    def test_lookup_by_path(self):
        assert format_for_path("/data/sample.narrowPeak").name == "narrowpeak"
        assert format_for_path("x.bed").name == "bed"

    def test_unknown_extension_raises(self):
        with pytest.raises(FormatError):
            format_for_path("file.xyz")

    def test_custom_format_registration(self):
        class TsvFormat(RegionFormat):
            name = "tsv-test"
            extensions = (".tsvtest",)

        register(TsvFormat())
        assert format_named("tsv-test").name == "tsv-test"
        assert format_for_path("a.tsvtest").name == "tsv-test"

    def test_dataset_from_documents(self):
        docs = [
            ("chr1\t0\t10\tp\t5\t+\n", {"cell": "HeLa"}),
            ("chr1\t20\t30\tq\t7\t-\n", {"cell": "K562"}),
        ]
        ds = dataset_from_documents("PEAKS", docs, "bed")
        assert len(ds) == 2
        assert ds[1].meta.first("cell") == "HeLa"
        assert ds.schema == format_named("bed").schema()
