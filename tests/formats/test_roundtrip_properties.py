"""Property-based round-trip tests for the format layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import CustomBedFormat, schema_from_header, schema_to_header
from repro.formats.meta import parse_meta, serialize_meta
from repro.gdm import (
    BOOL,
    FLOAT,
    GenomicRegion,
    INT,
    Metadata,
    RegionSchema,
    STR,
)

_TYPES = (INT, FLOAT, STR, BOOL)

_names = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda n: n not in ("id", "chrom", "left", "right", "strand")
)


@st.composite
def schemas(draw):
    count = draw(st.integers(0, 4))
    names = draw(
        st.lists(_names, min_size=count, max_size=count, unique=True)
    )
    return RegionSchema.of(
        *((name, draw(st.sampled_from(_TYPES))) for name in names)
    )


def value_for(attr_type, draw_value):
    if attr_type is INT:
        return draw_value(st.one_of(st.none(), st.integers(-10**6, 10**6)))
    if attr_type is FLOAT:
        return draw_value(
            st.one_of(
                st.none(),
                st.floats(-1e6, 1e6, allow_nan=False).map(
                    lambda f: float(repr(f))
                ),
            )
        )
    if attr_type is BOOL:
        return draw_value(st.one_of(st.none(), st.booleans()))
    return draw_value(
        st.one_of(
            st.none(),
            st.from_regex(r"[A-Za-z0-9_.:+-]{1,12}", fullmatch=True).filter(
                lambda s: s not in (".", "NULL", "null", "NA")
            ),
        )
    )


@st.composite
def regions_with_schema(draw):
    schema = draw(schemas())
    count = draw(st.integers(0, 15))
    regions = []
    for __ in range(count):
        left = draw(st.integers(0, 10**7))
        width = draw(st.integers(0, 10**4))
        strand = draw(st.sampled_from(["+", "-", "*"]))
        values = tuple(
            value_for(definition.type, draw) for definition in schema
        )
        regions.append(
            GenomicRegion(f"chr{draw(st.integers(1, 5))}", left, left + width,
                          strand, values)
        )
    return schema, regions


class TestCustomBedRoundTrip:
    @given(regions_with_schema())
    @settings(max_examples=150, deadline=None)
    def test_serialize_parse_identity(self, payload):
        schema, regions = payload
        fmt = CustomBedFormat(schema)
        parsed = fmt.parse(fmt.serialize(regions))
        assert parsed == regions

    @given(schemas())
    @settings(max_examples=100, deadline=None)
    def test_schema_header_round_trip(self, schema):
        assert schema_from_header(schema_to_header(schema)) == schema


class TestMetaRoundTrip:
    @given(
        st.dictionaries(
            st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,10}", fullmatch=True),
            st.one_of(
                st.integers(-10**6, 10**6),
                st.from_regex(r"[A-Za-z0-9_ .:-]{1,20}", fullmatch=True).filter(
                    lambda s: s.strip() == s and s  # no leading/trailing blanks
                ),
            ),
            max_size=6,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_meta_round_trip_is_idempotent(self, mapping):
        # The .meta file format is untyped, so values that *look* numeric
        # normalise on first parse ("00" -> 0).  The guarantee is
        # idempotence: after one normalisation, serialisation round-trips
        # exactly, and no pairs are lost at any step.
        meta = Metadata(mapping)
        first = parse_meta(serialize_meta(meta))
        second = parse_meta(serialize_meta(first))
        assert second == first
        assert len(first) == len(meta)
