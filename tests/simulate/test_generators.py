"""Tests for the synthetic data generators (layout, ENCODE, CTCF, cancer)."""

import pytest

from repro.gmql import MetaCompare, select
from repro.simulate import (
    CancerScenario,
    CtcfScenario,
    EncodeRepository,
    GenomeLayout,
    distance_baseline_pairs,
    extract_candidate_pairs,
    fragility_analysis,
    generator,
    region_sample,
    workload_dataset,
)


class TestRng:
    def test_deterministic(self):
        assert generator(1, "x").integers(0, 100) == generator(1, "x").integers(0, 100)

    def test_scoped_streams_differ(self):
        a = generator(1, "a").integers(0, 10**9)
        b = generator(1, "b").integers(0, 10**9)
        assert a != b


class TestGenomeLayout:
    @pytest.fixture(scope="class")
    def layout(self):
        return GenomeLayout.generate(seed=5, n_genes=60, n_enhancers=40)

    def test_gene_count(self, layout):
        assert len(layout.genes) == 60

    def test_genes_within_chromosomes(self, layout):
        for gene in layout.genes:
            assert 0 <= gene.left < gene.right <= layout.chromosome_sizes[gene.chrom]

    def test_genes_disjoint_per_chromosome(self, layout):
        by_chrom = {}
        for gene in layout.genes:
            by_chrom.setdefault(gene.chrom, []).append(gene)
        for genes in by_chrom.values():
            genes.sort(key=lambda g: g.left)
            for a, b in zip(genes, genes[1:]):
                assert a.right <= b.left

    def test_enhancers_intergenic(self, layout):
        for enhancer in layout.enhancers:
            for gene in layout.genes:
                if gene.chrom == enhancer.chrom:
                    assert not enhancer.overlaps(gene.body_region())

    def test_tss_strand_aware(self, layout):
        for gene in layout.genes:
            expected = gene.right if gene.strand == "-" else gene.left
            assert gene.tss == expected

    def test_annotations_dataset_selectable(self, layout):
        annotations = layout.annotations_dataset()
        proms = select(annotations, MetaCompare("annType", "==", "promoter"))
        assert len(proms) == 1
        assert len(proms[1]) == len(layout.genes)

    def test_deterministic(self):
        a = GenomeLayout.generate(seed=9, n_genes=10)
        b = GenomeLayout.generate(seed=9, n_genes=10)
        assert [g.left for g in a.genes] == [g.left for g in b.genes]


class TestEncodeRepository:
    @pytest.fixture(scope="class")
    def repo(self):
        return EncodeRepository.generate(seed=3, n_samples=20,
                                         peaks_per_sample_mean=120)

    def test_sample_count(self, repo):
        assert len(repo.encode) == 20

    def test_metadata_vocabulary(self, repo):
        for sample in repo.encode:
            assert sample.meta.first("dataType") in (
                "ChipSeq", "DnaseSeq", "RnaSeq"
            )
            assert sample.meta.first("format") == "BED"

    def test_chipseq_samples_have_antibody(self, repo):
        for sample in repo.encode:
            if sample.meta.first("dataType") == "ChipSeq":
                assert "antibody" in sample.meta
            else:
                assert "antibody" not in sample.meta

    def test_peak_counts_near_mean(self, repo):
        mean = repo.encode.region_count() / len(repo.encode)
        assert 60 < mean < 220

    def test_promoter_enrichment(self, repo):
        """Peaks must be denser at promoters than background (that is the
        planted signal MAP should see)."""
        from repro.intervals import GenomeIndex

        promoters = repo.layout.promoter_regions()
        index = GenomeIndex(promoters)
        total = at_promoters = 0
        for sample in repo.encode:
            if sample.meta.first("dataType") != "ChipSeq":
                continue
            for region in sample.regions:
                total += 1
                if next(iter(index.overlapping(region)), None) is not None:
                    at_promoters += 1
        promoter_bases = sum(p.length for p in promoters)
        genome_bases = sum(repo.layout.chromosome_sizes.values())
        background_fraction = promoter_bases / genome_bases
        assert at_promoters / total > 3 * background_fraction

    def test_paper_scale_factor_fields(self, repo):
        scale = repo.paper_scale_factor()
        assert 0 < scale["sample_ratio"] < 1
        assert scale["paper_peaks"] == 83_899_526
        assert scale["paper_promoters"] == 131_780

    def test_deterministic(self):
        a = EncodeRepository.generate(seed=4, n_samples=3,
                                      peaks_per_sample_mean=50)
        b = EncodeRepository.generate(seed=4, n_samples=3,
                                      peaks_per_sample_mean=50)
        assert a.encode.region_count() == b.encode.region_count()


class TestCtcfScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return CtcfScenario.generate(seed=11, n_loops=40)

    def test_true_pairs_planted(self, scenario):
        assert len(scenario.true_pairs) > 10

    def test_marks_has_three_samples(self, scenario):
        antibodies = {s.meta.first("antibody") for s in scenario.marks}
        assert antibodies == {"H3K27ac", "H3K4me1", "H3K4me3"}

    def test_loops_enclose_planted_pairs(self, scenario):
        genes_by_name = {g.name: g for g in scenario.layout.genes}
        enhancers_by_name = {
            e.values[0]: e for e in scenario.layout.enhancers
        }
        loops = [r for s in scenario.loops for r in s.regions]
        for gene_name, enhancer_name in scenario.true_pairs:
            promoter = genes_by_name[gene_name].promoter_region()
            enhancer = enhancers_by_name[enhancer_name]
            assert any(
                loop.contains(promoter) and loop.contains(enhancer)
                for loop in loops
            )

    def test_query_beats_distance_baseline_precision(self, scenario):
        candidates = extract_candidate_pairs(scenario)
        baseline = distance_baseline_pairs(scenario)
        truth = scenario.true_pairs

        def precision(pairs):
            return len(pairs & truth) / len(pairs) if pairs else 0.0

        assert candidates, "loop-aware query found nothing"
        assert precision(candidates) > precision(baseline)

    def test_query_recall_reasonable(self, scenario):
        candidates = extract_candidate_pairs(scenario)
        recall = len(candidates & scenario.true_pairs) / len(scenario.true_pairs)
        assert recall > 0.5


class TestCancerScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return CancerScenario.generate(seed=13)

    def test_expression_has_two_conditions(self, scenario):
        conditions = {s.meta.first("condition") for s in scenario.expression}
        assert conditions == {"control", "induced"}

    def test_breakpoints_are_points(self, scenario):
        for region in scenario.breakpoints[1].regions:
            assert region.length == 1

    def test_analysis_recovers_disregulated_genes(self, scenario):
        analysis = fragility_analysis(scenario)
        called = analysis["called_disregulated"]
        truth = scenario.disregulated
        assert called, "no genes called"
        precision = len(called & truth) / len(called)
        recall = len(called & truth) / len(truth)
        assert precision > 0.8
        assert recall > 0.8

    def test_mutation_enrichment_at_fragile_genes(self, scenario):
        analysis = fragility_analysis(scenario)
        assert analysis["mutation_enrichment"] > 3.0


class TestWorkload:
    def test_region_sample_sorted_and_sized(self):
        regions = region_sample(1, 200)
        assert len(regions) == 200
        keys = [r.sort_key() for r in regions]
        assert keys == sorted(keys)

    def test_clustered_is_denser(self):
        uniform = region_sample(2, 500, clustered=False)
        clustered = region_sample(2, 500, clustered=True)

        def max_bin_count(regions):
            bins = {}
            for r in regions:
                bins[(r.chrom, r.left // 50_000)] = (
                    bins.get((r.chrom, r.left // 50_000), 0) + 1
                )
            return max(bins.values())

        assert max_bin_count(clustered) > max_bin_count(uniform)

    def test_workload_dataset(self):
        ds = workload_dataset(3, n_samples=4, regions_per_sample=50)
        assert len(ds) == 4
        assert ds.region_count() == 200
