"""Unit + property tests for the interval tree and genome index."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdm import GenomicRegion
from repro.intervals import GenomeIndex, IntervalTree


def make(intervals, chrom="chr1"):
    return [GenomicRegion(chrom, l, r) for l, r in intervals]


class TestIntervalTree:
    def test_empty_tree(self):
        tree = IntervalTree([])
        assert len(tree) == 0
        assert list(tree.query(0, 100)) == []

    def test_single_hit(self):
        tree = IntervalTree(make([(0, 10)]))
        assert [r.left for r in tree.query(5, 6)] == [0]

    def test_touching_is_not_overlap(self):
        tree = IntervalTree(make([(0, 10)]))
        assert list(tree.query(10, 20)) == []

    def test_query_spanning_many(self):
        tree = IntervalTree(make([(i * 10, i * 10 + 5) for i in range(100)]))
        hits = list(tree.query(0, 1000))
        assert len(hits) == 100

    def test_nested_intervals(self):
        tree = IntervalTree(make([(0, 100), (10, 20), (15, 18)]))
        assert len(list(tree.query(16, 17))) == 3

    def test_duplicates_returned_each(self):
        tree = IntervalTree(make([(0, 10), (0, 10)]))
        assert len(list(tree.query(0, 5))) == 2

    def test_stab(self):
        tree = IntervalTree(make([(0, 10), (5, 15)]))
        assert len(list(tree.stab(7))) == 2
        assert len(list(tree.stab(12))) == 1

    def test_zero_length_stored_region_point_convention(self):
        tree = IntervalTree(make([(5, 5)]))
        # Strictly containing query finds the point feature...
        assert len(list(tree.query(0, 10))) == 1
        # ...but a query starting at the point does not.
        assert list(tree.query(5, 10)) == []

    def test_zero_length_query_strict_containment(self):
        # A zero-length query follows GenomicRegion.overlaps: it matches
        # regions strictly containing its position (the sweep kernel and
        # the columnar counting identity agree on this convention).
        tree = IntervalTree(make([(0, 10)]))
        assert [(r.left, r.right) for r in tree.query(5, 5)] == [(0, 10)]
        assert list(tree.query(0, 0)) == []
        assert list(tree.query(10, 10)) == []

    def test_inverted_query_returns_nothing(self):
        tree = IntervalTree(make([(0, 10)]))
        assert list(tree.query(7, 5)) == []


@st.composite
def interval_lists(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    intervals = []
    for _ in range(n):
        left = draw(st.integers(min_value=0, max_value=500))
        width = draw(st.integers(min_value=0, max_value=80))
        intervals.append((left, left + width))
    return intervals


class TestTreeProperties:
    @given(interval_lists(), st.integers(0, 500), st.integers(0, 100))
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force(self, intervals, qleft, width):
        qright = qleft + width
        regions = make(intervals)
        tree = IntervalTree(regions)
        expected = sorted(
            (r.left, r.right)
            for r in regions
            if r.left < qright and qleft < r.right
        )
        got = sorted((r.left, r.right) for r in tree.query(qleft, qright))
        assert got == expected

    @given(interval_lists())
    @settings(max_examples=100, deadline=None)
    def test_full_span_query_returns_all_overlapping(self, intervals):
        regions = make(intervals)
        tree = IntervalTree(regions)
        # The half-open formula: a stored region matches [0, 10000) unless
        # it is a zero-length point at position 0.
        expected = [r for r in regions if r.left < 10_000 and 0 < r.right]
        assert len(list(tree.query(0, 10_000))) == len(expected)


class TestGenomeIndex:
    def test_routes_by_chromosome(self):
        index = GenomeIndex(
            make([(0, 10)], "chr1") + make([(0, 10)], "chr2")
        )
        assert len(index) == 2
        assert index.chromosomes() == ("chr1", "chr2")
        assert len(list(index.query("chr1", 0, 5))) == 1
        assert len(list(index.query("chr3", 0, 5))) == 0

    def test_overlapping_region_api(self):
        index = GenomeIndex(make([(0, 10)], "chr1"))
        probe = GenomicRegion("chr1", 5, 6)
        assert len(list(index.overlapping(probe))) == 1
        assert list(index.overlapping(GenomicRegion("chr2", 5, 6))) == []
