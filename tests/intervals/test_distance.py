"""Unit + property tests for genometric distances and the nearest index."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdm import GenomicRegion
from repro.intervals import NearestIndex, is_downstream, is_upstream


def make(intervals, chrom="chr1", strand="*"):
    return [GenomicRegion(chrom, l, r, strand) for l, r in intervals]


class TestUpDownStream:
    def test_upstream_of_forward_anchor(self):
        anchor = GenomicRegion("chr1", 100, 200, "+")
        assert is_upstream(anchor, GenomicRegion("chr1", 0, 50))
        assert not is_upstream(anchor, GenomicRegion("chr1", 250, 300))

    def test_upstream_of_reverse_anchor(self):
        anchor = GenomicRegion("chr1", 100, 200, "-")
        assert is_upstream(anchor, GenomicRegion("chr1", 250, 300))
        assert not is_upstream(anchor, GenomicRegion("chr1", 0, 50))

    def test_downstream_mirrors_upstream(self):
        anchor = GenomicRegion("chr1", 100, 200, "+")
        assert is_downstream(anchor, GenomicRegion("chr1", 250, 300))
        anchor_rev = GenomicRegion("chr1", 100, 200, "-")
        assert is_downstream(anchor_rev, GenomicRegion("chr1", 0, 50))

    def test_overlapping_is_neither(self):
        anchor = GenomicRegion("chr1", 100, 200, "+")
        inside = GenomicRegion("chr1", 150, 160)
        assert not is_upstream(anchor, inside)
        assert not is_downstream(anchor, inside)

    def test_cross_chromosome_is_neither(self):
        anchor = GenomicRegion("chr1", 100, 200, "+")
        other = GenomicRegion("chr2", 0, 50)
        assert not is_upstream(anchor, other)
        assert not is_downstream(anchor, other)


class TestNearestIndex:
    def test_within_includes_overlaps(self):
        index = NearestIndex(make([(90, 110), (300, 310)]))
        anchor = GenomicRegion("chr1", 100, 200)
        hits = dict(
            ((r.left, r.right), d) for r, d in index.within(anchor, 50)
        )
        assert (90, 110) in hits and hits[(90, 110)] < 0
        assert (300, 310) not in hits

    def test_within_distance_boundary_inclusive(self):
        index = NearestIndex(make([(210, 220)]))
        anchor = GenomicRegion("chr1", 100, 200)
        assert len(list(index.within(anchor, 10))) == 1
        assert len(list(index.within(anchor, 9))) == 0

    def test_within_empty_chromosome(self):
        index = NearestIndex(make([(0, 10)], "chr2"))
        assert list(index.within(GenomicRegion("chr1", 0, 10), 100)) == []

    def test_nearest_orders_by_distance(self):
        index = NearestIndex(make([(500, 510), (220, 230), (900, 910)]))
        anchor = GenomicRegion("chr1", 100, 200)
        nearest = index.nearest(anchor, k=2)
        assert [(r.left, r.right) for r, _ in nearest] == [(220, 230), (500, 510)]
        assert [d for _, d in nearest] == [20, 300]

    def test_nearest_k_larger_than_population(self):
        index = NearestIndex(make([(0, 10)]))
        assert len(index.nearest(GenomicRegion("chr1", 100, 200), k=5)) == 1

    def test_nearest_upstream_respects_strand(self):
        index = NearestIndex(make([(0, 50), (300, 350)]))
        forward = GenomicRegion("chr1", 100, 200, "+")
        reverse = GenomicRegion("chr1", 100, 200, "-")
        up_fwd = index.nearest_upstream(forward, k=1)
        up_rev = index.nearest_upstream(reverse, k=1)
        assert up_fwd[0][0].left == 0
        assert up_rev[0][0].left == 300

    def test_nearest_downstream(self):
        index = NearestIndex(make([(0, 50), (300, 350)]))
        anchor = GenomicRegion("chr1", 100, 200, "+")
        assert index.nearest_downstream(anchor, k=1)[0][0].left == 300

    @given(
        st.lists(st.tuples(st.integers(0, 500), st.integers(1, 40)), max_size=30),
        st.integers(0, 500),
        st.integers(1, 40),
        st.integers(0, 120),
    )
    @settings(max_examples=150, deadline=None)
    def test_within_matches_brute_force(self, spec, aleft, awidth, max_d):
        regions = make([(l, l + w) for l, w in spec])
        anchor = GenomicRegion("chr1", aleft, aleft + awidth)
        index = NearestIndex(regions)
        expected = sorted(
            (r.left, r.right)
            for r in regions
            if anchor.distance(r) is not None and anchor.distance(r) <= max_d
        )
        got = sorted((r.left, r.right) for r, _ in index.within(anchor, max_d))
        assert got == expected

    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(1, 40)),
            min_size=1,
            max_size=30,
        ),
        st.integers(0, 500),
    )
    @settings(max_examples=100, deadline=None)
    def test_nearest_is_global_minimum(self, spec, aleft):
        regions = make([(l, l + w) for l, w in spec])
        anchor = GenomicRegion("chr1", aleft, aleft + 10)
        index = NearestIndex(regions)
        (nearest_region, nearest_distance), *_ = index.nearest(anchor, k=1)
        assert nearest_distance == min(anchor.distance(r) for r in regions)
