"""Unit tests for genomic binning (parallel-engine partitioning)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdm import GenomicRegion
from repro.intervals import Binning, bin_span, binned_count_overlaps


class TestBinSpan:
    def test_within_one_bin(self):
        assert list(bin_span(0, 50, 100)) == [0]

    def test_spanning_regions_touch_every_bin(self):
        assert list(bin_span(50, 250, 100)) == [0, 1, 2]

    def test_boundary_exclusive(self):
        # [0, 100) ends exactly at the bin edge: only bin 0.
        assert list(bin_span(0, 100, 100)) == [0]

    def test_zero_length_occupies_point_bin(self):
        assert list(bin_span(150, 150, 100)) == [1]

    def test_bad_bin_size(self):
        with pytest.raises(ValueError):
            list(bin_span(0, 10, 0))


class TestBinning:
    def test_partition_replicates_spanners(self):
        binning = Binning(bin_size=100)
        region = GenomicRegion("chr1", 50, 250)
        partitions = binning.partition([region])
        assert set(partitions) == {("chr1", 0), ("chr1", 1), ("chr1", 2)}

    def test_partition_groups_by_chromosome(self):
        binning = Binning(bin_size=100)
        partitions = binning.partition(
            [GenomicRegion("chr1", 0, 10), GenomicRegion("chr2", 0, 10)]
        )
        assert set(partitions) == {("chr1", 0), ("chr2", 0)}

    def test_owns_pair_unique_reporting_bin(self):
        binning = Binning(bin_size=100)
        a = GenomicRegion("chr1", 50, 250)
        b = GenomicRegion("chr1", 150, 350)
        owning = [
            key
            for key in [("chr1", i) for i in range(5)]
            if binning.owns_pair(key, a, b)
        ]
        # The pair's anchor is max(50, 150) = 150 -> bin 1 only.
        assert owning == [("chr1", 1)]

    def test_owns_pair_rejects_wrong_chromosome(self):
        binning = Binning(bin_size=100)
        a = GenomicRegion("chr1", 0, 10)
        b = GenomicRegion("chr1", 5, 15)
        assert not binning.owns_pair(("chr2", 0), a, b)

    def test_every_pair_owned_exactly_once(self):
        binning = Binning(bin_size=64)
        regions_a = [GenomicRegion("chr1", i * 30, i * 30 + 100) for i in range(10)]
        regions_b = [GenomicRegion("chr1", i * 45, i * 45 + 80) for i in range(10)]
        partitions_a = binning.partition(regions_a)
        partitions_b = binning.partition(regions_b)
        seen = []
        for key in set(partitions_a) & set(partitions_b):
            for a in partitions_a[key]:
                for b in partitions_b[key]:
                    if a.overlaps(b) and binning.owns_pair(key, a, b):
                        seen.append((a.left, b.left))
        expected = [
            (a.left, b.left)
            for a in regions_a
            for b in regions_b
            if a.overlaps(b)
        ]
        assert sorted(seen) == sorted(expected)

    def test_invalid_bin_size_rejected(self):
        with pytest.raises(ValueError):
            Binning(bin_size=-5)


class TestOwnsPairDisjoint:
    """Distal-join pairs: the reporting bin is the gap's left flank."""

    def test_disjoint_pair_anchors_at_left_flank(self):
        binning = Binning(bin_size=100)
        a = GenomicRegion("chr1", 20, 60)
        b = GenomicRegion("chr1", 250, 320)
        # Documented contract: the leftmost position of the gap's left
        # flank (position 20 -> bin 0), not max(a.left, b.left) = 250.
        owning = [
            index
            for index in range(5)
            if binning.owns_pair(("chr1", index), a, b)
        ]
        assert owning == [0]
        # Argument order must not change the reporting bin.
        assert binning.owns_pair(("chr1", 0), b, a)

    def test_bin_spanning_disjoint_pair_regression(self):
        # Regression: with the old max-left anchor this pair reported in
        # bin 2 -- a bin the left flank never touches -- so a
        # partition-local distal join holding the flank's bins only
        # would drop the pair entirely.
        binning = Binning(bin_size=100)
        flank = GenomicRegion("chr1", 120, 180)       # bin 1 only
        distal = GenomicRegion("chr1", 230, 460)      # spans bins 2..4
        assert binning.owns_pair(("chr1", 1), flank, distal)
        assert not binning.owns_pair(("chr1", 2), flank, distal)
        flank_bins = {key[1] for key in binning.bins_for(flank)}
        owner = next(
            index
            for index in range(6)
            if binning.owns_pair(("chr1", index), flank, distal)
        )
        assert owner in flank_bins

    def test_touching_pair_is_disjoint(self):
        # [0, 100) and [100, 200) share no position: gap of zero, the
        # left flank anchors the pair in bin 0.
        binning = Binning(bin_size=100)
        a = GenomicRegion("chr1", 0, 100)
        b = GenomicRegion("chr1", 100, 200)
        assert binning.owns_pair(("chr1", 0), a, b)
        assert not binning.owns_pair(("chr1", 1), a, b)

    def test_zero_length_region_pairs(self):
        binning = Binning(bin_size=100)
        point = GenomicRegion("chr1", 150, 150)
        other = GenomicRegion("chr1", 320, 360)
        # The zero-length point ends first: it is the left flank.
        owning = [
            index
            for index in range(5)
            if binning.owns_pair(("chr1", index), point, other)
        ]
        assert owning == [1]
        # A point inside a region takes the overlap path.
        inside = GenomicRegion("chr1", 100, 400)
        owning = [
            index
            for index in range(5)
            if binning.owns_pair(("chr1", index), point, inside)
        ]
        assert owning == [1]

    @given(
        st.tuples(st.integers(0, 900), st.integers(0, 90)),
        st.tuples(st.integers(0, 900), st.integers(0, 90)),
        st.sampled_from([16, 64, 100]),
    )
    @settings(max_examples=150, deadline=None)
    def test_every_pair_has_exactly_one_owner(self, spec_a, spec_b, bin_size):
        binning = Binning(bin_size=bin_size)
        a = GenomicRegion("chr1", spec_a[0], spec_a[0] + spec_a[1])
        b = GenomicRegion("chr1", spec_b[0], spec_b[0] + spec_b[1])
        owners = [
            index
            for index in range(0, 1000 // bin_size + 2)
            if binning.owns_pair(("chr1", index), a, b)
        ]
        assert len(owners) == 1
        # The owner is always a bin at least one of the pair occupies --
        # for disjoint pairs, specifically one of the left flank's bins.
        occupied = {key[1] for key in binning.bins_for(a)} | {
            key[1] for key in binning.bins_for(b)
        }
        assert owners[0] in occupied


class TestBinnedCounting:
    def test_simple_counts(self):
        references = [GenomicRegion("chr1", 0, 100)]
        probes = [GenomicRegion("chr1", 50, 60), GenomicRegion("chr1", 200, 210)]
        assert binned_count_overlaps(references, probes, bin_size=64) == [1]

    def test_spanning_pair_counted_once(self):
        # Both regions span several 10-position bins; the reporting-bin
        # rule must count the pair exactly once.
        references = [GenomicRegion("chr1", 5, 45)]
        probes = [GenomicRegion("chr1", 0, 50)]
        assert binned_count_overlaps(references, probes, bin_size=10) == [1]

    @given(
        st.lists(st.tuples(st.integers(0, 400), st.integers(1, 80)), max_size=25),
        st.lists(st.tuples(st.integers(0, 400), st.integers(1, 80)), max_size=25),
        st.sampled_from([16, 64, 100, 1000]),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, ref_spec, probe_spec, bin_size):
        references = [GenomicRegion("chr1", l, l + w) for l, w in ref_spec]
        probes = [GenomicRegion("chr1", l, l + w) for l, w in probe_spec]
        expected = [
            sum(1 for p in probes if r.overlaps(p)) for r in references
        ]
        assert binned_count_overlaps(references, probes, bin_size) == expected
