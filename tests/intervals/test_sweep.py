"""Unit + property tests for sweep joins and merging."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdm import GenomicRegion
from repro.intervals import (
    merge_touching,
    sweep_count_overlaps,
    sweep_overlap_join,
)


def make(intervals, chrom="chr1", strand="*"):
    return [GenomicRegion(chrom, l, r, strand) for l, r in intervals]


class TestSweepJoin:
    def test_simple_pair(self):
        pairs = list(sweep_overlap_join(make([(0, 10)]), make([(5, 7)])))
        assert len(pairs) == 1

    def test_no_cross_chromosome_pairs(self):
        pairs = list(
            sweep_overlap_join(make([(0, 10)], "chr1"), make([(0, 10)], "chr2"))
        )
        assert pairs == []

    def test_unsorted_inputs_accepted(self):
        lefts = make([(50, 60), (0, 10)])
        rights = make([(55, 58), (5, 8)])
        pairs = list(sweep_overlap_join(lefts, rights))
        assert len(pairs) == 2

    def test_touching_not_joined(self):
        assert list(sweep_overlap_join(make([(0, 10)]), make([(10, 20)]))) == []

    def test_many_to_many(self):
        lefts = make([(0, 100), (50, 150)])
        rights = make([(40, 60), (90, 110)])
        pairs = list(sweep_overlap_join(lefts, rights))
        assert len(pairs) == 4

    @given(
        st.lists(st.tuples(st.integers(0, 300), st.integers(1, 50)), max_size=40),
        st.lists(st.tuples(st.integers(0, 300), st.integers(1, 50)), max_size=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, left_spec, right_spec):
        lefts = make([(l, l + w) for l, w in left_spec])
        rights = make([(l, l + w) for l, w in right_spec])
        expected = sorted(
            (a.left, a.right, b.left, b.right)
            for a in lefts
            for b in rights
            if a.overlaps(b)
        )
        got = sorted(
            (a.left, a.right, b.left, b.right)
            for a, b in sweep_overlap_join(lefts, rights)
        )
        assert got == expected


class TestSweepCount:
    def test_counts_aligned_with_input_order(self):
        refs = make([(100, 200), (0, 50)])
        probes = make([(10, 20), (30, 40), (150, 160)])
        assert sweep_count_overlaps(refs, probes) == [1, 2]

    def test_zero_counts_for_untouched(self):
        refs = make([(0, 10)])
        assert sweep_count_overlaps(refs, make([(20, 30)])) == [0]

    def test_duplicate_reference_objects_counted_separately(self):
        shared = GenomicRegion("chr1", 0, 10)
        counts = sweep_count_overlaps([shared, shared], make([(5, 6)]))
        assert counts == [1, 1]

    @given(
        st.lists(st.tuples(st.integers(0, 200), st.integers(1, 30)), max_size=30),
        st.lists(st.tuples(st.integers(0, 200), st.integers(1, 30)), max_size=30),
    )
    @settings(max_examples=150, deadline=None)
    def test_counts_match_brute_force(self, ref_spec, probe_spec):
        refs = make([(l, l + w) for l, w in ref_spec])
        probes = make([(l, l + w) for l, w in probe_spec])
        expected = [sum(1 for p in probes if r.overlaps(p)) for r in refs]
        assert sweep_count_overlaps(refs, probes) == expected


class TestMergeTouching:
    def test_disjoint_kept(self):
        merged = merge_touching(make([(0, 10), (20, 30)]))
        assert [(r.left, r.right) for r in merged] == [(0, 10), (20, 30)]

    def test_overlapping_merged(self):
        merged = merge_touching(make([(0, 10), (5, 15)]))
        assert [(r.left, r.right) for r in merged] == [(0, 15)]

    def test_touching_merged_with_zero_gap(self):
        merged = merge_touching(make([(0, 10), (10, 20)]))
        assert [(r.left, r.right) for r in merged] == [(0, 20)]

    def test_gap_parameter_bridges(self):
        merged = merge_touching(make([(0, 10), (14, 20)]), gap=5)
        assert [(r.left, r.right) for r in merged] == [(0, 20)]

    def test_strand_conflict_becomes_unstranded(self):
        regions = make([(0, 10)], strand="+") + make([(5, 15)], strand="-")
        merged = merge_touching(regions)
        assert merged[0].strand == "*"

    def test_strand_agreement_preserved(self):
        merged = merge_touching(make([(0, 10), (5, 15)], strand="-"))
        assert merged[0].strand == "-"

    def test_chromosomes_independent(self):
        regions = make([(0, 10)], "chr1") + make([(5, 15)], "chr2")
        assert len(merge_touching(regions)) == 2

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 30)), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_merged_regions_are_disjoint_and_cover_same_positions(self, spec):
        regions = make([(l, l + w) for l, w in spec])
        merged = merge_touching(regions)
        # Disjoint and sorted.
        for a, b in zip(merged, merged[1:]):
            if a.chrom == b.chrom:
                assert a.right < b.left or a.right == b.left - 0  # no overlap
                assert a.right <= b.left
        # Same covered position set.
        def positions(rs):
            covered = set()
            for r in rs:
                covered.update(range(r.left, r.right))
            return covered

        assert positions(regions) == positions(merged)
