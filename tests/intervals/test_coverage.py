"""Unit + property tests for coverage accumulation (the COVER kernel)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdm import GenomicRegion
from repro.intervals import (
    AccumulationBound,
    cover_intervals,
    coverage_profile,
    flat_intervals,
    histogram_intervals,
    summit_intervals,
)


def make(intervals, chrom="chr1"):
    return [GenomicRegion(chrom, l, r) for l, r in intervals]


def brute_depth(regions, chrom, position):
    return sum(
        1 for r in regions if r.chrom == chrom and r.left <= position < r.right
    )


class TestCoverageProfile:
    def test_single_region(self):
        segs = list(coverage_profile(make([(0, 10)])))
        assert [(s.left, s.right, s.depth) for s in segs] == [(0, 10, 1)]

    def test_overlap_creates_step(self):
        segs = list(coverage_profile(make([(0, 10), (5, 15)])))
        assert [(s.left, s.right, s.depth) for s in segs] == [
            (0, 5, 1),
            (5, 10, 2),
            (10, 15, 1),
        ]

    def test_gap_breaks_profile(self):
        segs = list(coverage_profile(make([(0, 5), (10, 15)])))
        assert len(segs) == 2

    def test_zero_length_regions_ignored(self):
        assert list(coverage_profile(make([(5, 5)]))) == []

    def test_chromosomes_in_natural_order(self):
        regions = make([(0, 5)], "chr10") + make([(0, 5)], "chr2")
        segs = list(coverage_profile(regions))
        assert [s.chrom for s in segs] == ["chr2", "chr10"]

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(1, 30)), max_size=25))
    @settings(max_examples=150, deadline=None)
    def test_profile_matches_pointwise_depth(self, spec):
        regions = make([(l, l + w) for l, w in spec])
        segments = list(coverage_profile(regions))
        # Every position inside a segment has exactly the segment's depth.
        for seg in segments:
            for position in (seg.left, (seg.left + seg.right) // 2, seg.right - 1):
                assert brute_depth(regions, seg.chrom, position) == seg.depth
        # Positions not covered by any segment have depth zero.
        covered = set()
        for seg in segments:
            covered.update(range(seg.left, seg.right))
        for position in range(0, 131):
            if position not in covered:
                assert brute_depth(regions, "chr1", position) == 0


class TestCoverIntervals:
    def test_min2_keeps_only_replicated(self):
        regions = make([(0, 10), (5, 15), (20, 30)])
        covers = list(cover_intervals(regions, 2, 10))
        assert [(c[0], c[1], c[2]) for c in covers] == [("chr1", 5, 10)]

    def test_min1_merges_connected_runs(self):
        regions = make([(0, 10), (5, 15)])
        covers = list(cover_intervals(regions, 1, 10))
        assert [(c[1], c[2]) for c in covers] == [(0, 15)]

    def test_max_acc_splits(self):
        # Depth profile: 1 (0-5), 2 (5-10), 1 (10-15); maxAcc=1 keeps the flanks.
        regions = make([(0, 10), (5, 15)])
        covers = list(cover_intervals(regions, 1, 1))
        assert [(c[1], c[2]) for c in covers] == [(0, 5), (10, 15)]

    def test_max_depth_reported(self):
        regions = make([(0, 10), (5, 15), (7, 9)])
        covers = list(cover_intervals(regions, 1, 10))
        assert covers[0][3] == 3

    def test_min_acc_clipped_to_one(self):
        covers = list(cover_intervals(make([(0, 10)]), 0, 10))
        assert len(covers) == 1


class TestVariants:
    def test_histogram_emits_constant_depth_segments(self):
        regions = make([(0, 10), (5, 15)])
        hist = list(histogram_intervals(regions, 1, 10))
        assert [(h[1], h[2], h[3]) for h in hist] == [
            (0, 5, 1),
            (5, 10, 2),
            (10, 15, 1),
        ]

    def test_summit_finds_peak(self):
        regions = make([(0, 30), (10, 20)])
        summits = list(summit_intervals(regions, 1, 10))
        assert [(s[1], s[2], s[3]) for s in summits] == [(10, 20, 2)]

    def test_summit_plateau_reported_once(self):
        regions = make([(0, 10), (0, 10)])
        summits = list(summit_intervals(regions, 1, 10))
        assert [(s[1], s[2], s[3]) for s in summits] == [(0, 10, 2)]

    def test_flat_extends_to_contributing_regions(self):
        # Cover(2) of these is [5,10); FLAT extends to the union of both
        # contributing regions: [0, 15).
        regions = make([(0, 10), (5, 15)])
        flats = list(flat_intervals(regions, 2, 10))
        assert [(f[1], f[2]) for f in flats] == [(0, 15)]

    def test_flat_empty_when_no_cover(self):
        assert list(flat_intervals(make([(0, 10)]), 2, 10)) == []


class TestAccumulationBound:
    def test_exact(self):
        assert AccumulationBound.exact(3).resolve(10, is_lower=True) == 3

    def test_any_lower_is_one(self):
        assert AccumulationBound.any().resolve(10, is_lower=True) == 1

    def test_any_upper_is_huge(self):
        assert AccumulationBound.any().resolve(10, is_lower=False) > 10**9

    def test_all_resolves_to_sample_count(self):
        assert AccumulationBound.all().resolve(7, is_lower=True) == 7

    def test_all_arithmetic(self):
        # (ALL + 1) / 2 with ALL=7 -> ceil(8/2) = 4
        bound = AccumulationBound.all(offset=1, scale=0.5)
        assert bound.resolve(7, is_lower=True) == 4

    def test_bad_kind_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            AccumulationBound("WEIRD")
