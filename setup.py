"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so modern
PEP 660 editable installs cannot build; this shim lets
``pip install -e . --no-build-isolation`` (or plain ``pip install -e .``
with network access) fall back to ``setup.py develop``.  All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
