"""E7 (Section 4.2): engine comparison on three genomic queries.

The paper's ref [10] compared Flink and Spark "on three genomic queries
inspired by GMQL"; our analog compares the naive record-at-a-time engine,
the columnar numpy engine, the binned process-pool engine, and the
cost-routed ``auto`` engine on three GMQL queries of the same families:
a MAP count, a COVER over replicates, and a genometric JOIN.  One
logical plan, four backends -- only the operator encodings (and, for
``auto``, the per-node routing) differ.
"""

import pytest

from repro.gmql.lang import execute
from repro.simulate import workload_dataset

QUERIES = {
    "map-count": """
        REF = SELECT(replicate == 1) DATA;
        RESULT = MAP(n AS COUNT) REF DATA;
        MATERIALIZE RESULT;
    """,
    "cover": """
        RESULT = COVER(2, ANY) DATA;
        MATERIALIZE RESULT;
    """,
    "join-dle": """
        A = SELECT(replicate == 1) DATA;
        B = SELECT(replicate == 2) DATA;
        RESULT = JOIN(DLE(1000); output: LEFT) A B;
        MATERIALIZE RESULT;
    """,
}

ENGINES = ("naive", "columnar", "parallel", "auto")


@pytest.fixture(scope="module")
def data():
    return workload_dataset(seed=7, n_samples=6, regions_per_sample=4_000)


@pytest.fixture(scope="module")
def reference_results(data):
    return {
        name: execute(query, {"DATA": data}, engine="naive")["RESULT"]
        for name, query in QUERIES.items()
    }


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_engine_on_query(benchmark, data, reference_results, query_name,
                         engine):
    benchmark.group = query_name
    query = QUERIES[query_name]
    result = benchmark(
        lambda: execute(query, {"DATA": data}, engine=engine)["RESULT"]
    )
    reference = reference_results[query_name]
    # All engines agree on the result shape.
    assert len(result) == len(reference)
    assert result.region_count() == reference.region_count()
    benchmark.extra_info.update(
        {"regions_out": result.region_count(), "samples_out": len(result)}
    )
