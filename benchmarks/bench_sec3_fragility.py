"""E6 (Section 3, problem 1): the fragility pipeline and its enrichment.

Benchmarks the full GMQL analysis (extract dis-regulated genes ->
intersect breakpoints -> count mutations) and asserts the planted effect
is recovered: mutation density at dis-regulated genes with breaks far
exceeds the background.
"""

import pytest

from repro.simulate import CancerScenario, fragility_analysis


@pytest.fixture(scope="module")
def scenario():
    return CancerScenario.generate(seed=13)


def test_fragility_pipeline(benchmark, scenario):
    analysis = benchmark(fragility_analysis, scenario)
    called = analysis["called_disregulated"]
    truth = scenario.disregulated
    precision = len(called & truth) / len(called)
    recall = len(called & truth) / len(truth)
    benchmark.extra_info.update(
        {
            "called_genes": len(called),
            "precision": round(precision, 2),
            "recall": round(recall, 2),
            "mutation_enrichment": round(analysis["mutation_enrichment"], 1),
        }
    )
    assert precision > 0.8 and recall > 0.8
    assert analysis["mutation_enrichment"] > 3


def test_enrichment_vanishes_without_planted_effect():
    """Control: with fold_change ~ 1 the pipeline must find (almost)
    nothing -- the signal is the planted biology, not the machinery."""
    flat = CancerScenario.generate(seed=13, fold_change=1.05)
    analysis = fragility_analysis(flat)
    assert len(analysis["called_disregulated"]) < len(flat.disregulated) / 2
