"""E4 (Figure 3): CTCF-loop-aware gene-enhancer pairing vs distance baseline.

Measures both the runtime of the GMQL analysis and the quality shape the
paper implies: enclosing candidates within CTCF loops should beat a
distance-only heuristic on precision by a wide margin at modest recall
cost.
"""

import pytest

from repro.search import precision_recall
from repro.simulate import (
    CtcfScenario,
    distance_baseline_pairs,
    extract_candidate_pairs,
)


@pytest.fixture(scope="module")
def scenario():
    return CtcfScenario.generate(seed=11, n_loops=60)


def test_loop_aware_query(benchmark, scenario):
    candidates = benchmark(extract_candidate_pairs, scenario)
    metrics = precision_recall(list(candidates), scenario.true_pairs)
    benchmark.extra_info.update(
        {
            "pairs": len(candidates),
            "precision": round(metrics["precision"], 2),
            "recall": round(metrics["recall"], 2),
        }
    )
    assert metrics["precision"] > 0.7
    assert metrics["recall"] > 0.4


def test_distance_baseline(benchmark, scenario):
    baseline = benchmark(distance_baseline_pairs, scenario)
    metrics = precision_recall(list(baseline), scenario.true_pairs)
    benchmark.extra_info.update(
        {
            "pairs": len(baseline),
            "precision": round(metrics["precision"], 2),
            "recall": round(metrics["recall"], 2),
        }
    )
    # The baseline recalls everything but drowns in false positives.
    assert metrics["recall"] == 1.0
    assert metrics["precision"] < 0.3


def test_loop_query_beats_baseline_on_f1(scenario):
    loop_metrics = precision_recall(
        list(extract_candidate_pairs(scenario)), scenario.true_pairs
    )
    base_metrics = precision_recall(
        list(distance_baseline_pairs(scenario)), scenario.true_pairs
    )
    assert loop_metrics["f1"] > 2 * base_metrics["f1"]
