"""CI smoke gate for ``repro serve`` (the ``serve-smoke`` job).

Exercises the serving stack the way a user would, end to end:

1. Run the bundled ChIP-seq example once through ``repro run`` (a cold
   subprocess), read the materialised outputs back, and digest them --
   the identity reference.
2. Boot an in-process server (:class:`~repro.serve.server.ServerThread`)
   over the same bundled CHIP dataset and fire concurrent clients at it;
   every response must be a 200 carrying exactly the CLI digest, and the
   warm result cache must report hits (the warm state actually engaged).
3. Boot the real ``python -m repro serve`` subprocess on an ephemeral
   port, query it over HTTP, and shut it down with SIGINT -- the
   listener line, the query path and the graceful-exit path of the CLI
   entry point all get covered.
4. Assert no worker processes leaked past shutdown.

Exits non-zero (with a FAIL line) on the first violated invariant.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC_DIR)

CHIP_DIR = os.path.join(REPO_ROOT, "examples", "data", "CHIP")
QUERY_PATH = os.path.join(
    REPO_ROOT, "examples", "queries", "chipseq_overview.gmql"
)
CLIENTS = 4
REQUESTS_PER_CLIENT = 3


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def subprocess_env_from_env() -> dict:
    env = dict(os.environ)
    previous = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + previous if previous else "")
    return env


def cli_reference_digest(program: str) -> str:
    """Digest of the example's outputs from one cold ``repro run``."""
    from repro.formats import read_dataset
    from repro.gdm.digest import results_digest

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as out_dir:
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "run", QUERY_PATH,
             "--source", f"CHIP={CHIP_DIR}", "--engine", "auto",
             "--out", out_dir],
            env=subprocess_env_from_env(), capture_output=True, text=True,
        )
        if completed.returncode != 0:
            fail(f"reference `repro run` exited {completed.returncode}: "
                 f"{completed.stderr.strip()}")
        results = {
            name: read_dataset(os.path.join(out_dir, name), name)
            for name in sorted(os.listdir(out_dir))
        }
    if sorted(results) != ["COUNTS", "PAIRS"]:
        fail(f"reference run materialised {sorted(results)}, expected "
             f"['COUNTS', 'PAIRS']")
    return results_digest(results)


def in_process_server_check(program: str, reference_digest: str) -> None:
    """Concurrent clients against an embedded server: 200s + identity."""
    import multiprocessing

    from repro.formats import read_dataset
    from repro.serve.admission import AdmissionController, TenantQuota
    from repro.serve.client import ServeClient
    from repro.serve.server import QueryServer, ServerThread
    from repro.serve.state import WarmState
    from repro.store.cache import reset_result_cache

    reset_result_cache()
    state = WarmState(
        {"CHIP": read_dataset(CHIP_DIR, "CHIP")},
        engine="auto", workers=2,
    )
    server = QueryServer(
        state,
        admission=AdmissionController(default_quota=TenantQuota(
            max_concurrent=CLIENTS * 2, max_deadline_seconds=None,
        )),
        max_concurrency=3,
    )
    outcomes: list = []
    lock = threading.Lock()

    def client_worker(index: int) -> None:
        client = ServeClient(port=thread.port)
        try:
            for __ in range(REQUESTS_PER_CLIENT):
                response = client.query(program, tenant=f"smoke-{index}")
                with lock:
                    outcomes.append(
                        (response.status, response.payload.get("digest"))
                    )
        finally:
            client.close()

    with ServerThread(server) as thread:
        workers = [
            threading.Thread(target=client_worker, args=(index,))
            for index in range(CLIENTS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        probe = ServeClient(port=thread.port)
        stats = probe.stats().payload
        probe.close()

    expected = CLIENTS * REQUESTS_PER_CLIENT
    if len(outcomes) != expected:
        fail(f"expected {expected} responses, got {len(outcomes)}")
    bad = [status for status, __ in outcomes if status != 200]
    if bad:
        fail(f"{len(bad)} response(s) were not 200: {sorted(set(bad))}")
    wrong = [d for __, d in outcomes if d != reference_digest]
    if wrong:
        fail(f"{len(wrong)} served digest(s) differ from the CLI run "
             f"({wrong[0]} != {reference_digest})")
    hits = stats["result_cache"]["hits"]
    if hits <= 0:
        fail("warm server reports zero result-cache hits under a "
             "repeated-query load")
    leaked = multiprocessing.active_children()
    if leaked:
        fail(f"worker processes leaked past server shutdown: {leaked}")
    print(f"in-process server: {expected} concurrent responses, all 200 "
          f"and CLI-identical; {hits} warm cache hit(s); no leaked workers")


def cli_server_check(program: str, reference_digest: str) -> None:
    """The real ``repro serve`` subprocess: boot, query, SIGINT."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--source", f"CHIP={CHIP_DIR}", "--port", "0",
         "--engine", "auto", "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=subprocess_env_from_env(),
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        if not match:
            proc.kill()
            fail(f"`repro serve` printed no listen address: {line!r}")
        connection = http.client.HTTPConnection(
            match.group(1), int(match.group(2)), timeout=120
        )
        connection.request(
            "POST", "/query",
            body=json.dumps({"program": program}).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read())
        connection.close()
        if response.status != 200:
            fail(f"`repro serve` answered {response.status}: {payload}")
        if payload.get("digest") != reference_digest:
            fail(f"`repro serve` digest {payload.get('digest')} differs "
                 f"from the CLI run {reference_digest}")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGINT)
        exit_code = proc.wait(timeout=60)
    if exit_code != 0:
        fail(f"`repro serve` exited {exit_code} after SIGINT")
    print("subprocess server: booted, answered identically, "
          "exited 0 on SIGINT")


def main() -> int:
    with open(QUERY_PATH) as handle:
        program = handle.read()
    reference_digest = cli_reference_digest(program)
    print(f"reference digest from cold CLI run: {reference_digest}")
    in_process_server_check(program, reference_digest)
    cli_server_check(program, reference_digest)
    print("serve smoke gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
