"""E12 (Section 4.5): Internet-of-Genomes crawling -- coverage vs budget.

Measures crawl-pass cost and the coverage/freshness curves as the
politeness budget varies: the trade-off a third-party search service over
published genomic data must manage.
"""

import pytest

from repro.federation import Network
from repro.gdm import Dataset, Metadata, RegionSchema, Sample, region
from repro.search import Crawler, GenomeHost, GenomeSearchService

N_HOSTS = 8
DATASETS_PER_HOST = 3


def build_world():
    network = Network()
    hosts = []
    for h in range(N_HOSTS):
        host = GenomeHost(f"center{h}", network)
        for d in range(DATASETS_PER_HOST):
            ds = Dataset(f"DS_{h}_{d}", RegionSchema.empty())
            ds.add_sample(
                Sample(
                    1,
                    [region("chr1", i * 50, i * 50 + 30) for i in range(40)],
                    Metadata({"cell": ("HeLa-S3", "K562", "GM12878")[d % 3],
                              "dataType": "ChipSeq", "lab": f"lab{h}"}),
                )
            )
            host.publish(ds)
        hosts.append(host)
    return hosts, network


def test_full_crawl_pass(benchmark):
    def crawl():
        hosts, network = build_world()
        service = GenomeSearchService()
        crawler = Crawler(hosts, network)
        report = crawler.crawl(service)
        return service, report, hosts

    service, report, hosts = benchmark(crawl)
    assert report.links_new_or_updated == N_HOSTS * DATASETS_PER_HOST
    assert service.coverage(hosts) == 1.0
    benchmark.extra_info["links"] = report.links_seen


@pytest.mark.parametrize("budget", [2, 4, 8])
def test_coverage_vs_budget(benchmark, budget):
    benchmark.group = "coverage-vs-budget"

    def one_pass():
        hosts, network = build_world()
        service = GenomeSearchService()
        crawler = Crawler(hosts, network)
        crawler.crawl(service, max_hosts=budget)
        return service.coverage(hosts)

    coverage = benchmark(one_pass)
    assert coverage == pytest.approx(budget / N_HOSTS)
    benchmark.extra_info["coverage"] = round(coverage, 2)


def test_freshness_decays_and_recovers():
    hosts, network = build_world()
    service = GenomeSearchService()
    crawler = Crawler(hosts, network)
    crawler.crawl(service)
    # Half the hosts republish one dataset each.
    for host in hosts[: N_HOSTS // 2]:
        ds = Dataset(f"DS_{host.name[-1]}_0", RegionSchema.empty())
        ds.add_sample(Sample(1, [region("chr1", 0, 99)],
                             Metadata({"cell": "HepG2"})))
        host.update(ds)
    assert service.freshness(hosts) < 1.0
    crawler.crawl(service)
    assert service.freshness(hosts) == 1.0


def test_search_latency_after_crawl(benchmark):
    hosts, network = build_world()
    service = GenomeSearchService()
    Crawler(hosts, network).crawl(service)
    results = benchmark(service.search, "HeLa ChipSeq", 10)
    assert results
