"""E14 (ablation): interval-join strategies -- tree vs sweep vs searchsorted.

DESIGN.md calls out the choice of overlap kernel as a design decision;
this ablation measures the three implementations on uniform and clustered
workloads, where the crossover between index-probe and streaming
strategies lives.
"""

import pytest

from repro.intervals import (
    GenomeIndex,
    binned_count_overlaps,
    sweep_count_overlaps,
)
from repro.intervals.bins import DEFAULT_BIN_SIZE
from repro.simulate import region_sample
from repro.store import SampleBlocks, count_overlaps_blocks

N = 4_000


@pytest.fixture(scope="module", params=["uniform", "clustered"])
def workload(request):
    clustered = request.param == "clustered"
    references = region_sample(61, N, clustered=clustered)
    probes = region_sample(62, N, clustered=clustered)
    return request.param, references, probes


def _tree_counts(references, probes):
    index = GenomeIndex(probes)
    return [sum(1 for __ in index.overlapping(r)) for r in references]


def _vector_counts(references, probes):
    counts, __ = count_overlaps_blocks(
        SampleBlocks(None, references, DEFAULT_BIN_SIZE),
        SampleBlocks(None, probes, DEFAULT_BIN_SIZE),
    )
    return counts.tolist()


def test_interval_tree(benchmark, workload):
    shape, references, probes = workload
    benchmark.group = f"join-{shape}"
    counts = benchmark(_tree_counts, references, probes)
    benchmark.extra_info["total_overlaps"] = sum(counts)


def test_sweep(benchmark, workload):
    shape, references, probes = workload
    benchmark.group = f"join-{shape}"
    counts = benchmark(sweep_count_overlaps, references, probes)
    benchmark.extra_info["total_overlaps"] = sum(counts)


def test_searchsorted(benchmark, workload):
    shape, references, probes = workload
    benchmark.group = f"join-{shape}"
    counts = benchmark(_vector_counts, references, probes)
    benchmark.extra_info["total_overlaps"] = sum(counts)


def test_binned(benchmark, workload):
    shape, references, probes = workload
    benchmark.group = f"join-{shape}"
    counts = benchmark(binned_count_overlaps, references, probes, 50_000)
    benchmark.extra_info["total_overlaps"] = sum(counts)


def test_all_strategies_agree(workload):
    __, references, probes = workload
    assert (
        _tree_counts(references, probes)
        == sweep_count_overlaps(references, probes)
        == _vector_counts(references, probes)
        == binned_count_overlaps(references, probes, 50_000)
    )
