"""E11 (Section 4.5): feature-based region search -- index vs compute.

"For some regions it is possible to define a priori the typical features,
store them as attributes, and then use indexing; but in general features
should be computed."  The bench measures both routes: cold compute-then-
rank over the full corpus, warm (cached) search, and candidate-restricted
search where feature evaluation intertwines with a metadata pre-filter.
"""

import pytest

from repro.search import MetadataSearch, RegionSearch
from repro.simulate import workload_dataset


@pytest.fixture(scope="module")
def corpus():
    return workload_dataset(seed=23, n_samples=40, regions_per_sample=800,
                            name="CORPUS")


TARGETS = {"region_count": 800, "mean_length": 300, "covered_positions": 200_000}


def test_cold_compute_then_rank(benchmark, corpus):
    def cold():
        service = RegionSearch()
        service.add_dataset(corpus)
        return service.search(TARGETS, limit=5)

    results = benchmark(cold)
    assert len(results) == 5


def test_warm_indexed_search(benchmark, corpus):
    service = RegionSearch()
    service.add_dataset(corpus, precompute=tuple(TARGETS))
    results = benchmark(service.search, TARGETS, 5)
    assert len(results) == 5
    assert service.cache_stats()["computations"] == len(corpus) * len(TARGETS)


def test_candidate_restricted_search(benchmark, corpus):
    """Metadata search narrows candidates; features computed only there."""
    metadata = MetadataSearch()
    metadata.add_dataset(corpus)
    candidates = metadata.keyword_search("chipseq")[:10]

    def restricted():
        service = RegionSearch()
        service.add_dataset(corpus)
        service.search(TARGETS, limit=5, candidates=candidates)
        return service

    service = benchmark(restricted)
    assert (
        service.cache_stats()["computations"]
        == len(candidates) * len(TARGETS)
    )


def test_index_beats_cold_compute(corpus):
    """The quality result: the warm path does no feature evaluations."""
    warm = RegionSearch()
    warm.add_dataset(corpus, precompute=tuple(TARGETS))
    evaluations_before = warm.computations
    warm.search(TARGETS)
    assert warm.computations == evaluations_before
