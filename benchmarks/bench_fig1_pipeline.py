"""E1 (Figure 1): primary/secondary/tertiary pipeline phase costs.

The paper's Figure 1 is the phase diagram of genomic analysis; this bench
regenerates it quantitatively: one benchmark per phase on a fixed
simulated dataset, so the relative costs (secondary alignment dominating,
tertiary being cheap *because* it consumes processed data) are visible in
one table.
"""

import pytest

from repro.gmql import Count, map_regions
from repro.ngs import (
    Aligner,
    ReferenceGenome,
    alignments_to_dataset,
    call_peaks,
    run_pipeline,
    simulate_reads,
)

SIZES = {"chr1": 80_000, "chr2": 80_000}
N_READS = 4_000


@pytest.fixture(scope="module")
def genome():
    return ReferenceGenome.generate(seed=9, chromosome_sizes=SIZES)


@pytest.fixture(scope="module")
def sites():
    return [("chr1", 10_000), ("chr1", 40_000), ("chr2", 25_000)]


@pytest.fixture(scope="module")
def reads(genome, sites):
    return simulate_reads(genome, n_reads=N_READS, seed=9,
                          binding_sites=sites, enrichment=0.6)


@pytest.fixture(scope="module")
def aligned(genome, reads):
    return alignments_to_dataset(Aligner(genome).align(reads))


def test_primary_read_simulation(benchmark, genome, sites):
    result = benchmark(
        simulate_reads, genome, n_reads=N_READS, seed=9,
        binding_sites=sites, enrichment=0.6,
    )
    assert len(result) == N_READS
    benchmark.extra_info["reads"] = N_READS


def test_secondary_alignment(benchmark, genome, reads):
    aligner = Aligner(genome)
    alignments = benchmark(aligner.align, reads)
    rate = len(alignments) / len(reads)
    assert rate > 0.9
    benchmark.extra_info["alignment_rate"] = round(rate, 3)


def test_secondary_peak_calling(benchmark, genome, aligned, sites):
    peaks = benchmark(call_peaks, aligned, genome_size=genome.total_size())
    benchmark.extra_info["peaks"] = peaks.region_count()
    assert peaks.region_count() >= len(sites)


def test_tertiary_map(benchmark, genome, aligned, sites):
    from repro.gdm import Dataset, GenomicRegion, Metadata, RegionSchema, Sample

    promoters = Dataset(
        "PROMS",
        RegionSchema.of(("name", "STR")),
        [
            Sample(
                1,
                [
                    GenomicRegion(chrom, max(0, pos - 1_000), pos + 1_000, "+",
                                  (f"site{i}",))
                    for i, (chrom, pos) in enumerate(sites)
                ],
                Metadata({"annType": "promoter"}),
            )
        ],
    )
    peaks = call_peaks(aligned, genome_size=genome.total_size())
    result = benchmark(
        map_regions, promoters, peaks, {"peak_count": (Count(), None)}
    )
    counts = [r.values[-1] for r in result[1].regions]
    assert all(c > 0 for c in counts)  # every planted site was recovered


def test_full_pipeline_shape():
    """Non-timed sanity: the three phases hand GDM datasets downstream."""
    result = run_pipeline(seed=4, n_reads=3_000, n_binding_sites=8, n_genes=12)
    assert result.metrics["peak_recall"] > 0.6
    assert (
        result.metrics["tertiary_bound_promoters_hit"]
        >= result.metrics["tertiary_unbound_promoters_hit"]
    )
