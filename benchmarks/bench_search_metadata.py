"""E10 (Section 4.5): metadata search quality and speed.

A labelled corpus (relevance = samples of cancer cell lines) is searched
three ways -- keyword, free text, ontology-expanded -- measuring latency
and "classical measures of precision and recall".  The expected shape:
ontology expansion recovers relevant samples the literal modes miss.
"""

import pytest

from repro.gdm import Dataset, Metadata, RegionSchema, Sample, region
from repro.search import MetadataSearch, precision_recall
from repro.simulate import generator

CANCER_CELLS = ("HeLa-S3", "K562", "HepG2", "A549")
NORMAL_CELLS = ("GM12878", "H1-hESC")


def build_corpus(n_samples: int = 120):
    """Corpus where only some cancer samples say 'cancer' literally."""
    rng = generator(17, "corpus")
    dataset = Dataset("CORPUS", RegionSchema.empty())
    relevant = set()
    for sample_id in range(1, n_samples + 1):
        is_cancer = rng.random() < 0.5
        cells = CANCER_CELLS if is_cancer else NORMAL_CELLS
        meta = {
            "cell": cells[int(rng.integers(0, len(cells)))],
            "dataType": ("ChipSeq", "RnaSeq")[int(rng.integers(0, 2))],
            "lab": f"lab{int(rng.integers(0, 5))}",
        }
        if is_cancer and rng.random() < 0.3:
            meta["karyotype"] = "cancer"  # only 30% carry the literal word
        if is_cancer:
            relevant.add(("CORPUS", sample_id))
        dataset.add_sample(
            Sample(sample_id, [region("chr1", 0, 100)], Metadata(meta))
        )
    return dataset, relevant


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


@pytest.fixture(scope="module")
def search(corpus):
    dataset, __ = corpus
    service = MetadataSearch()
    service.add_dataset(dataset)
    return service


def test_keyword_search(benchmark, corpus, search):
    __, relevant = corpus
    hits = benchmark(search.keyword_search, "cancer")
    metrics = precision_recall(hits, relevant)
    benchmark.extra_info.update({k: round(v, 2) for k, v in metrics.items()})
    # Literal keyword: perfect precision, poor recall.
    assert metrics["precision"] == 1.0
    assert metrics["recall"] < 0.5


def test_free_text_search(benchmark, corpus, search):
    __, relevant = corpus
    ranked = benchmark(search.free_text_search, "cancer karyotype")
    metrics = precision_recall(ranked, relevant)
    benchmark.extra_info.update({k: round(v, 2) for k, v in metrics.items()})
    # Free text still only reaches samples carrying the literal tokens.
    assert metrics["recall"] < 0.6
    assert metrics["precision"] == 1.0


def test_ontology_search(benchmark, corpus, search):
    __, relevant = corpus
    ranked = benchmark(search.ontology_search, "cancer")
    metrics = precision_recall(ranked, relevant)
    benchmark.extra_info.update({k: round(v, 2) for k, v in metrics.items()})
    # Expansion reaches HeLa/K562/... samples with no literal 'cancer'.
    assert metrics["recall"] > 0.95


def test_ontology_beats_literal_recall(corpus, search):
    __, relevant = corpus
    literal = precision_recall(search.keyword_search("cancer"), relevant)
    expanded = precision_recall(search.ontology_search("cancer"), relevant)
    assert expanded["recall"] > 2 * literal["recall"]
    assert expanded["f1"] > literal["f1"]
