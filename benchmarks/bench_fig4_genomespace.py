"""E5 (Figure 4): MAP -> genome space -> gene network transformations.

One benchmark per arrow of Figure 4: the MAP producing the space, the
space construction from the MAP result, and the network interpretation of
the space.
"""

import pytest

from repro.analysis import (
    GenomeSpace,
    genome_space_to_network,
    network_summary,
)
from repro.gmql import run


@pytest.fixture(scope="module")
def mapped(medium_repo):
    return run(
        """
        GENES = SELECT(annType == 'promoter') ANNOTATIONS;
        CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
        SPACE = MAP(hits AS COUNT) GENES CHIP;
        MATERIALIZE SPACE;
        """,
        {"ANNOTATIONS": medium_repo.annotations,
         "ENCODE": medium_repo.encode},
        engine="columnar",
    )["SPACE"]


def test_map_produces_genome_space_input(benchmark, medium_repo):
    sources = {"ANNOTATIONS": medium_repo.annotations,
               "ENCODE": medium_repo.encode}
    result = benchmark(
        lambda: run(
            """
            GENES = SELECT(annType == 'promoter') ANNOTATIONS;
            CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
            SPACE = MAP(hits AS COUNT) GENES CHIP;
            MATERIALIZE SPACE;
            """,
            sources,
            engine="columnar",
        )["SPACE"]
    )
    assert len(result) == medium_repo.chipseq_sample_count()


def test_genome_space_construction(benchmark, mapped):
    space = benchmark(
        GenomeSpace.from_map_result, mapped, label_attribute="name"
    )
    assert space.n_regions == len(mapped[1])
    assert space.n_experiments == len(mapped)
    benchmark.extra_info["cells"] = space.n_regions * space.n_experiments


def test_network_extraction(benchmark, mapped):
    space = GenomeSpace.from_map_result(mapped, label_attribute="name")
    threshold = max(2, int(space.n_experiments * 0.8))
    graph = benchmark(
        genome_space_to_network, space, "coactivity", threshold
    )
    summary = network_summary(graph)
    benchmark.extra_info.update(summary)
    assert summary["nodes"] == space.n_regions
