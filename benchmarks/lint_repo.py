#!/usr/bin/env python
"""Repo-level static checks for project invariants ruff cannot express.

Run from the repository root (CI runs it next to ``ruff check``)::

    python benchmarks/lint_repo.py

Checks, over ``src``, ``tests`` and ``benchmarks``:

1. **No wall-clock reads outside the clock module.**  Calls to
   ``time.time()`` / ``datetime.now()`` / ``datetime.utcnow()`` are
   banned everywhere except ``src/repro/resilience/clock.py`` -- every
   component takes a clock so tests and chaos runs stay deterministic.
2. **No bare ``except:``.**  A bare handler swallows KeyboardInterrupt
   and SystemExit; catch ``Exception`` (or something narrower).
3. **Operator registry is complete.**  Every module in
   ``src/repro/gmql/operators/`` must be imported by the package
   ``__init__``, so ``from repro.gmql.operators import *``-style
   consumers (and the docs) never silently miss a kernel.
4. **Everything parses.**  Each file is compiled with :func:`compile`,
   which catches syntax errors even in modules no test imports.
5. **No raw ``SharedMemory`` construction outside the store.**  Shared
   memory segments leak unless their create/attach/close/unlink
   lifecycle is exact; only ``src/repro/store/shm.py`` (the managed
   :class:`ArrayShipper`/``materialise`` protocol) may instantiate
   ``multiprocessing.shared_memory.SharedMemory``.
6. **No raw memory maps outside the persisted store.**  ``np.memmap``
   and ``mmap.mmap`` lifecycles (open/attach/close, segment immutability
   after rename) are owned by ``src/repro/store/persist.py``; every
   other module must go through its handle protocol
   (``mmap_descriptor``/``open_segment``/``map_blob``) so segment files
   are always opened read-only, memoised, and accounted.

Exits nonzero listing ``path:line: message`` for every violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CHECKED_TREES = ("src", "tests", "benchmarks")
CLOCK_MODULE = ROOT / "src" / "repro" / "resilience" / "clock.py"
SHM_MODULE = ROOT / "src" / "repro" / "store" / "shm.py"
PERSIST_MODULE = ROOT / "src" / "repro" / "store" / "persist.py"
OPERATORS_DIR = ROOT / "src" / "repro" / "gmql" / "operators"

#: ``(qualifier, attribute)`` call patterns that read the wall clock.
WALL_CLOCK_CALLS = (
    ("time", "time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
)


def _python_files():
    for tree in CHECKED_TREES:
        yield from sorted((ROOT / tree).rglob("*.py"))


def _call_qualifier(func) -> tuple | None:
    """``("time", "time")`` for ``time.time(...)``-shaped calls."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    if isinstance(func, ast.Attribute) and isinstance(
        func.value, ast.Attribute
    ):
        # datetime.datetime.now(...)
        return (func.value.attr, func.attr)
    return None


def _check_file(path: Path, problems: list) -> None:
    rel = path.relative_to(ROOT)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(rel))
        compile(source, str(rel), "exec")
    except SyntaxError as exc:
        problems.append(f"{rel}:{exc.lineno}: syntax error: {exc.msg}")
        return
    is_clock = path == CLOCK_MODULE
    is_shm = path == SHM_MODULE
    is_persist = path == PERSIST_MODULE
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and not is_clock:
            pattern = _call_qualifier(node.func)
            if pattern in WALL_CLOCK_CALLS:
                problems.append(
                    f"{rel}:{node.lineno}: wall-clock call "
                    f"{pattern[0]}.{pattern[1]}() -- inject a clock "
                    f"(see repro.resilience.clock) instead"
                )
        if isinstance(node, ast.Call) and not is_shm:
            func = node.func
            constructs_shm = (
                isinstance(func, ast.Name) and func.id == "SharedMemory"
            ) or (
                isinstance(func, ast.Attribute)
                and func.attr == "SharedMemory"
            )
            if constructs_shm:
                problems.append(
                    f"{rel}:{node.lineno}: raw SharedMemory construction "
                    f"-- go through repro.store.shm (ArrayShipper / "
                    f"materialise) so segments cannot leak"
                )
        if isinstance(node, ast.Call) and not is_persist:
            func = node.func
            constructs_map = (
                isinstance(func, ast.Attribute) and func.attr == "memmap"
            ) or (
                isinstance(func, ast.Name) and func.id == "memmap"
            ) or (
                isinstance(func, ast.Attribute)
                and func.attr == "mmap"
                and isinstance(func.value, ast.Name)
                and func.value.id in ("mmap", "_mmap")
            )
            if constructs_map:
                problems.append(
                    f"{rel}:{node.lineno}: raw memory-map construction "
                    f"-- go through repro.store.persist "
                    f"(PersistedStore / open_segment / map_blob) so "
                    f"segment files stay read-only and accounted"
                )
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            problems.append(
                f"{rel}:{node.lineno}: bare 'except:' -- catch Exception "
                f"(or narrower) so SystemExit/KeyboardInterrupt propagate"
            )


def _check_operator_registry(problems: list) -> None:
    init = OPERATORS_DIR / "__init__.py"
    registered = set()
    for node in ast.walk(ast.parse(init.read_text())):
        if isinstance(node, ast.ImportFrom) and node.module:
            prefix = "repro.gmql.operators."
            if node.module.startswith(prefix):
                registered.add(node.module[len(prefix):])
    for module in sorted(OPERATORS_DIR.glob("*.py")):
        name = module.stem
        if name == "__init__":
            continue
        if name not in registered:
            problems.append(
                f"{module.relative_to(ROOT)}:1: operator module "
                f"{name!r} is not imported by gmql/operators/__init__.py"
            )


def main() -> int:
    problems: list = []
    for path in _python_files():
        _check_file(path, problems)
    _check_operator_registry(problems)
    if problems:
        for problem in problems:
            print(problem)
        print(f"{len(problems)} problem(s)")
        return 1
    print("lint_repo: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
