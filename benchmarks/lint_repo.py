#!/usr/bin/env python
"""Repo-level static checks for project invariants ruff cannot express.

Run from the repository root (CI runs it next to ``ruff check``)::

    python benchmarks/lint_repo.py
    python benchmarks/lint_repo.py --select RL001,RL007
    python benchmarks/lint_repo.py --ignore RL002

Rules are a table -- :data:`RULES` -- with stable ``RL0xx`` codes, so CI
annotations, ``--select``/``--ignore`` filters and the golden-snippet
self-test suite (``tests/lint/``) all key on the same identifiers:

========  =======================================================
RL001     wall-clock read (``time.time``/``datetime.now``/
          ``datetime.utcnow``) outside ``resilience/clock.py``
RL002     bare ``except:`` swallows SystemExit/KeyboardInterrupt
RL003     raw ``SharedMemory`` construction outside ``store/shm.py``
RL004     raw ``np.memmap``/``mmap.mmap`` outside ``store/persist.py``
RL005     operator module not imported by ``gmql/operators/__init__``
RL006     file does not parse
RL007     ``time.sleep``/``time.monotonic``/``time.perf_counter``
          outside ``resilience/clock.py``
RL008     ``os.environ`` read outside a ``*_from_env`` function
========  =======================================================

Checked trees: ``src``, ``tests``, ``benchmarks``.  The golden corpus
of *intentionally* violating snippets under ``tests/lint/snippets/`` is
exempt (each snippet exists to trip exactly one rule, verified by
``tests/lint/test_lint_rules.py``).

Exits nonzero listing ``path:line: RL0xx message`` for every violation.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CHECKED_TREES = ("src", "tests", "benchmarks")
SNIPPET_DIR = ROOT / "tests" / "lint" / "snippets"
CLOCK_MODULE = ROOT / "src" / "repro" / "resilience" / "clock.py"
SHM_MODULE = ROOT / "src" / "repro" / "store" / "shm.py"
PERSIST_MODULE = ROOT / "src" / "repro" / "store" / "persist.py"
OPERATORS_DIR = ROOT / "src" / "repro" / "gmql" / "operators"

#: ``(qualifier, attribute)`` call patterns that read the wall clock.
WALL_CLOCK_CALLS = (
    ("time", "time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
)

#: Monotonic/sleep reads that must route through the clock seam.
CLOCK_SEAM_CALLS = (
    ("time", "sleep"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
)


@dataclass(frozen=True)
class Problem:
    """One rule violation at a location."""

    code: str
    path: Path  # repo-relative
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _call_qualifier(func) -> tuple | None:
    """``("time", "time")`` for ``time.time(...)``-shaped calls."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    if isinstance(func, ast.Attribute) and isinstance(
        func.value, ast.Attribute
    ):
        # datetime.datetime.now(...)
        return (func.value.attr, func.attr)
    return None


# -- per-node rule checks --------------------------------------------------------
#
# Each checker receives the repo-relative path, one AST node, and the
# name of the innermost enclosing function (or None), and yields
# ``(line, message)`` violations.  File exemptions live in the rule row.


def _check_wall_clock(rel, node, enclosing):
    if isinstance(node, ast.Call):
        pattern = _call_qualifier(node.func)
        if pattern in WALL_CLOCK_CALLS:
            yield (
                node.lineno,
                f"wall-clock call {pattern[0]}.{pattern[1]}() -- inject a "
                f"clock (see repro.resilience.clock) instead",
            )


def _check_bare_except(rel, node, enclosing):
    if isinstance(node, ast.ExceptHandler) and node.type is None:
        yield (
            node.lineno,
            "bare 'except:' -- catch Exception (or narrower) so "
            "SystemExit/KeyboardInterrupt propagate",
        )


def _check_shared_memory(rel, node, enclosing):
    if not isinstance(node, ast.Call):
        return
    func = node.func
    constructs_shm = (
        isinstance(func, ast.Name) and func.id == "SharedMemory"
    ) or (
        isinstance(func, ast.Attribute) and func.attr == "SharedMemory"
    )
    if constructs_shm:
        yield (
            node.lineno,
            "raw SharedMemory construction -- go through repro.store.shm "
            "(ArrayShipper / materialise) so segments cannot leak",
        )


def _check_memmap(rel, node, enclosing):
    if not isinstance(node, ast.Call):
        return
    func = node.func
    constructs_map = (
        isinstance(func, ast.Attribute) and func.attr == "memmap"
    ) or (
        isinstance(func, ast.Name) and func.id == "memmap"
    ) or (
        isinstance(func, ast.Attribute)
        and func.attr == "mmap"
        and isinstance(func.value, ast.Name)
        and func.value.id in ("mmap", "_mmap")
    )
    if constructs_map:
        yield (
            node.lineno,
            "raw memory-map construction -- go through repro.store.persist "
            "(PersistedStore / open_segment / map_blob) so segment files "
            "stay read-only and accounted",
        )


def _check_clock_seam(rel, node, enclosing):
    if isinstance(node, ast.Call):
        pattern = _call_qualifier(node.func)
        if pattern in CLOCK_SEAM_CALLS:
            yield (
                node.lineno,
                f"direct {pattern[0]}.{pattern[1]}() -- import it from "
                f"repro.resilience.clock so timing has one patchable seam",
            )


def _check_environ(rel, node, enclosing):
    is_environ = (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )
    if is_environ and (
        enclosing is None or not enclosing.endswith("_from_env")
    ):
        yield (
            node.lineno,
            "os.environ read outside a *_from_env function -- route "
            "configuration through one named entry point per knob",
        )


@dataclass(frozen=True)
class Rule:
    """One table row: a stable code, a per-node checker, exemptions."""

    code: str
    summary: str
    check: object  # callable(rel, node, enclosing) -> iterable
    exempt: tuple = ()  # absolute Paths the rule does not apply to


RULES: tuple = (
    Rule("RL001", "wall-clock read outside the clock module",
         _check_wall_clock, exempt=(CLOCK_MODULE,)),
    Rule("RL002", "bare except", _check_bare_except),
    Rule("RL003", "raw SharedMemory outside store/shm.py",
         _check_shared_memory, exempt=(SHM_MODULE,)),
    Rule("RL004", "raw memory map outside store/persist.py",
         _check_memmap, exempt=(PERSIST_MODULE,)),
    Rule("RL007", "sleep/monotonic/perf_counter outside the clock module",
         _check_clock_seam, exempt=(CLOCK_MODULE,)),
    Rule("RL008", "os.environ read outside a *_from_env function",
         _check_environ),
)

#: Codes handled outside the per-node table (parse + repo-level checks).
SPECIAL_CODES = ("RL005", "RL006")

ALL_CODES = tuple(sorted(
    [rule.code for rule in RULES] + list(SPECIAL_CODES)
))


def _python_files():
    for tree in CHECKED_TREES:
        for path in sorted((ROOT / tree).rglob("*.py")):
            if SNIPPET_DIR in path.parents:
                continue  # golden corpus of intentional violations
            yield path


def _walk_with_enclosing(tree):
    """Yield ``(node, enclosing_function_name)`` over the whole AST."""
    stack = [(tree, None)]
    while stack:
        node, enclosing = stack.pop()
        yield node, enclosing
        inner = enclosing
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = node.name
        for child in ast.iter_child_nodes(node):
            stack.append((child, inner))


def check_file(path: Path, active: set, root: Path = ROOT) -> list:
    """All violations of the *active* rule codes in one file."""
    rel = path.relative_to(root)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(rel))
        compile(source, str(rel), "exec")
    except SyntaxError as exc:
        if "RL006" in active:
            return [Problem(
                "RL006", rel, exc.lineno or 1, f"syntax error: {exc.msg}"
            )]
        return []
    rules = [
        rule for rule in RULES
        if rule.code in active and path not in rule.exempt
    ]
    problems = []
    for node, enclosing in _walk_with_enclosing(tree):
        for rule in rules:
            for line, message in rule.check(rel, node, enclosing):
                problems.append(Problem(rule.code, rel, line, message))
    problems.sort(key=lambda p: (p.line, p.code))
    return problems


def check_operator_registry(active: set) -> list:
    """RL005: every operator module is imported by the package init."""
    if "RL005" not in active:
        return []
    init = OPERATORS_DIR / "__init__.py"
    registered = set()
    for node in ast.walk(ast.parse(init.read_text())):
        if isinstance(node, ast.ImportFrom) and node.module:
            prefix = "repro.gmql.operators."
            if node.module.startswith(prefix):
                registered.add(node.module[len(prefix):])
    problems = []
    for module in sorted(OPERATORS_DIR.glob("*.py")):
        name = module.stem
        if name == "__init__":
            continue
        if name not in registered:
            problems.append(Problem(
                "RL005", module.relative_to(ROOT), 1,
                f"operator module {name!r} is not imported by "
                f"gmql/operators/__init__.py",
            ))
    return problems


def _parse_codes(raw: str | None) -> set | None:
    if raw is None:
        return None
    codes = {code.strip().upper() for code in raw.split(",") if code.strip()}
    unknown = codes - set(ALL_CODES)
    if unknown:
        raise SystemExit(
            f"unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(ALL_CODES)})"
        )
    return codes


def active_codes(select: str | None = None, ignore: str | None = None
                 ) -> set:
    """The rule codes a run enforces after --select/--ignore filtering."""
    active = _parse_codes(select) or set(ALL_CODES)
    return active - (_parse_codes(ignore) or set())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repo-invariant lint (RL0xx rules)"
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated RL0xx codes to enforce (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated RL0xx codes to skip",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="list the rule table and exit",
    )
    args = parser.parse_args(argv)
    if args.rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.summary}")
        print("RL005  operator module missing from the package registry")
        print("RL006  file does not parse")
        return 0
    active = active_codes(args.select, args.ignore)
    problems: list = []
    for path in _python_files():
        problems.extend(check_file(path, active))
    problems.extend(check_operator_registry(active))
    if problems:
        for problem in problems:
            print(problem.render())
        print(f"{len(problems)} problem(s)")
        return 1
    print("lint_repo: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
