"""E2 (Figure 2): GDM construction, triples view and schema merging.

Figure 2 is the data-model figure; its quantitative counterpart is the
cost of the model's three core mechanics: building validated datasets,
recovering the (id, attribute, value) triple layout, and merging
heterogeneous schemas (the interoperability operation).
"""

import pytest

from repro.gdm import (
    Dataset,
    FLOAT,
    GenomicRegion,
    INT,
    Metadata,
    RegionSchema,
    STR,
    Sample,
)

N_REGIONS = 20_000


@pytest.fixture(scope="module")
def raw_samples():
    schema = RegionSchema.of(("name", STR), ("p_value", FLOAT))
    samples = []
    for sample_id in range(1, 5):
        regions = [
            GenomicRegion(
                f"chr{1 + i % 3}", i * 10, i * 10 + 50, "*",
                (f"p{i}", str(1e-5)),  # strings: validation must coerce
            )
            for i in range(N_REGIONS // 4)
        ]
        samples.append(
            Sample(sample_id, regions, Metadata({"cell": "HeLa-S3"}))
        )
    return schema, samples


def test_dataset_construction_with_validation(benchmark, raw_samples):
    schema, samples = raw_samples

    def build():
        return Dataset("PEAKS", schema, samples, validate=True)

    dataset = benchmark(build)
    assert dataset.region_count() == N_REGIONS
    # Validation coerced the string p-values.
    assert isinstance(dataset[1].regions[0].values[1], float)


def test_dataset_construction_trusted(benchmark, raw_samples):
    """validate=False path: what operators use on data they built."""
    schema, samples = raw_samples

    def build():
        return Dataset("PEAKS", schema, samples, validate=False)

    dataset = benchmark(build)
    assert dataset.region_count() == N_REGIONS


def test_triples_view(benchmark, raw_samples):
    schema, samples = raw_samples
    dataset = Dataset("PEAKS", schema, samples)

    def scan():
        return sum(1 for __ in dataset.region_rows()) + sum(
            1 for __ in dataset.metadata_triples()
        )

    rows = benchmark(scan)
    assert rows == N_REGIONS + 4


def test_schema_merging_remap(benchmark):
    """Schema merging + remapping a full region load through it."""
    left = RegionSchema.of(("p_value", FLOAT), ("name", STR))
    right = RegionSchema.of(("score", INT), ("name", STR))
    values = [(1e-5, f"x{i}") for i in range(N_REGIONS)]

    def merge_and_remap():
        merged = left.merge(right)
        return [merged.remap_left(v) for v in values]

    remapped = benchmark(merge_and_remap)
    assert len(remapped[0]) == 3  # p_value, name, score
