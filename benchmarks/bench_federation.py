"""E9 (Section 4.4): query shipping vs data shipping traffic.

Measures, on a two-node federation, the bytes and message counts of both
strategies for the promoter-MAP analysis, and checks the compile-time
estimator points the planner at the cheaper one.  The paper's claim under
test: "transferring only query results which are usually small in size".
"""

import pytest

from repro.federation import FederatedClient, FederationNode, Network
from repro.repository import Catalog
from repro.simulate import EncodeRepository, GenomeLayout

PROGRAM = """
PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
CHIP = SELECT(dataType == 'ChipSeq') ENCODE;
MAPPED = MAP(peak_count AS COUNT) PROMS CHIP;
BEST = ORDER(order; top: 2) MAPPED;
MATERIALIZE BEST;
"""


def build_federation():
    layout = GenomeLayout.generate(seed=8, n_genes=120, n_enhancers=60)
    repo = EncodeRepository.generate(seed=8, n_samples=36,
                                     peaks_per_sample_mean=300, layout=layout)
    network = Network()
    consortium = Catalog("consortium")
    consortium.register(repo.encode)
    provider = Catalog("provider")
    provider.register(repo.annotations)
    nodes = [
        FederationNode("consortium", consortium, network),
        FederationNode("provider", provider, network),
    ]
    return FederatedClient(nodes, network), network


def test_query_shipping(benchmark):
    def run():
        client, __ = build_federation()
        return client.run_query_shipping(PROGRAM)

    outcome = benchmark(run)
    benchmark.extra_info.update(
        {"bytes_moved": outcome.bytes_moved,
         "messages": outcome.message_count}
    )
    assert outcome.executing_node == "consortium"


def test_data_shipping(benchmark):
    def run():
        client, __ = build_federation()
        return client.run_data_shipping(PROGRAM)

    outcome = benchmark(run)
    benchmark.extra_info.update(
        {"bytes_moved": outcome.bytes_moved,
         "messages": outcome.message_count}
    )
    assert outcome.executing_node == "client"


def test_shipping_ratio_and_planner():
    client, __ = build_federation()
    query = client.run_query_shipping(PROGRAM)
    data = client.run_data_shipping(PROGRAM)
    ratio = data.bytes_moved / query.bytes_moved
    # Results are small, sources are big: query shipping wins clearly.
    assert ratio > 3
    estimates = client.estimate_strategies(PROGRAM)
    assert estimates["query-shipping"] < estimates["data-shipping"]
    assert client.run(PROGRAM).strategy == "query-shipping"
