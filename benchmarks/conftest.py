"""Shared fixtures for the benchmark suite.

Data generation happens once per module/session so pytest-benchmark
timings measure the system under test, not the generators.
"""

import pytest

from repro.simulate import EncodeRepository, GenomeLayout


@pytest.fixture(scope="session")
def medium_layout():
    return GenomeLayout.generate(seed=1, n_genes=300, n_enhancers=150)


@pytest.fixture(scope="session")
def medium_repo(medium_layout):
    return EncodeRepository.generate(
        seed=1, n_samples=24, peaks_per_sample_mean=400, layout=medium_layout
    )
