"""E13 (Section 4.3): GREAT-like statistics over planted associations.

A peak set planted at regulatory domains must come out significantly
enriched (binomial over regions, hypergeometric over genes); a uniform
control set must not.  Also measures the statistic's cost at realistic
region counts.
"""

import pytest

from repro.analysis import (
    binomial_region_enrichment,
    hypergeometric_gene_enrichment,
)
from repro.gdm import GenomicRegion
from repro.simulate import generator

GENOME_SIZE = 10_000_000
N_DOMAINS = 300
N_QUERY = 2_000


@pytest.fixture(scope="module")
def domains():
    rng = generator(31, "domains")
    return [
        GenomicRegion("chr1", int(p), int(p) + 2_000)
        for p in rng.integers(0, GENOME_SIZE - 2_000, size=N_DOMAINS)
    ]


@pytest.fixture(scope="module")
def enriched_query(domains):
    rng = generator(31, "query")
    regions = []
    for i in range(N_QUERY):
        if rng.random() < 0.5:
            domain = domains[int(rng.integers(0, len(domains)))]
            center = int(rng.integers(domain.left, domain.right))
        else:
            center = int(rng.integers(0, GENOME_SIZE))
        regions.append(GenomicRegion("chr1", max(0, center - 100), center + 100))
    return regions


@pytest.fixture(scope="module")
def uniform_query():
    rng = generator(31, "uniform")
    return [
        GenomicRegion("chr1", int(p), int(p) + 200)
        for p in rng.integers(0, GENOME_SIZE - 200, size=N_QUERY)
    ]


def test_binomial_on_enriched_set(benchmark, domains, enriched_query):
    result = benchmark(
        binomial_region_enrichment, enriched_query, domains, GENOME_SIZE
    )
    benchmark.extra_info.update(
        {"fold": round(result.fold, 1), "p_value": f"{result.p_value:.2e}"}
    )
    assert result.fold > 3
    assert result.p_value < 1e-10


def test_binomial_on_uniform_control(benchmark, domains, uniform_query):
    result = benchmark(
        binomial_region_enrichment, uniform_query, domains, GENOME_SIZE
    )
    benchmark.extra_info["fold"] = round(result.fold, 2)
    assert 0.5 < result.fold < 1.5
    assert result.p_value > 1e-4


def test_hypergeometric_gene_level(benchmark):
    all_genes = {f"g{i}" for i in range(5_000)}
    annotated = {f"g{i}" for i in range(400)}
    hits = {f"g{i}" for i in range(200)} | {f"g{i}" for i in range(4_000, 4_100)}
    result = benchmark(
        hypergeometric_gene_enrichment, hits, annotated, all_genes
    )
    assert result.observed == 200
    assert result.p_value < 1e-10
