"""CI gate for the ``repro bench`` harness.

Usage::

    python benchmarks/check_bench_regression.py BENCH_pr5.json \
        benchmarks/BENCH_baseline_pr5.json [--factor 2.0] [--require-shm]

Compares a freshly produced BENCH document against the committed
baseline and exits non-zero when the columnar engine regressed.  The
check is ratio-based so it survives machine-speed differences: for each
scenario the *relative* cost ``columnar / naive`` (warm, falling back to
cold) is compared, and a fresh ratio more than ``--factor`` times the
baseline ratio fails.  Two absolute invariants are also enforced on the
fresh document: the MAP scenario must report zone-map pruning
(``partitions_pruned > 0``) and the columnar variant must report result
cache hits -- a silently disabled store or cache would otherwise pass
on speed alone.

With ``--require-shm`` (the medium-scale fan-out run), every scenario
carrying both ``parallel`` and ``parallel-pickle`` variants must show
the shared-memory path actually engaging: segments shipped
(``shm_bytes_shared > 0``) and fewer pickled bytes than the
pickle-only variant.

With ``--require-persisted``, every scenario carrying a
``store-persisted`` variant must show the disk-native store actually
engaging: warm repeats served blocks from memory maps
(``store_warm.blocks_mapped > 0``) without building any
(``store_warm.blocks_built == 0``), and the mmap warm open beat the
in-memory cold build (``warm_seconds < cold_seconds``).

With ``--require-no-laggards`` (the ROADMAP's "no scenario below 1x vs
naive" target), every scenario reporting a ``columnar_vs_naive_speedup``
must come in at 1.0 or better -- a kernelised operator family that
loses to the record-at-a-time reference engine fails the gate outright,
baseline or no baseline.

With ``--require-sharded-scaling`` (the sharded cluster bench), every
scenario carrying a ``sharded`` matrix must merge byte-identically to
the single-node columnar engine (``identical_to_columnar``), every
multi-node cell must actually move partials over the federation
(``bytes_streamed + bytes_mapped > 0``), and at least one scenario in
the document must show the cluster critical path scaling
(``speedup_max_nodes_vs_1 >= 1.5``).

With ``--require-serving`` (the ``--clients`` run), the document must
carry a ``concurrent_clients`` report in which the warm server answered
every request (no errors), byte-identically to the cold per-invocation
CLI runs, with a nonzero warm result-cache hit rate, and with a p50
latency at least ``SERVE_SPEEDUP_FLOOR`` (3x) better than one
``repro run`` subprocess per query -- the resident server's reason to
exist.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Minimum cluster-critical-path speedup (max nodes vs 1 node) that at
#: least one scenario must reach under ``--require-sharded-scaling``.
SHARDED_SPEEDUP_FLOOR = 1.5

#: Minimum warm-server p50 advantage over the cold per-invocation CLI
#: required under ``--require-serving`` (the ISSUE's acceptance bar).
SERVE_SPEEDUP_FLOOR = 3.0


def _seconds(cell: dict) -> float:
    warm = cell.get("warm_seconds")
    return warm if warm is not None else cell["cold_seconds"]


def _ratio(entry: dict, numerator: str, denominator: str) -> float | None:
    variants = entry["variants"]
    if numerator not in variants or denominator not in variants:
        return None
    reference = _seconds(variants[denominator])
    if not reference:
        return None
    return _seconds(variants[numerator]) / reference


def _shm_check(scenario: str, entry: dict) -> list:
    """Shared-memory engagement invariants for one scenario."""
    variants = entry["variants"]
    shm = variants.get("parallel")
    pickled = variants.get("parallel-pickle")
    if shm is None or pickled is None:
        return []
    failures = []
    if shm.get("shm_bytes_shared", 0) <= 0:
        failures.append(
            f"{scenario}: parallel variant shipped no shared-memory bytes"
        )
    if shm.get("shm_bytes_pickled", 0) >= pickled.get("shm_bytes_pickled", 0):
        failures.append(
            f"{scenario}: shared-memory path pickled "
            f"{shm.get('shm_bytes_pickled', 0)} bytes, not fewer than the "
            f"pickle-only path ({pickled.get('shm_bytes_pickled', 0)})"
        )
    if pickled.get("shm_bytes_shared", 0) != 0:
        failures.append(
            f"{scenario}: pickle-only variant unexpectedly used "
            f"shared memory"
        )
    return failures


def _persisted_check(scenario: str, entry: dict) -> list:
    """Persisted-store engagement invariants for one scenario."""
    cell = entry["variants"].get("store-persisted")
    if cell is None:
        return []
    failures = []
    warm_stats = cell.get("store_warm", {})
    if warm_stats.get("blocks_mapped", 0) <= 0:
        failures.append(
            f"{scenario}: store-persisted warm runs mapped no blocks "
            f"(the persisted store never engaged)"
        )
    if warm_stats.get("blocks_built", 0) > 0:
        failures.append(
            f"{scenario}: store-persisted warm runs rebuilt "
            f"{warm_stats['blocks_built']} block sets instead of mapping "
            f"persisted segments"
        )
    warm = cell.get("warm_seconds")
    if warm is not None and warm >= cell["cold_seconds"]:
        failures.append(
            f"{scenario}: mmap warm open ({warm:.4f}s) did not beat the "
            f"in-memory cold build ({cell['cold_seconds']:.4f}s)"
        )
    return failures


def _laggard_check(scenario: str, entry: dict) -> list:
    """The no-laggards rule: columnar must not lose to naive."""
    speedup = entry.get("columnar_vs_naive_speedup")
    if speedup is None or speedup >= 1.0:
        return []
    return [
        f"{scenario}: columnar_vs_naive_speedup {speedup:.2f} is below "
        f"1.0 (the columnar kernel loses to the naive engine)"
    ]


def _sharded_check(scenario: str, entry: dict) -> list:
    """Sharded-cluster engagement invariants for one scenario."""
    matrix = entry.get("sharded")
    if matrix is None:
        return []
    failures = []
    if matrix.get("identical_to_columnar") is False:
        failures.append(
            f"{scenario}: sharded merge is not byte-identical to the "
            f"single-node columnar result"
        )
    for count, cell in matrix.get("nodes", {}).items():
        if int(count) < 2:
            continue
        moved = cell.get("bytes_streamed", 0) + cell.get("bytes_mapped", 0)
        if moved <= 0:
            failures.append(
                f"{scenario}: sharded x{count} moved no partial bytes "
                f"(neither streamed nor mapped -- the federation never "
                f"engaged)"
            )
        if cell.get("degraded"):
            failures.append(
                f"{scenario}: sharded x{count} ran degraded "
                f"(shards were skipped on a healthy cluster)"
            )
    return failures


def _sharded_scaling_check(fresh: dict) -> list:
    """Document-level scaling floor: one scenario must hit the target."""
    speedups = [
        entry["sharded"]["speedup_max_nodes_vs_1"]
        for entry in fresh["scenarios"].values()
        if entry.get("sharded", {}).get("speedup_max_nodes_vs_1") is not None
    ]
    if not speedups:
        return ["no scenario carries a sharded multi-node matrix"]
    best = max(speedups)
    if best >= SHARDED_SPEEDUP_FLOOR:
        return []
    return [
        f"best sharded cluster speedup (max nodes vs 1) is {best:.2f}x, "
        f"below the {SHARDED_SPEEDUP_FLOOR}x floor"
    ]


def _serving_check(fresh: dict) -> list:
    """Warm-server engagement invariants for the serving scenario."""
    report = fresh.get("concurrent_clients")
    if report is None:
        return ["document carries no concurrent_clients report "
                "(was the bench run with --clients?)"]
    failures = []
    warm = report.get("warm_server", {})
    if warm.get("errors", 0):
        failures.append(
            f"concurrent-clients: {warm['errors']} request(s) failed "
            f"(first: {warm.get('error_detail')})"
        )
    if not report.get("identical_to_cli"):
        failures.append(
            "concurrent-clients: served results are not byte-identical "
            "to the cold CLI runs"
        )
    if warm.get("cache_hit_rate", 0.0) <= 0.0:
        failures.append(
            "concurrent-clients: warm server reports a zero result-cache "
            "hit rate (warm state never engaged)"
        )
    speedup = report.get("warm_p50_speedup_vs_cold_cli")
    if speedup is None or speedup < SERVE_SPEEDUP_FLOOR:
        failures.append(
            f"concurrent-clients: warm-server p50 speedup vs cold CLI is "
            f"{speedup if speedup is None else f'{speedup:.2f}x'}, below "
            f"the {SERVE_SPEEDUP_FLOOR}x floor"
        )
    return failures


def check(
    fresh: dict, baseline: dict, factor: float, require_shm: bool = False,
    require_persisted: bool = False, require_no_laggards: bool = False,
    require_sharded_scaling: bool = False, require_serving: bool = False,
) -> list:
    """All failure messages (empty when the gate passes)."""
    failures = []
    if require_serving:
        failures.extend(_serving_check(fresh))
    for scenario, entry in fresh["scenarios"].items():
        if not entry.get("identical_results", True):
            failures.append(f"{scenario}: engine variants disagree on results")
        if require_shm:
            failures.extend(_shm_check(scenario, entry))
        if require_persisted:
            failures.extend(_persisted_check(scenario, entry))
        if require_no_laggards:
            failures.extend(_laggard_check(scenario, entry))
        if require_sharded_scaling:
            failures.extend(_sharded_check(scenario, entry))
        base_entry = baseline["scenarios"].get(scenario)
        if base_entry is None:
            continue
        fresh_ratio = _ratio(entry, "columnar", "naive")
        base_ratio = _ratio(base_entry, "columnar", "naive")
        if fresh_ratio is not None and base_ratio:
            if fresh_ratio > base_ratio * factor:
                failures.append(
                    f"{scenario}: columnar/naive ratio regressed "
                    f"{fresh_ratio:.2f} vs baseline {base_ratio:.2f} "
                    f"(allowed factor {factor})"
                )
    if require_sharded_scaling:
        failures.extend(_sharded_scaling_check(fresh))
    map_entry = fresh["scenarios"].get("map", {})
    columnar = map_entry.get("variants", {}).get("columnar")
    if columnar is not None:
        if columnar.get("partitions_pruned", 0) <= 0:
            failures.append(
                "map: columnar variant reports no zone-map pruning "
                "(partitions_pruned == 0)"
            )
        if columnar.get("cache", {}).get("hits", 0) <= 0:
            failures.append(
                "map: columnar variant reports no result-cache hits"
            )
    return failures


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="BENCH JSON produced by this run")
    parser.add_argument("baseline", help="committed baseline BENCH JSON")
    parser.add_argument(
        "--factor", type=float, default=2.0,
        help="allowed slowdown of the columnar/naive ratio (default: 2.0)",
    )
    parser.add_argument(
        "--require-shm", action="store_true",
        help="additionally require the parallel variant to ship bytes "
             "through shared memory and pickle fewer bytes than "
             "parallel-pickle",
    )
    parser.add_argument(
        "--require-persisted", action="store_true",
        help="additionally require the store-persisted variant to serve "
             "warm runs from memory-mapped segments, rebuild nothing, "
             "and beat its own cold build",
    )
    parser.add_argument(
        "--require-no-laggards", action="store_true",
        help="additionally fail any scenario whose "
             "columnar_vs_naive_speedup is below 1.0",
    )
    parser.add_argument(
        "--require-sharded-scaling", action="store_true",
        help="additionally require sharded matrices to merge identically "
             "to columnar, move partial bytes on multi-node cells, and "
             "show a >= 1.5x cluster critical-path speedup somewhere",
    )
    parser.add_argument(
        "--require-serving", action="store_true",
        help="additionally require the concurrent_clients report to show "
             "error-free, CLI-identical served results, a nonzero warm "
             "cache hit rate, and a >= 3x p50 advantage over cold CLI "
             "invocations",
    )
    args = parser.parse_args(argv)
    with open(args.fresh) as handle:
        fresh = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    failures = check(fresh, baseline, args.factor, args.require_shm,
                     args.require_persisted, args.require_no_laggards,
                     args.require_sharded_scaling, args.require_serving)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("bench regression gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
