"""CI gate for the ``repro bench`` harness.

Usage::

    python benchmarks/check_bench_regression.py BENCH_pr3.json \
        benchmarks/BENCH_baseline_pr3.json [--factor 2.0]

Compares a freshly produced BENCH document against the committed
baseline and exits non-zero when the columnar engine regressed.  The
check is ratio-based so it survives machine-speed differences: for each
scenario the *relative* cost ``columnar / naive`` (warm, falling back to
cold) is compared, and a fresh ratio more than ``--factor`` times the
baseline ratio fails.  Two absolute invariants are also enforced on the
fresh document: the MAP scenario must report zone-map pruning
(``partitions_pruned > 0``) and the columnar variant must report result
cache hits -- a silently disabled store or cache would otherwise pass
on speed alone.
"""

from __future__ import annotations

import argparse
import json
import sys


def _seconds(cell: dict) -> float:
    warm = cell.get("warm_seconds")
    return warm if warm is not None else cell["cold_seconds"]


def _ratio(entry: dict, numerator: str, denominator: str) -> float | None:
    variants = entry["variants"]
    if numerator not in variants or denominator not in variants:
        return None
    reference = _seconds(variants[denominator])
    if not reference:
        return None
    return _seconds(variants[numerator]) / reference


def check(fresh: dict, baseline: dict, factor: float) -> list:
    """All failure messages (empty when the gate passes)."""
    failures = []
    for scenario, entry in fresh["scenarios"].items():
        if not entry.get("identical_results", True):
            failures.append(f"{scenario}: engine variants disagree on results")
        base_entry = baseline["scenarios"].get(scenario)
        if base_entry is None:
            continue
        fresh_ratio = _ratio(entry, "columnar", "naive")
        base_ratio = _ratio(base_entry, "columnar", "naive")
        if fresh_ratio is not None and base_ratio:
            if fresh_ratio > base_ratio * factor:
                failures.append(
                    f"{scenario}: columnar/naive ratio regressed "
                    f"{fresh_ratio:.2f} vs baseline {base_ratio:.2f} "
                    f"(allowed factor {factor})"
                )
    map_entry = fresh["scenarios"].get("map", {})
    columnar = map_entry.get("variants", {}).get("columnar")
    if columnar is not None:
        if columnar.get("partitions_pruned", 0) <= 0:
            failures.append(
                "map: columnar variant reports no zone-map pruning "
                "(partitions_pruned == 0)"
            )
        if columnar.get("cache", {}).get("hits", 0) <= 0:
            failures.append(
                "map: columnar variant reports no result-cache hits"
            )
    return failures


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="BENCH JSON produced by this run")
    parser.add_argument("baseline", help="committed baseline BENCH JSON")
    parser.add_argument(
        "--factor", type=float, default=2.0,
        help="allowed slowdown of the columnar/naive ratio (default: 2.0)",
    )
    args = parser.parse_args(argv)
    with open(args.fresh) as handle:
        fresh = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    failures = check(fresh, baseline, args.factor)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("bench regression gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
