"""E3 (Section 2): the headline MAP query and its cardinality arithmetic.

Paper numbers: 2,423 ENCODE ChIP samples, 83,899,526 peaks, 131,780
promoters, 29 GB result.  The bench runs the exact GMQL text at reduced
scale, asserts the structural invariants that make the paper's numbers
reproducible arithmetic (output samples = promoter samples x ChIP
samples; regions per output sample = promoter count), and extrapolates
the measured result size to paper scale.
"""

import pytest

from repro.gmql import run
from repro.simulate import (
    EncodeRepository,
    GenomeLayout,
    PAPER_PROMOTERS,
    PAPER_RESULT_BYTES,
    PAPER_SAMPLES,
)

PROGRAM = """
PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
MATERIALIZE RESULT;
"""


@pytest.fixture(scope="module")
def repo():
    layout = GenomeLayout.generate(seed=42, n_genes=400, n_enhancers=200)
    return EncodeRepository.generate(
        seed=42, n_samples=32, peaks_per_sample_mean=400, layout=layout
    )


@pytest.mark.parametrize("engine", ["naive", "columnar"])
def test_headline_query(benchmark, repo, engine):
    sources = {"ANNOTATIONS": repo.annotations, "ENCODE": repo.encode}
    result = benchmark(lambda: run(PROGRAM, sources, engine=engine)["RESULT"])

    chip_samples = repo.chipseq_sample_count()
    promoters = repo.promoter_count()
    # The paper's cardinality invariants.
    assert len(result) == chip_samples
    assert all(len(sample) == promoters for sample in result)
    assert result.schema.names[-1] == "peak_count"

    measured = result.estimated_size_bytes()
    paper_cells = PAPER_PROMOTERS * PAPER_SAMPLES
    extrapolated = measured * paper_cells / (promoters * chip_samples)
    benchmark.extra_info.update(
        {
            "chip_samples": chip_samples,
            "peaks": repo.chipseq_peak_count(),
            "promoters": promoters,
            "result_regions": result.region_count(),
            "extrapolated_gb": round(extrapolated / 1024**3, 1),
            "paper_gb": round(PAPER_RESULT_BYTES / 1024**3, 1),
        }
    )
    # Same order of magnitude as the paper's 29 GB.
    assert 3 < extrapolated / 1024**3 < 300


def test_cardinality_arithmetic_holds_across_scales():
    """The paper's numbers are arithmetic: at every scale the output shape
    is (chip samples) x (promoters), so per-cell size is constant and
    extrapolation is exact."""
    per_cell = []
    for n_samples, n_genes in ((8, 100), (16, 200)):
        layout = GenomeLayout.generate(seed=9, n_genes=n_genes,
                                       n_enhancers=n_genes // 2)
        repo = EncodeRepository.generate(
            seed=9, n_samples=n_samples, peaks_per_sample_mean=120,
            layout=layout,
        )
        result = run(
            PROGRAM,
            {"ANNOTATIONS": repo.annotations, "ENCODE": repo.encode},
            engine="columnar",
        )["RESULT"]
        cells = repo.promoter_count() * repo.chipseq_sample_count()
        assert result.region_count() == cells
        per_cell.append(result.estimated_size_bytes() / cells)
    # Constant bytes-per-cell across scales (same schema width).
    assert per_cell[0] == pytest.approx(per_cell[1], rel=0.2)


def test_counts_reflect_planted_enrichment(repo):
    """MAP counts must be promoter-enriched -- the signal is real."""
    sources = {"ANNOTATIONS": repo.annotations, "ENCODE": repo.encode}
    result = run(PROGRAM, sources, engine="columnar")["RESULT"]
    total_counted = sum(
        region.values[-1] for sample in result for region in sample.regions
    )
    total_peaks = repo.chipseq_peak_count()
    promoter_bases = sum(
        p.length for p in repo.layout.promoter_regions()
    )
    genome_bases = sum(repo.layout.chromosome_sizes.values())
    background = total_peaks * promoter_bases / genome_bases
    assert total_counted > 3 * background
