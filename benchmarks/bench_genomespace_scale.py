"""E8 (Section 4.2 claim): "genome spaces of 10K genes and 100M
relationships between them".

The dense network of a G-gene genome space has G^2 relationships; this
bench verifies the arithmetic at G = 10,000, measures dense similarity
computation at tractable G, and shows the quadratic scaling that makes
"large-scale network management packages" necessary.
"""

import numpy as np
import pytest

from repro.analysis import GenomeSpace, relationship_count


def make_space(n_regions: int, n_experiments: int = 20) -> GenomeSpace:
    rng = np.random.default_rng(5)
    matrix = rng.poisson(1.0, size=(n_regions, n_experiments)).astype(float)
    labels = [f"g{i}" for i in range(n_regions)]
    coordinates = [("chr1", i * 100, i * 100 + 50, "+") for i in range(n_regions)]
    return GenomeSpace(matrix, labels, [f"e{j}" for j in range(n_experiments)],
                       coordinates)


def test_paper_relationship_arithmetic():
    assert relationship_count(10_000) == 100_000_000


@pytest.mark.parametrize("n_regions", [250, 500, 1_000])
def test_dense_similarity_scaling(benchmark, n_regions):
    benchmark.group = "dense-similarity"
    space = make_space(n_regions)
    similarity = benchmark(space.similarity_matrix, "coactivity")
    assert similarity.shape == (n_regions, n_regions)
    benchmark.extra_info["relationships"] = relationship_count(n_regions)


def test_memory_model_at_paper_scale():
    """10k x 10k float64 similarity = 800 MB: quantifying why the paper
    says such analyses need large-scale network packages."""
    bytes_needed = relationship_count(10_000) * 8
    assert bytes_needed == 800_000_000
