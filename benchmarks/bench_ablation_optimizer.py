"""E15 (ablation): the logical optimizer's rewrites.

Measures the same program with and without the optimizer on the shapes
its rules target: chained SELECTs (fusion) and SELECT-over-UNION
(pushdown).  Programmatically generated GMQL routinely contains both.
"""

import pytest

from repro.gmql.lang import compile_program, execute, optimize
from repro.simulate import workload_dataset

CHAINED_SELECTS = """
A = SELECT(dataType == 'ChipSeq') DATA;
B = SELECT(region: score > 0.2) A;
C = SELECT(region: score > 0.4) B;
D = SELECT(region: score > 0.6) C;
E = SELECT(region: score > 0.8) D;
MATERIALIZE E;
"""

SELECT_OVER_UNION = """
U = UNION() DATA OTHER;
S = SELECT(cell == 'cell1'; region: left > 5000000) U;
MATERIALIZE S;
"""


@pytest.fixture(scope="module")
def data():
    return workload_dataset(seed=71, n_samples=8, regions_per_sample=5_000)


@pytest.fixture(scope="module")
def other():
    return workload_dataset(seed=72, n_samples=8, regions_per_sample=5_000,
                            name="OTHER")


@pytest.mark.parametrize("optimized", [True, False],
                         ids=["optimized", "unoptimized"])
def test_chained_selects(benchmark, data, optimized):
    benchmark.group = "chained-selects"
    result = benchmark(
        lambda: execute(CHAINED_SELECTS, {"DATA": data},
                        optimized=optimized)["E"]
    )
    benchmark.extra_info["regions_out"] = result.region_count()


@pytest.mark.parametrize("optimized", [True, False],
                         ids=["optimized", "unoptimized"])
def test_select_over_union(benchmark, data, other, optimized):
    benchmark.group = "select-over-union"
    result = benchmark(
        lambda: execute(SELECT_OVER_UNION, {"DATA": data, "OTHER": other},
                        optimized=optimized)["S"]
    )
    benchmark.extra_info["regions_out"] = result.region_count()


def test_rewrites_fire_and_preserve_semantics(data, other):
    compiled = compile_program(CHAINED_SELECTS)
    optimized = optimize(compiled)
    assert "fuse-selects" in optimized.rewrites
    compiled_union = optimize(compile_program(SELECT_OVER_UNION))
    assert "push-select-through-union" in compiled_union.rewrites
    sources = {"DATA": data, "OTHER": other}
    for program, out in ((CHAINED_SELECTS, "E"), (SELECT_OVER_UNION, "S")):
        fast = execute(program, sources, optimized=True)[out]
        slow = execute(program, sources, optimized=False)[out]
        assert fast.region_count() == slow.region_count()
        assert len(fast) == len(slow)
