"""Concurrent query scheduling over warm backend slots.

The scheduler multiplexes admitted queries onto a bounded set of
*backend slots*.  A slot is one backend instance (created lazily, up to
``max_concurrency`` of them) that lives for the whole server: its
kernels, and -- for fan-out engines -- its borrowed handle on the warm
shared process pool, are reused by every query it runs.  Slots exist
because a backend binds one query's :class:`ExecutionContext` at a
time; the pool of slots is what turns that per-query affinity into safe
concurrency.

Synchronous kernel execution runs on a thread pool (one thread per
slot) so the asyncio event loop stays responsive while numpy and worker
processes grind.  Identical in-flight queries are *coalesced*: a
request arriving while the same program text is already executing (and
neither carries a private deadline) awaits the running task instead of
occupying a second slot -- the single-flight pattern that keeps a
thundering herd of popular queries from stampeding the kernels.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.engine.context import ExecutionContext
from repro.gdm.digest import results_digest
from repro.gmql.lang import Interpreter
from repro.resilience.clock import perf_counter


@dataclass(frozen=True)
class QueryOutcome:
    """What one scheduled query produced (shared by coalesced awaiters)."""

    results: dict
    digest: str
    queued_seconds: float
    execute_seconds: float
    cache_hits: int
    cache_misses: int
    coalesced: bool = False


class QueryScheduler:
    """Run compiled programs concurrently on warm backend slots.

    Must be driven from a single asyncio event loop (the server's); the
    kernel work itself runs on the internal thread pool.
    """

    def __init__(self, state, max_concurrency: int = 4) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        self._state = state
        self._max = max_concurrency
        self._idle: asyncio.Queue = asyncio.Queue()
        self._created: list = []  # every slot ever created (for close)
        self._threads = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="repro-serve"
        )
        self._inflight: dict = {}
        self._active = 0
        self._drained = asyncio.Event()
        self._drained.set()
        self._closed = False
        self.queries = 0
        self.coalesced = 0
        self.failures = 0

    # -- slot management ---------------------------------------------------------

    async def _acquire_slot(self):
        try:
            return self._idle.get_nowait()
        except asyncio.QueueEmpty:
            if len(self._created) < self._max:
                backend = self._state.make_backend()
                self._created.append(backend)
                return backend
            return await self._idle.get()

    def _release_slot(self, backend) -> None:
        self._idle.put_nowait(backend)

    # -- execution ---------------------------------------------------------------

    def _run_sync(self, compiled, backend, context) -> tuple:
        """Execute on the caller-thread (kernel) side; returns
        ``(results, digest, execute_seconds)``."""
        started = perf_counter()
        interpreter = Interpreter(
            backend, self._state.sources, context=context
        )
        results = interpreter.run_program(compiled)
        return results, results_digest(results), perf_counter() - started

    async def run(
        self,
        program: str,
        context: ExecutionContext | None = None,
        coalescable: bool | None = None,
    ) -> QueryOutcome:
        """Schedule one program; returns its :class:`QueryOutcome`.

        *context* carries the query's deadline/metrics; one is created
        when omitted.  The deadline is honoured end-to-end: it keeps
        ticking while the query waits for a slot, and an expired
        deadline is rejected *before* the kernel runs (the
        ``ExecutionCancelled`` raised here has executed nothing).

        *coalescable* defaults to "no private deadline": requests with
        their own time budget never piggyback on a stranger's run.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        if context is None:
            context = ExecutionContext(
                workers=self._state.workers,
                bin_size=self._state.bin_size,
                result_cache=self._state.result_cache_enabled,
            )
        if coalescable is None:
            coalescable = context.remaining_seconds() is None
        key = program.strip()
        if coalescable:
            existing = self._inflight.get(key)
            if existing is not None and not existing.done():
                self.coalesced += 1
                outcome = await asyncio.shield(existing)
                return replace(outcome, coalesced=True)
        task = asyncio.ensure_future(self._execute(program, context))
        if coalescable:
            self._inflight[key] = task
        self._active += 1
        self._drained.clear()
        try:
            return await task
        finally:
            self._active -= 1
            if self._active == 0:
                self._drained.set()
            if coalescable and self._inflight.get(key) is task:
                del self._inflight[key]

    async def _execute(
        self, program: str, context: ExecutionContext
    ) -> QueryOutcome:
        loop = asyncio.get_running_loop()
        queued_from = perf_counter()
        # Compile (cached after the first sight of a program) off the
        # event loop; semantic rejection surfaces here, before a slot or
        # kernel is touched.
        compiled = await loop.run_in_executor(
            self._threads, self._state.compile, program
        )
        backend = await self._acquire_slot()
        queued_seconds = perf_counter() - queued_from
        try:
            # A deadline that died in the queue never reaches a kernel.
            context.check()
            self.queries += 1
            results, digest, execute_seconds = await loop.run_in_executor(
                self._threads, self._run_sync, compiled, backend, context
            )
        except Exception:
            self.failures += 1
            raise
        finally:
            self._release_slot(backend)
        return QueryOutcome(
            results=results,
            digest=digest,
            queued_seconds=queued_seconds,
            execute_seconds=execute_seconds,
            cache_hits=context.metrics.counter("result_cache.hits"),
            cache_misses=context.metrics.counter("result_cache.misses"),
        )

    # -- observability / lifecycle -----------------------------------------------

    def stats(self) -> dict:
        return {
            "max_concurrency": self._max,
            "slots_created": len(self._created),
            "active": self._active,
            "queries": self.queries,
            "coalesced": self.coalesced,
            "failures": self.failures,
        }

    async def aclose(self) -> None:
        """Drain in-flight queries, then close every slot (idempotent).

        Slots close before the shared pool (owned by the warm state)
        shuts down, so shared-memory segments are unlinked only after
        all morsels using them have drained.
        """
        if self._closed:
            return
        self._closed = True
        await self._drained.wait()
        for backend in self._created:
            backend.close()
        self._created.clear()
        while not self._idle.empty():  # already closed above; just empty
            self._idle.get_nowait()
        self._threads.shutdown(wait=True)
