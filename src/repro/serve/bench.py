"""The ``concurrent-clients`` bench: warm server vs per-invocation CLI.

The resident server exists to amortise cold-start -- interpreter boot,
dataset parse, store block builds, worker-pool spin-up -- across
queries.  This scenario measures exactly that trade on one query mix:

* **cold CLI**: every request is one ``python -m repro run`` subprocess
  over the same on-disk datasets -- the pre-server cost of a query;
* **warm server**: an in-process :class:`~repro.serve.server.
  ServerThread` over the same directories, hit by N concurrent client
  threads issuing M requests each over keep-alive connections.

Reported: served throughput (qps), latency percentiles (p50/p90/p99),
the warm result-cache hit rate, coalescing counts, byte-identity of
served results against the CLI runs, and the headline
``warm_p50_speedup_vs_cold_cli`` ratio the regression gate
(``benchmarks/check_bench_regression.py --require-serving``) checks.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading

from repro.resilience.clock import perf_counter

#: Default query mix: one MAP (result-cache friendly, two sources), one
#: JOIN and one COVER -- the paper's three headline region operations.
DEFAULT_MIX = ("map", "join", "cover")


def _percentile(samples: list, fraction: float) -> float:
    """Nearest-rank percentile of *samples* (which must be non-empty)."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _subprocess_env_from_env() -> dict:
    """Environment for CLI subprocesses, derived from this process's.

    ``PYTHONPATH`` is prefixed with this repro checkout so the child
    resolves the same code under test; store/result-cache variables are
    stripped so the child is genuinely cold (nothing warm survives into
    it -- that is the number being measured).
    """
    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    previous = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_dir + (os.pathsep + previous if previous else "")
    )
    for name in (
        "REPRO_STORE_DIR",
        "REPRO_RESULT_CACHE_DIR",
        "REPRO_RESULT_CACHE_ENABLED",
    ):
        env.pop(name, None)
    return env


def _write_source_dirs(sources: dict, root: str) -> dict:
    """Materialise *sources* under *root*; returns ``{name: directory}``."""
    from repro.formats import write_dataset

    directories = {}
    for name, dataset in sources.items():
        directory = os.path.join(root, name)
        write_dataset(dataset, directory)
        directories[name] = directory
    return directories


def _cold_cli_run(
    scenario: str, program: str, source_dirs: dict, engine: str, root: str
) -> tuple:
    """One timed ``repro run`` subprocess; returns ``(seconds, digest)``.

    The digest is computed from the materialised output directories the
    child wrote, with the same :func:`~repro.gdm.digest.results_digest`
    the server answers with -- identity is checked on bytes that went
    through the full write/read round trip.
    """
    from repro.formats import read_dataset
    from repro.gdm.digest import results_digest

    program_path = os.path.join(root, f"{scenario}.gmql")
    with open(program_path, "w") as handle:
        handle.write(program)
    out_dir = os.path.join(root, f"out-{scenario}")
    command = [sys.executable, "-m", "repro", "run", program_path,
               "--engine", engine, "--out", out_dir]
    for name, directory in sorted(source_dirs.items()):
        command.extend(["--source", f"{name}={directory}"])
    started = perf_counter()
    completed = subprocess.run(
        command, env=_subprocess_env_from_env(),
        capture_output=True, text=True,
    )
    elapsed = perf_counter() - started
    if completed.returncode != 0:
        raise RuntimeError(
            f"cold CLI run of {scenario!r} failed "
            f"(exit {completed.returncode}): {completed.stderr.strip()}"
        )
    results = {
        name: read_dataset(os.path.join(out_dir, name), name)
        for name in sorted(os.listdir(out_dir))
    }
    return elapsed, results_digest(results)


def run_concurrent_clients_bench(
    scale: str = "smoke",
    seed: int = 42,
    clients: int = 4,
    requests_per_client: int = 6,
    engine: str = "auto",
    scenarios: tuple | None = None,
    workers: int | None = None,
    max_concurrency: int | None = None,
    cold_repeat: int = 2,
) -> dict:
    """Run the concurrent-clients scenario; returns its report dict."""
    from repro.bench import PROGRAMS, _sources
    from repro.formats import read_dataset
    from repro.serve.admission import AdmissionController, TenantQuota
    from repro.serve.client import ServeClient
    from repro.serve.server import QueryServer, ServerThread
    from repro.serve.state import WarmState
    from repro.store.cache import reset_result_cache

    mix = tuple(scenarios or DEFAULT_MIX)
    unknown = [name for name in mix if name not in PROGRAMS]
    if unknown:
        raise ValueError(f"unknown scenarios {unknown}; choose from "
                         f"{sorted(PROGRAMS)}")
    report: dict = {
        "scale": scale,
        "seed": seed,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "engine": engine,
        "mix": list(mix),
    }
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as root:
        source_dirs = _write_source_dirs(_sources(scale, seed), root)

        # -- cold CLI reference: one subprocess per request ------------------
        cold_latencies: dict = {name: [] for name in mix}
        cli_digests: dict = {}
        for scenario in mix:
            for __ in range(max(1, cold_repeat)):
                elapsed, digest = _cold_cli_run(
                    scenario, PROGRAMS[scenario], source_dirs, engine, root
                )
                cold_latencies[scenario].append(elapsed)
                cli_digests[scenario] = digest
        cold_all = [s for values in cold_latencies.values() for s in values]
        report["cold_cli"] = {
            "runs": {name: values for name, values in cold_latencies.items()},
            "p50_seconds": _percentile(cold_all, 0.50),
            "mean_seconds": sum(cold_all) / len(cold_all),
        }

        # -- warm server under concurrent load -------------------------------
        # The server parses the same directories the CLI read, so both
        # sides digest data that went through one write/read round trip.
        served_sources = {
            name: read_dataset(directory, name)
            for name, directory in source_dirs.items()
        }
        reset_result_cache()
        state = WarmState(
            served_sources, engine=engine, workers=workers,
            result_cache_enabled=True,
        )
        admission = AdmissionController(
            default_quota=TenantQuota(
                max_concurrent=max(8, clients * 2),
                max_per_window=None,
                max_deadline_seconds=None,
            )
        )
        server = QueryServer(
            state, admission=admission,
            max_concurrency=max_concurrency or max(2, min(clients, 8)),
        )
        latencies: list = []
        errors: list = []
        mismatches: list = []
        lock = threading.Lock()

        def client_worker(index: int) -> None:
            client = ServeClient(port=thread.port)
            try:
                for request in range(requests_per_client):
                    scenario = mix[(index + request) % len(mix)]
                    started = perf_counter()
                    response = client.query(
                        PROGRAMS[scenario], tenant=f"client-{index}"
                    )
                    elapsed = perf_counter() - started
                    with lock:
                        if not response.ok:
                            errors.append(
                                (scenario, response.status,
                                 response.payload.get("error"))
                            )
                        else:
                            latencies.append(elapsed)
                            if (response.payload["digest"]
                                    != cli_digests[scenario]):
                                mismatches.append(scenario)
            finally:
                client.close()

        with ServerThread(server) as thread:
            warm_client = ServeClient(port=thread.port)
            warm_seconds = state.warm_seconds
            # Warm-up pass: every scenario once, so steady-state numbers
            # measure the resident server, not its first-touch misses.
            for scenario in mix:
                response = warm_client.query(PROGRAMS[scenario])
                if not response.ok:
                    raise RuntimeError(
                        f"warm-up of {scenario!r} failed: {response.payload}"
                    )
            workers_started = perf_counter()
            threads = [
                threading.Thread(target=client_worker, args=(index,))
                for index in range(clients)
            ]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join()
            wall_seconds = perf_counter() - workers_started
            stats = warm_client.stats().payload
            warm_client.close()

    cache = stats["result_cache"]
    lookups = cache["hits"] + cache["misses"]
    report["warm_server"] = {
        "warm_seconds": warm_seconds,
        "wall_seconds": wall_seconds,
        "requests": len(latencies),
        "errors": len(errors),
        "error_detail": errors[:5],
        "qps": len(latencies) / wall_seconds if wall_seconds else None,
        "p50_seconds": _percentile(latencies, 0.50) if latencies else None,
        "p90_seconds": _percentile(latencies, 0.90) if latencies else None,
        "p99_seconds": _percentile(latencies, 0.99) if latencies else None,
        "cache_hits": cache["hits"],
        "cache_misses": cache["misses"],
        "cache_hit_rate": cache["hits"] / lookups if lookups else 0.0,
        "coalesced": stats["scheduler"]["coalesced"],
        "scheduler": stats["scheduler"],
    }
    report["identical_to_cli"] = not mismatches and not errors and bool(
        latencies
    )
    warm_p50 = report["warm_server"]["p50_seconds"]
    report["warm_p50_speedup_vs_cold_cli"] = (
        report["cold_cli"]["p50_seconds"] / warm_p50 if warm_p50 else None
    )
    return report


def render_serving_summary(report: dict) -> str:
    """Human-readable lines for the CLI output."""
    warm = report["warm_server"]
    lines = [
        f"\nconcurrent-clients:  {report['clients']} client(s) x "
        f"{report['requests_per_client']} request(s), mix "
        f"{'/'.join(report['mix'])}, engine {report['engine']}",
        f"  cold CLI   p50 {report['cold_cli']['p50_seconds'] * 1000:9.1f} ms"
        f"  (one subprocess per query)",
    ]
    if warm["p50_seconds"] is not None:
        lines.append(
            f"  warm serve p50 {warm['p50_seconds'] * 1000:9.1f} ms"
            f"  p99 {warm['p99_seconds'] * 1000:9.1f} ms"
            f"  {warm['qps']:8.1f} qps"
        )
    lines.append(
        f"  cache hit rate {warm['cache_hit_rate'] * 100:5.1f}%"
        f"  ({warm['cache_hits']}/{warm['cache_hits'] + warm['cache_misses']}"
        f" lookups), {warm['coalesced']} coalesced, {warm['errors']} error(s)"
    )
    speedup = report["warm_p50_speedup_vs_cold_cli"]
    if speedup is not None:
        lines.append(
            f"  warm server vs cold CLI: {speedup:.1f}x at p50"
        )
    if not report["identical_to_cli"]:
        lines.append("  WARNING: served results differ from CLI runs")
    return "\n".join(lines)
