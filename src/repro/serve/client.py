"""A small keep-alive HTTP client for the query server.

Built on :mod:`http.client` (stdlib, blocking) because its consumers --
the test-suite, the bench harness's client threads and the CI smoke
gate -- are synchronous; one :class:`ServeClient` per thread, one
persistent connection per client, mirroring how a real service client
would amortise connection setup across a session of queries.
"""

from __future__ import annotations

import http.client
import json


class ServeResponse:
    """Status + parsed JSON payload of one server response."""

    def __init__(self, status: int, payload: dict, headers: dict) -> None:
        self.status = status
        self.payload = payload
        self.headers = headers

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServeResponse(status={self.status}, payload={self.payload})"


class ServeClient:
    """Blocking JSON client over one keep-alive connection.

    Not thread-safe: use one client per thread (the underlying
    ``HTTPConnection`` serialises request/response pairs).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 120.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> ServeResponse:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # The keep-alive connection died (server restart, timeout);
            # retry once on a fresh connection before giving up.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        parsed = json.loads(raw.decode()) if raw else {}
        return ServeResponse(
            response.status, parsed, dict(response.getheaders())
        )

    # -- endpoint helpers --------------------------------------------------------

    def healthz(self) -> ServeResponse:
        return self.request("GET", "/healthz")

    def stats(self) -> ServeResponse:
        return self.request("GET", "/stats")

    def datasets(self) -> ServeResponse:
        return self.request("GET", "/datasets")

    def check(self, program: str) -> ServeResponse:
        return self.request("POST", "/check", {"program": program})

    def query(
        self,
        program: str,
        tenant: str | None = None,
        deadline_seconds: float | None = None,
    ) -> ServeResponse:
        payload: dict = {"program": program}
        if tenant is not None:
            payload["tenant"] = tenant
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return self.request("POST", "/query", payload)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
