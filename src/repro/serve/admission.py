"""Admission control: reject over-quota work before any execution.

A resident multi-tenant server must not let one tenant starve the rest,
and must not spend kernel time on requests that are doomed (deadline
already hopeless, tenant failing repeatedly).  Admission happens before
a query touches the scheduler: the only costs paid for a rejected
request are a dictionary lookup and a couple of counter bumps.

Three per-tenant quota axes, all optional:

* **concurrency** -- at most ``max_concurrent`` queries in flight;
* **rate** -- at most ``max_per_window`` admissions per sliding
  ``window_seconds`` window;
* **deadline** -- a request may not ask for (or default to) more than
  ``max_deadline_seconds`` of execution budget.

On top of the quotas sits one :class:`~repro.resilience.breaker.
CircuitBreaker` per tenant (the same machinery federation uses per
host): execution failures are recorded against the tenant, and once the
breaker opens further requests fail fast with ``retry after`` guidance
instead of occupying backend slots.

Admission state is guarded by one lock so the controller can be driven
from the asyncio event loop and from worker threads alike.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import CircuitOpenError, ReproError
from repro.resilience.breaker import BreakerRegistry
from repro.resilience.clock import Clock, SystemClock


class AdmissionRejected(ReproError):
    """A request was refused before execution.

    ``reason`` is a stable machine-readable token (``over-concurrency``,
    ``over-rate``, ``over-deadline``, ``breaker-open``); ``status`` the
    HTTP status the server should answer with; ``retry_after_seconds``
    a hint for rate/breaker rejections (``None`` otherwise).
    """

    def __init__(
        self,
        message: str,
        reason: str,
        status: int = 429,
        retry_after_seconds: float | None = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.status = status
        self.retry_after_seconds = retry_after_seconds


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits; ``None`` disables an axis."""

    max_concurrent: int | None = 4
    max_per_window: int | None = None
    window_seconds: float = 60.0
    max_deadline_seconds: float | None = 30.0

    @classmethod
    def parse(cls, spec: str) -> "TenantQuota":
        """Build a quota from ``concurrent=2,rate=10,window=60,deadline=5``.

        Every key is optional; unknown keys raise ``ValueError`` so CLI
        typos fail loudly at startup rather than silently not limiting.
        """
        values: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            if not sep:
                raise ValueError(
                    f"quota clause {part!r} is not KEY=VALUE"
                )
            key = key.strip().lower()
            raw = raw.strip()
            if key == "concurrent":
                values["max_concurrent"] = int(raw)
            elif key == "rate":
                values["max_per_window"] = int(raw)
            elif key == "window":
                values["window_seconds"] = float(raw)
            elif key == "deadline":
                values["max_deadline_seconds"] = float(raw)
            else:
                raise ValueError(
                    f"unknown quota key {key!r} "
                    f"(known: concurrent, rate, window, deadline)"
                )
        return cls(**values)


@dataclass
class AdmissionTicket:
    """Proof of admission; hand it back via ``release``."""

    tenant: str
    admitted_at: float
    deadline_seconds: float | None
    released: bool = False


@dataclass
class _TenantState:
    """Book-keeping for one tenant."""

    in_flight: int = 0
    admitted: int = 0
    rejected: dict = field(default_factory=dict)
    recent: deque = field(default_factory=deque)  # admission timestamps


class AdmissionController:
    """Gate requests against per-tenant quotas and breakers."""

    def __init__(
        self,
        default_quota: TenantQuota | None = None,
        quotas: dict | None = None,
        clock: Clock | None = None,
        breaker_failure_threshold: int = 5,
        breaker_reset_seconds: float = 30.0,
    ) -> None:
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self.clock = clock or SystemClock()
        self.breakers = BreakerRegistry(
            failure_threshold=breaker_failure_threshold,
            reset_seconds=breaker_reset_seconds,
            clock=self.clock,
        )
        self._tenants: dict = {}
        self._lock = threading.Lock()

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState()
            self._tenants[tenant] = state
        return state

    def _reject(
        self,
        state: _TenantState,
        message: str,
        reason: str,
        status: int = 429,
        retry_after_seconds: float | None = None,
    ) -> AdmissionRejected:
        state.rejected[reason] = state.rejected.get(reason, 0) + 1
        return AdmissionRejected(
            message, reason, status=status,
            retry_after_seconds=retry_after_seconds,
        )

    def admit(
        self, tenant: str, deadline_seconds: float | None = None
    ) -> AdmissionTicket:
        """Admit one query for *tenant* or raise :class:`AdmissionRejected`.

        Returns a ticket carrying the *effective* deadline: the request's
        own ask, capped by (and defaulting to) the tenant quota's
        ``max_deadline_seconds``.
        """
        quota = self.quota_for(tenant)
        now = self.clock.monotonic()
        with self._lock:
            state = self._state(tenant)
            try:
                self.breakers.get(tenant).before_call()
            except CircuitOpenError as exc:
                raise self._reject(
                    state, str(exc), "breaker-open", status=503,
                    retry_after_seconds=self.breakers.reset_seconds,
                ) from None
            cap = quota.max_deadline_seconds
            if (
                deadline_seconds is not None
                and cap is not None
                and deadline_seconds > cap
            ):
                raise self._reject(
                    state,
                    f"requested deadline {deadline_seconds:.3f}s exceeds "
                    f"the tenant cap of {cap:.3f}s",
                    "over-deadline", status=422,
                )
            if deadline_seconds is not None and deadline_seconds <= 0:
                raise self._reject(
                    state,
                    f"requested deadline {deadline_seconds:.3f}s is not "
                    f"positive",
                    "over-deadline", status=422,
                )
            if (
                quota.max_concurrent is not None
                and state.in_flight >= quota.max_concurrent
            ):
                raise self._reject(
                    state,
                    f"tenant {tenant!r} already has {state.in_flight} "
                    f"queries in flight (quota: {quota.max_concurrent})",
                    "over-concurrency",
                )
            if quota.max_per_window is not None:
                horizon = now - quota.window_seconds
                recent = state.recent
                while recent and recent[0] <= horizon:
                    recent.popleft()
                if len(recent) >= quota.max_per_window:
                    raise self._reject(
                        state,
                        f"tenant {tenant!r} exceeded "
                        f"{quota.max_per_window} queries per "
                        f"{quota.window_seconds:g}s window",
                        "over-rate",
                        retry_after_seconds=max(
                            0.0, recent[0] + quota.window_seconds - now
                        ),
                    )
                recent.append(now)
            state.in_flight += 1
            state.admitted += 1
        return AdmissionTicket(
            tenant=tenant,
            admitted_at=now,
            deadline_seconds=(
                deadline_seconds if deadline_seconds is not None else cap
            ),
        )

    def release(self, ticket: AdmissionTicket, failed: bool = False) -> None:
        """Finish one admitted query; *failed* feeds the tenant breaker.

        Idempotent: a ticket releases at most once, so a server error
        path that releases in two places cannot drive ``in_flight``
        negative.
        """
        with self._lock:
            if ticket.released:
                return
            ticket.released = True
            state = self._state(ticket.tenant)
            state.in_flight = max(0, state.in_flight - 1)
            breaker = self.breakers.get(ticket.tenant)
            if failed:
                breaker.record_failure()
            else:
                breaker.record_success()

    def stats(self) -> dict:
        """Per-tenant admission counters plus breaker states."""
        with self._lock:
            tenants = {
                tenant: {
                    "in_flight": state.in_flight,
                    "admitted": state.admitted,
                    "rejected": dict(state.rejected),
                }
                for tenant, state in sorted(self._tenants.items())
            }
            return {
                "tenants": tenants,
                "breakers": self.breakers.states(),
            }
