"""Warm server state: everything a query should not pay for twice.

One :class:`WarmState` lives for the whole ``repro serve`` process and
holds the state the CLI rebuilds (and discards) per invocation:

* the **source datasets**, parsed once at startup;
* their **columnar store blocks** (:meth:`warm` builds every store up
  front, so steady-state queries map warm blocks instead of racing to
  build them);
* the **compiled-program cache** -- GMQL text compiles (and optimizes)
  once per distinct program, with exact schemas from the resident
  sources, so repeat queries skip parse/analyze/optimize entirely;
* one **shared worker process pool**, handed to every backend slot the
  scheduler creates, so fan-out kernels of concurrent queries multiplex
  onto the same warm workers;
* the process-wide **result cache** (two-level when a store root is
  configured), which this module only configures -- entries live in
  :mod:`repro.store.cache`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor

from repro.engine.dispatch import get_backend
from repro.resilience.clock import monotonic, perf_counter


class WarmState:
    """Resident datasets, caches and the shared worker pool.

    Parameters
    ----------
    sources:
        ``{name: Dataset}`` served to every query.
    engine:
        Backend name each scheduler slot runs
        (``naive``/``columnar``/``parallel``/``auto``).
    workers:
        Worker-process count for the shared pool (``None``: the
        parallel backend's default sizing).
    store_dir:
        Persistent store root; the server sets it process-wide for its
        lifetime so blocks and disk-level result-cache entries survive
        restarts (see :mod:`repro.store.persist`).
    result_cache_enabled:
        Whether query contexts may serve plan nodes from the
        process-wide fingerprint cache (on by default -- amortising it
        across requests is the point of a resident server).
    bin_size:
        Zone-map bin size forwarded to every query context.
    """

    def __init__(
        self,
        sources: dict,
        engine: str = "auto",
        workers: int | None = None,
        store_dir: str | None = None,
        result_cache_enabled: bool = True,
        bin_size: int | None = None,
    ) -> None:
        self.sources = dict(sources)
        self.engine = engine
        self.workers = workers
        self.store_dir = store_dir
        self.result_cache_enabled = result_cache_enabled
        self.bin_size = bin_size
        self.started_at = monotonic()
        self.warm_seconds: float | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._compiled: dict = {}
        self._compile_lock = threading.Lock()
        self.compile_hits = 0
        self.compile_misses = 0

    # -- warm-up -----------------------------------------------------------------

    def warm(self) -> float:
        """Build every source's store blocks up front; returns seconds.

        Two reasons to pay this at startup rather than lazily: the first
        queries are not taxed with block builds, and concurrent first
        queries cannot race to build the same store (the build happens
        once, here, before the listener opens).  With a store root the
        build persists segments; a restart maps them instead.
        """
        started = perf_counter()
        for dataset in self.sources.values():
            store = dataset.store(self.bin_size)
            for sample in dataset:
                store.blocks(sample)
            store.zone_map()
        self.warm_seconds = perf_counter() - started
        return self.warm_seconds

    # -- compiled-program cache --------------------------------------------------

    def compile(self, program: str):
        """The optimized :class:`CompiledProgram` for *program* (cached).

        Compilation runs the full semantic analyzer against the resident
        sources (exact schemas), so invalid programs raise
        :class:`~repro.errors.GmqlCompileError` here -- the server's
        cheap ``repro check``-equivalent gate -- before any backend slot
        or kernel is touched.  Compile *failures* are not cached:
        callers reject them outright and a retry loop re-paying the
        parse is the safer trade.
        """
        key = program.strip()
        with self._compile_lock:
            compiled = self._compiled.get(key)
            if compiled is not None:
                self.compile_hits += 1
                return compiled
        from repro.gmql.lang import compile_program, optimize

        compiled = optimize(compile_program(program, datasets=self.sources))
        with self._compile_lock:
            self._compiled.setdefault(key, compiled)
            self.compile_misses += 1
            return self._compiled[key]

    # -- shared worker pool ------------------------------------------------------

    def shared_pool(self) -> ProcessPoolExecutor | None:
        """The process pool backend slots borrow (lazily created).

        Only engines that fan out get one; ``naive``/``columnar`` slots
        never pay worker start-up.
        """
        if self.engine not in ("parallel", "auto"):
            return None
        with self._pool_lock:
            if self._pool is None:
                from repro.engine.parallel import default_workers

                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers or default_workers()
                )
            return self._pool

    def make_backend(self):
        """A fresh backend slot wired to the shared pool.

        Each slot is bound to one query's context at a time (backends
        carry per-query context state), but all slots submit morsels to
        the one warm pool, so worker processes are shared server-wide.
        """
        if self.engine == "parallel":
            from repro.engine.parallel import ParallelBackend

            return ParallelBackend(
                max_workers=self.workers, pool=self.shared_pool()
            )
        if self.engine == "auto":
            from repro.engine.auto import AutoBackend

            return AutoBackend(
                workers=self.workers, pool=self.shared_pool()
            )
        return get_backend(self.engine)

    # -- observability / lifecycle -----------------------------------------------

    def stats(self) -> dict:
        """Warm-state snapshot for ``GET /stats``."""
        store_totals = {
            "blocks_built": 0, "blocks_mapped": 0,
            "blocks_evicted": 0, "resident_bytes": 0,
        }
        for dataset in self.sources.values():
            for key, value in dataset.store_stats().items():
                store_totals[key] += value
        return {
            "engine": self.engine,
            "uptime_seconds": monotonic() - self.started_at,
            "warm_seconds": self.warm_seconds,
            "sources": {
                name: {
                    "samples": len(dataset),
                    "regions": dataset.region_count(),
                }
                for name, dataset in sorted(self.sources.items())
            },
            "store": store_totals,
            "store_dir": self.store_dir,
            "compiled_programs": len(self._compiled),
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
            "pool_workers": (
                self._pool._max_workers if self._pool is not None else 0
            ),
        }

    def close(self) -> None:
        """Shut the shared pool down (idempotent); slots close elsewhere."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
