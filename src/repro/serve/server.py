"""The asyncio HTTP/JSON front end for the resident query engine.

One :class:`QueryServer` owns the serving stack: a :class:`~repro.serve.
state.WarmState` (datasets, store blocks, compiled programs, shared
worker pool), an :class:`~repro.serve.admission.AdmissionController`
(per-tenant quotas and breakers, applied before anything executes) and a
:class:`~repro.serve.scheduler.QueryScheduler` (bounded concurrent
execution over warm backend slots).

The HTTP layer is deliberately minimal -- an HTTP/1.1 subset (request
line, headers, ``Content-Length`` bodies, keep-alive) over
``asyncio.start_server`` -- because the standard library ships no async
HTTP server and this repo takes no dependencies.  Endpoints:

========  ============  =================================================
method    path          purpose
========  ============  =================================================
GET       /healthz      liveness probe
GET       /stats        warm-state/scheduler/admission/cache counters
GET       /datasets     resident sources (names, sample/region counts)
POST      /check        compile-only validation (no admission charge)
POST      /query        admit, schedule and execute one GMQL program
========  ============  =================================================

:class:`ServerThread` runs the whole stack on a private event loop in a
daemon thread, which is how the test-suite, the bench harness and the CI
smoke gate embed a live server in an otherwise synchronous process.
"""

from __future__ import annotations

import asyncio
import json
import threading

from repro.engine.context import ExecutionContext
from repro.errors import (
    ExecutionCancelled,
    GmqlCompileError,
    GmqlSyntaxError,
    ReproError,
)
from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.serve.scheduler import QueryScheduler
from repro.serve.state import WarmState

#: Largest accepted request body; a GMQL program is text, so anything
#: beyond this is a client bug (or abuse) and answered with 413.
MAX_BODY_BYTES = 1 << 20

#: Hard cap on one header section.
MAX_HEADER_BYTES = 64 * 1024

DEFAULT_TENANT = "default"


class _HttpError(Exception):
    """Internal: abort request handling with a specific status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


def _render_outputs(results: dict) -> dict:
    """JSON-friendly view of materialized outputs (summaries + rows)."""
    outputs = {}
    for name in sorted(results):
        dataset = results[name]
        outputs[name] = {
            "samples": len(dataset),
            "regions": dataset.region_count(),
            "schema": list(dataset.schema.names),
        }
    return outputs


class QueryServer:
    """HTTP/JSON query service over one :class:`WarmState`.

    Drive it from an event loop via :meth:`start`/:meth:`stop`, or use
    :meth:`serve_forever` (the CLI) / :class:`ServerThread` (embedders).
    """

    def __init__(
        self,
        state: WarmState,
        admission: AdmissionController | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 4,
    ) -> None:
        self.state = state
        self.admission = admission or AdmissionController()
        self.host = host
        self.port = port
        self.max_concurrency = max_concurrency
        self.scheduler: QueryScheduler | None = None
        self._server: asyncio.AbstractServer | None = None
        self._connections: set = set()
        self.requests = 0

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Warm the state and open the listener; sets :attr:`port`."""
        if self.state.warm_seconds is None:
            self.state.warm()
        self.scheduler = QueryScheduler(
            self.state, max_concurrency=self.max_concurrency
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, release warm state."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.scheduler is not None:
            await self.scheduler.aclose()
            self.scheduler = None
        # Idle keep-alive connections sit parked in a read; cancel them
        # (in-flight queries already drained with the scheduler above).
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        self.state.close()

    async def serve_forever(self) -> None:
        """``start`` then block until the listener is closed."""
        await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- HTTP plumbing -----------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._respond(
                        writer, exc.status, {"error": str(exc)}, close=True
                    )
                    return
                if request is None:
                    return
                method, path, headers, body = request
                self.requests += 1
                status, payload, extra = await self._dispatch(
                    method, path, headers, body
                )
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                )
                await self._respond(
                    writer, status, payload,
                    close=not keep_alive, extra_headers=extra,
                )
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass
            # Discard only after the writer is fully closed: a task
            # parked in wait_closed must stay visible to stop()'s
            # cancel-and-gather sweep or the loop can stop under it.
            self._connections.discard(task)

    async def _read_request(self, reader):
        """Parse one request; ``None`` on clean EOF between requests."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _HttpError(400, "truncated request") from None
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "header section too large") from None
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "header section too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {lines[0]!r}")
        method, path, _version = parts
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header {line!r}")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _respond(
        self, writer, status, payload, close=False, extra_headers=None
    ) -> None:
        body = json.dumps(payload).encode()
        reason = _REASONS.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------------

    async def _dispatch(self, method, path, headers, body):
        """Route one request; returns ``(status, payload, extra_headers)``."""
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok"}, None
        if path == "/stats" and method == "GET":
            return 200, self._stats_payload(), None
        if path == "/datasets" and method == "GET":
            return 200, {
                "datasets": self.state.stats()["sources"],
            }, None
        if path == "/check" and method == "POST":
            return await self._handle_check(headers, body)
        if path == "/query" and method == "POST":
            return await self._handle_query(headers, body)
        if path in ("/healthz", "/stats", "/datasets", "/check", "/query"):
            return 405, {"error": f"{method} not supported on {path}"}, None
        return 404, {"error": f"no route for {path}"}, None

    def _stats_payload(self) -> dict:
        from repro.store.cache import result_cache

        return {
            "requests": self.requests,
            "state": self.state.stats(),
            "scheduler": (
                self.scheduler.stats() if self.scheduler is not None else {}
            ),
            "admission": self.admission.stats(),
            "result_cache": result_cache().stats(),
        }

    def _parse_body(self, headers, body) -> dict:
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        if "tenant" not in payload and "x-tenant" in headers:
            payload["tenant"] = headers["x-tenant"]
        return payload

    async def _handle_check(self, headers, body):
        """Compile-only validation; never admitted, never executed."""
        try:
            payload = self._parse_body(headers, body)
        except _HttpError as exc:
            return exc.status, {"error": str(exc)}, None
        program = payload.get("program")
        if not isinstance(program, str) or not program.strip():
            return 400, {"error": "missing 'program' string"}, None
        loop = asyncio.get_running_loop()
        try:
            compiled = await loop.run_in_executor(
                None, self.state.compile, program
            )
        except (GmqlSyntaxError, GmqlCompileError) as exc:
            return 400, {
                "valid": False,
                "error": str(exc),
                "diagnostics": [
                    str(d) for d in getattr(exc, "diagnostics", ())
                ],
            }, None
        return 200, {
            "valid": True,
            "outputs": sorted(compiled.outputs),
        }, None

    async def _handle_query(self, headers, body):
        """Admission -> schedule -> execute -> JSON result."""
        try:
            payload = self._parse_body(headers, body)
        except _HttpError as exc:
            return exc.status, {"error": str(exc)}, None
        program = payload.get("program")
        if not isinstance(program, str) or not program.strip():
            return 400, {"error": "missing 'program' string"}, None
        tenant = str(payload.get("tenant") or DEFAULT_TENANT)
        deadline = payload.get("deadline_seconds")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                return 400, {
                    "error": "deadline_seconds must be a number",
                }, None

        try:
            ticket = self.admission.admit(tenant, deadline_seconds=deadline)
        except AdmissionRejected as exc:
            extra = None
            if exc.retry_after_seconds is not None:
                extra = {"Retry-After": f"{exc.retry_after_seconds:.0f}"}
            return exc.status, {
                "error": str(exc),
                "reason": exc.reason,
                "rejected_before_execution": True,
            }, extra

        context = ExecutionContext(
            timeout_seconds=ticket.deadline_seconds,
            workers=self.state.workers,
            bin_size=self.state.bin_size,
            result_cache=self.state.result_cache_enabled,
        )
        executed = False
        try:
            outcome = await self.scheduler.run(
                program, context=context,
                coalescable=ticket.deadline_seconds is None,
            )
            executed = True
        except (GmqlSyntaxError, GmqlCompileError) as exc:
            # A program that fails the compile gate never executed and
            # is the client's fault, not the tenant's service health.
            self.admission.release(ticket, failed=False)
            return 400, {
                "error": str(exc),
                "reason": "compile-error",
                "diagnostics": [
                    str(d) for d in getattr(exc, "diagnostics", ())
                ],
                "rejected_before_execution": True,
            }, None
        except ExecutionCancelled as exc:
            self.admission.release(ticket, failed=True)
            return 504, {
                "error": str(exc),
                "reason": "deadline-exceeded",
                "rejected_before_execution": not context.tracer.roots,
            }, None
        except ReproError as exc:
            self.admission.release(ticket, failed=True)
            return 500, {"error": str(exc), "reason": "execution-error"}, None
        finally:
            if executed:
                self.admission.release(ticket, failed=False)

        return 200, {
            "tenant": tenant,
            "digest": outcome.digest,
            "outputs": _render_outputs(outcome.results),
            "timing": {
                "queued_ms": outcome.queued_seconds * 1000.0,
                "execute_ms": outcome.execute_seconds * 1000.0,
            },
            "cache": {
                "hits": outcome.cache_hits,
                "misses": outcome.cache_misses,
            },
            "coalesced": outcome.coalesced,
        }, None


class ServerThread:
    """A :class:`QueryServer` on a private event loop in a daemon thread.

    Synchronous embedders (tests, the bench harness, the smoke gate)
    enter via :meth:`start`, which blocks until the listener is bound
    and exposes the ephemeral port; :meth:`stop` runs the full graceful
    shutdown on the loop and joins the thread.  Context-manager use
    guarantees the warm state (and its worker pool) is released.
    """

    def __init__(self, server: QueryServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 60.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start within timeout")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:  # surface to the caller thread
                self._startup_error = exc
                raise
            finally:
                self._ready.set()

        try:
            loop.run_until_complete(main())
        except BaseException:
            loop.close()
            return
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
