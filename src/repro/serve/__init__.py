"""GMQL-as-a-Service: a resident query server over warm state.

The paper's section 4.3 argues for a custom-query *service* over the
repository; "Genomics as a Service" (PAPERS.md) makes the same case at
cloud scale.  The CLI pays cold-start on every invocation -- interpreter
boot, dataset parse, store block builds, worker-pool spin-up -- and then
throws the warm state away.  This package keeps it resident:

* :class:`~repro.serve.state.WarmState` -- source datasets, their
  columnar store blocks, the compiled-program cache and one shared
  worker process pool, loaded once and reused by every query;
* :class:`~repro.serve.admission.AdmissionController` -- per-tenant
  concurrency/rate/deadline quotas plus a per-tenant circuit breaker,
  rejecting over-quota work before any execution;
* :class:`~repro.serve.scheduler.QueryScheduler` -- multiplexes
  concurrent compiled plans onto a bounded set of warm backend slots,
  coalescing identical in-flight queries;
* :class:`~repro.serve.server.QueryServer` -- the asyncio HTTP/JSON
  front end (``repro serve``);
* :class:`~repro.serve.client.ServeClient` -- a small keep-alive client
  used by tests, the bench harness and the CI smoke gate.

See ``docs/SERVING.md`` for endpoints, tenancy and the warm-state
lifecycle.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionRejected,
    AdmissionTicket,
    TenantQuota,
)
from repro.serve.client import ServeClient
from repro.serve.scheduler import QueryOutcome, QueryScheduler
from repro.serve.server import QueryServer, ServerThread
from repro.serve.state import WarmState

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionTicket",
    "QueryOutcome",
    "QueryScheduler",
    "QueryServer",
    "ServeClient",
    "ServerThread",
    "TenantQuota",
    "WarmState",
]
