"""A local sharded cluster: worker-process nodes plus a sharded client.

:class:`LocalCluster` is the one-call harness behind ``repro run
--federate N`` and the sharded bench variant: it spawns *N* federation
nodes as real OS processes (each with its own catalog, staging area and
-- optionally -- persistent store root), partitions every source dataset
into chromosome-group shards across them, and fronts the lot with a
:class:`~repro.federation.planner.FederatedClient` whose
:meth:`~repro.federation.planner.FederatedClient.run_sharded` does
shard-aware placement, pushes kernel sub-plans, and merges the streamed
partial aggregates.

With a *store_root*, all nodes and the client share one persistent store
tree: staged partials spill to content-addressed files and come back to
the client as mmap handles instead of streamed chunks (the co-resident
fast path).
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile

from multiprocessing.connection import Client

from repro.errors import FederationError
from repro.resilience.clock import monotonic, sleep
from repro.federation.planner import FederatedClient, FederatedOutcome
from repro.federation.shards import (
    dataset_manifest,
    partition_chromosomes,
    slice_dataset,
)
from repro.federation.transfer import Network
from repro.federation.worker import WorkerNodeProxy, serve_node

#: Shared secret of the cluster's local sockets (isolation comes from
#: the per-cluster socket directory, not the key).
_AUTHKEY = b"repro-cluster"


class LocalCluster:
    """*nodes* federation worker processes over partitioned *sources*.

    Sources are partitioned by chromosome group (greedy byte-balanced;
    one group per node).  Every node receives *every* dataset as its
    group's slice -- all samples kept, regions narrowed -- so discovery
    and positional sample alignment work identically on each node;
    nodes beyond the chromosome count hold empty slices and serve as
    pure compute targets for shipped shards.
    """

    def __init__(
        self,
        sources: dict,
        nodes: int = 2,
        *,
        store_root: str | None = None,
        context=None,
        seed: int = 0,
        connect_timeout: float = 30.0,
    ) -> None:
        if nodes <= 0:
            raise FederationError(f"a cluster needs >= 1 node, got {nodes}")
        self.node_count = nodes
        self.store_root = store_root
        self._dir = tempfile.mkdtemp(prefix="repro-cluster-")
        self.processes: list = []
        self.proxies: list = []
        weights: dict = {}
        for dataset in sources.values():
            for chrom, stats in dataset_manifest(dataset).chrom_stats().items():
                weights[chrom] = weights.get(chrom, 0) + stats[2]
        groups = (
            partition_chromosomes(weights, nodes) if weights else ((),)
        )
        try:
            for index in range(nodes):
                name = f"node{index}"
                address = f"{self._dir}/{name}.sock"
                process = multiprocessing.Process(
                    target=serve_node,
                    args=(address, _AUTHKEY, name, store_root),
                    daemon=True,
                )
                process.start()
                self.processes.append(process)
                connection = self._connect(address, process, connect_timeout)
                self.proxies.append(WorkerNodeProxy(name, connection))
            for index, proxy in enumerate(self.proxies):
                group = groups[index] if index < len(groups) else ()
                for dataset in sources.values():
                    proxy.load(slice_dataset(dataset, group))
        except BaseException:
            self.close()
            raise
        self.client = FederatedClient(
            self.proxies,
            Network(),
            context=context,
            seed=seed,
            shared_root=store_root,
        )

    @staticmethod
    def _connect(address: str, process, timeout: float):
        """Connect to a worker's listener, waiting for it to come up."""
        deadline = monotonic() + timeout
        while True:
            try:
                return Client(address, family="AF_UNIX", authkey=_AUTHKEY)
            except (FileNotFoundError, ConnectionRefusedError):
                if not process.is_alive():
                    raise FederationError(
                        f"worker process for {address} died during startup"
                    ) from None
                if monotonic() > deadline:
                    raise FederationError(
                        f"worker at {address} did not come up in {timeout}s"
                    ) from None
                sleep(0.01)

    def run(self, program: str, engine: str = "columnar",
            max_shards: int | None = None) -> FederatedOutcome:
        """Sharded execution of *program* across the cluster."""
        return self.client.run_sharded(program, engine, max_shards=max_shards)

    def close(self) -> None:
        """Shut every worker down and remove the socket directory."""
        for proxy in self.proxies:
            proxy.shutdown()
        for process in self.processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self.proxies = []
        self.processes = []
        shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
