"""Federated execution strategies: query shipping, data shipping, scatter.

"Queries move from a requesting node to a remote node, are locally
executed, and results are communicated back to the requesting node; this
paradigm allows for distributing the processing to data, transferring
only query results which are usually small in size" (section 4.4).

:class:`FederatedClient` implements the strategies over a set of
:class:`~repro.federation.node.FederationNode` instances and a planner
that picks the cheaper one from compile-time estimates -- letting
experiment E9 report measured bytes for each.

Every remote interaction goes through a
:class:`~repro.resilience.ResilientCaller`: transient faults are retried
with seeded backoff, per-host circuit breakers stop hammering dead
hosts, chunk payloads are integrity-checked (corrupted transfers are
re-fetched), and retry backoff is billed as simulated network time.
:meth:`FederatedClient.run_scatter` adds partial-result degradation: a
plan over partitioned data completes with ``degraded=True`` naming the
skipped hosts instead of raising when some hosts stay down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import (
    CircuitOpenError,
    FederationError,
    HostDownError,
    RetryExhaustedError,
)
from repro.federation.node import FederationNode
from repro.federation.transfer import Network
from repro.gmql.lang import compile_program, execute
from repro.resilience import (
    BreakerRegistry,
    ResilientCaller,
    RetryPolicy,
    SimulatedClock,
)

#: Failures that mean "this host is unusable right now" -- the planner
#: degrades around them rather than aborting the whole plan.
HOST_FAILURES = (RetryExhaustedError, CircuitOpenError, HostDownError)


@dataclass
class FederatedOutcome:
    """Result of a federated execution, with its traffic bill."""

    strategy: str
    results: dict                 # output name -> summary dict
    bytes_moved: int
    message_count: int
    executing_node: str
    degraded: bool = False        # True when hosts were skipped
    skipped_hosts: tuple = ()     # (host, reason) pairs, sorted by host
    retries: int = 0              # failed attempts that were retried

    def report(self) -> str:
        """One-line human summary (used by tests and the CLI)."""
        skipped = ", ".join(host for host, __ in self.skipped_hosts)
        state = f"DEGRADED (skipped: {skipped})" if self.degraded else "complete"
        return (
            f"{self.strategy}: {state}, {len(self.results)} result(s), "
            f"{self.bytes_moved} byte(s), {self.retries} retry(ies)"
        )


class FederatedClient:
    """A requesting site that knows every node but owns no data."""

    def __init__(
        self,
        nodes: list,
        network: Network,
        name: str = "client",
        *,
        policy: RetryPolicy | None = None,
        breakers: BreakerRegistry | None = None,
        context=None,
        seed: int = 0,
    ) -> None:
        if not nodes:
            raise FederationError("a federation needs at least one node")
        self.name = name
        self.nodes = {node.name: node for node in nodes}
        self.network = network
        self.context = context
        #: (host, reason) pairs skipped by the most recent discovery.
        self.last_skipped: tuple = ()
        #: ``{dataset: summary}`` from the most recent discovery.
        self.last_summaries: dict = {}
        # Backoff sleeps advance simulated time on the shared network
        # log, so resilience overhead lands in the same bill as latency.
        self.clock = SimulatedClock(sink=network.log)
        self.caller = ResilientCaller(
            policy or RetryPolicy(),
            breakers=breakers or BreakerRegistry(
                failure_threshold=5, reset_seconds=30.0, clock=self.clock
            ),
            clock=self.clock,
            seed=seed,
            context=context,
        )

    # -- discovery ----------------------------------------------------------------

    def discover(self) -> dict:
        """``{dataset_name: node_name}`` across the *reachable* federation.

        Unreachable nodes are skipped (and recorded in
        :attr:`last_skipped`) rather than failing discovery outright.
        """
        location: dict = {}
        skipped = []
        summaries: dict = {}
        for node in self.nodes.values():
            try:
                info = self.caller.call(
                    node.name, "info", lambda n=node: n.handle_info(self.name)
                )
            except HOST_FAILURES as exc:
                skipped.append((node.name, _brief(exc)))
                continue
            for summary in info.summaries:
                location[summary["name"]] = node.name
                summaries[summary["name"]] = summary
        self.last_skipped = tuple(sorted(skipped))
        self.last_summaries = summaries
        return location

    def _remote_schemas(self, summaries: dict) -> dict:
        """``{dataset: RegionSchema}`` rebuilt from discovery summaries.

        Nodes publish ``schema_types`` (attribute -> GDM type name) in
        their info summaries; older peers that omit it simply contribute
        no schema, which keeps analysis open-world for their datasets.
        """
        from repro.gdm import RegionSchema, type_named

        schemas = {}
        for name, summary in summaries.items():
            types = summary.get("schema_types")
            if not types:
                continue
            schemas[name] = RegionSchema.of(
                *((attr, type_named(t)) for attr, t in types.items())
            )
        return schemas

    def _plan_locations(self, program: str) -> dict:
        location = self.discover()
        # Compile *after* discovery so semantic analysis sees the
        # published remote schemas: a program that misuses a remote
        # attribute is rejected here, before any subplan is shipped.
        compiled = compile_program(
            program, schemas=self._remote_schemas(self.last_summaries)
        )
        missing = [s for s in compiled.sources if s not in location]
        if missing:
            detail = ""
            if self.last_skipped:
                unreachable = ", ".join(h for h, __ in self.last_skipped)
                detail = f" (unreachable node(s): {unreachable})"
            raise FederationError(f"no node hosts {missing}{detail}")
        return {source: location[source] for source in compiled.sources}

    # -- resilient transfer helpers -----------------------------------------------

    def _pull(self, node: FederationNode, ticket: str, chunk_count: int
              ) -> bytes:
        """Pull and verify every chunk of a staged result.

        Each chunk is its own resilient call: a corrupted payload fails
        verification and is re-requested under the retry policy.
        """
        parts = []
        for index in range(chunk_count):
            response = self.caller.call(
                node.name,
                "chunk",
                lambda i=index: node.handle_chunk(
                    self.name, ticket, i
                ).verified_data(),
            )
            parts.append(response)
        return b"".join(parts)

    def _collect_outputs(self, node: FederationNode, execute_response) -> dict:
        """Pull every staged output; returns summaries keyed by output."""
        results = {}
        for output_name, ticket, size, chunk_count in execute_response.tickets:
            payload = self._pull(node, ticket, chunk_count)
            results[output_name] = {
                "size_bytes": size,
                "ticket": ticket,
                "sha256": hashlib.sha256(payload).hexdigest(),
            }
        return results

    # -- strategies ------------------------------------------------------------------

    def run_query_shipping(self, program: str, engine: str = "naive"
                           ) -> FederatedOutcome:
        """Ship the query to the node holding the most data; ship only the
        (small) other sources there; pull back only result chunks."""
        baseline_messages = self.network.log.message_count()
        baseline_bytes = self.network.log.bytes_total
        baseline_retries = self.caller.retries
        locations = self._plan_locations(program)
        sizes = {
            name: self.nodes[node_name].catalog.get(name).estimated_size_bytes()
            for name, node_name in locations.items()
        }
        # Execute where the most bytes already live.
        bytes_per_node: dict = {}
        for name, node_name in locations.items():
            bytes_per_node[node_name] = bytes_per_node.get(node_name, 0) + sizes[name]
        target_name = max(bytes_per_node, key=lambda n: bytes_per_node[n])
        target = self.nodes[target_name]
        for name, node_name in locations.items():
            if node_name != target_name:
                source = self.nodes[node_name]
                self.caller.call(
                    node_name, "ship",
                    lambda s=source, n=name: s.ship_dataset(n, target),
                )
        compile_response = self.caller.call(
            target_name, "compile",
            lambda: target.handle_compile(self.name, program),
        )
        if not compile_response.ok:
            raise FederationError(f"remote compilation failed: "
                                  f"{compile_response.error}")
        execute_response = self.caller.call(
            target_name, "execute",
            lambda: target.handle_execute(self.name, program, engine),
        )
        results = self._collect_outputs(target, execute_response)
        return FederatedOutcome(
            strategy="query-shipping",
            results=results,
            bytes_moved=self.network.log.bytes_total - baseline_bytes,
            message_count=self.network.log.message_count() - baseline_messages,
            executing_node=target_name,
            retries=self.caller.retries - baseline_retries,
        )

    def run_data_shipping(self, program: str, engine: str = "naive"
                          ) -> FederatedOutcome:
        """Fetch every source dataset to the client and execute locally --
        "most of today's implementations" per the paper."""
        baseline_messages = self.network.log.message_count()
        baseline_bytes = self.network.log.bytes_total
        baseline_retries = self.caller.retries
        locations = self._plan_locations(program)
        sources = {}
        for name, node_name in locations.items():
            node = self.nodes[node_name]

            def fetch(node=node, name=name):
                from repro.federation.protocol import DatasetTransfer

                node.network.fire(f"federation.ship:{node.name}")
                dataset = node.catalog.get(name)
                transfer = DatasetTransfer(name, dataset.estimated_size_bytes())
                self.network.send(node.name, self.name, "dataset-transfer",
                                  transfer.size_bytes())
                return dataset

            sources[name] = self.caller.call(node_name, "fetch", fetch)
        results_data = execute(program, sources, engine=engine)
        results = {
            name: {"size_bytes": ds.estimated_size_bytes()}
            for name, ds in results_data.items()
        }
        return FederatedOutcome(
            strategy="data-shipping",
            results=results,
            bytes_moved=self.network.log.bytes_total - baseline_bytes,
            message_count=self.network.log.message_count() - baseline_messages,
            executing_node=self.name,
            retries=self.caller.retries - baseline_retries,
        )

    def run_scatter(self, program: str, engine: str = "naive"
                    ) -> FederatedOutcome:
        """Run *program* on every node that hosts all its sources and
        gather per-node results (the partitioned-data strategy).

        This is the degrading plan: a node that is down -- or dies while
        serving -- is *skipped*, and the outcome reports ``degraded=True``
        with the skipped hosts named, instead of the whole plan raising.
        Only when every candidate node fails does the plan raise.
        """
        baseline_messages = self.network.log.message_count()
        baseline_bytes = self.network.log.bytes_total
        baseline_retries = self.caller.retries
        compiled = compile_program(program)
        needed = set(compiled.sources)
        per_node: dict = {}
        skipped = []
        candidates = 0
        for node_name, node in self.nodes.items():
            try:
                info = self.caller.call(
                    node_name, "info", lambda n=node: n.handle_info(self.name)
                )
            except HOST_FAILURES as exc:
                skipped.append((node_name, _brief(exc)))
                continue
            hosted = {summary["name"] for summary in info.summaries}
            if not needed <= hosted:
                continue            # not a partition holder; not "skipped"
            candidates += 1
            try:
                execute_response = self.caller.call(
                    node_name, "execute",
                    lambda n=node: n.handle_execute(self.name, program, engine),
                )
                per_node[node_name] = self._collect_outputs(
                    node, execute_response
                )
            except HOST_FAILURES as exc:
                skipped.append((node_name, _brief(exc)))
        if not per_node:
            reasons = "; ".join(f"{h}: {r}" for h, r in sorted(skipped))
            raise FederationError(
                f"scatter plan found no usable node for {sorted(needed)} "
                f"({candidates} candidate(s); {reasons or 'none reachable'})"
            )
        return FederatedOutcome(
            strategy="scatter-gather",
            results=per_node,
            bytes_moved=self.network.log.bytes_total - baseline_bytes,
            message_count=self.network.log.message_count() - baseline_messages,
            executing_node=",".join(sorted(per_node)),
            degraded=bool(skipped),
            skipped_hosts=tuple(sorted(skipped)),
            retries=self.caller.retries - baseline_retries,
        )

    # -- the planner --------------------------------------------------------------------

    def estimate_strategies(self, program: str) -> dict:
        """Estimated bytes for each strategy, from summaries alone."""
        locations = self._plan_locations(program)
        source_bytes = 0
        summaries: dict = {}
        for name, node_name in locations.items():
            dataset = self.nodes[node_name].catalog.get(name)
            source_bytes += dataset.estimated_size_bytes()
            summaries[name] = dataset.summary()
        from repro.federation.estimator import estimate_plan
        from repro.gmql.lang import optimize

        compiled = optimize(compile_program(program))
        result_bytes = sum(
            estimate_plan(plan, summaries).size_bytes()
            for plan in compiled.outputs.values()
        )
        return {
            "data-shipping": source_bytes,
            "query-shipping": result_bytes,
        }

    def run(self, program: str, engine: str = "naive") -> FederatedOutcome:
        """Pick the cheaper strategy by estimate and execute it.

        When the chosen strategy fails on a host-level fault (a node
        died mid-plan, or its breaker opened), the planner falls back to
        the other strategy once before giving up -- a different strategy
        may route around the sick host.
        """
        estimates = self.estimate_strategies(program)
        if estimates["query-shipping"] <= estimates["data-shipping"]:
            order = (self.run_query_shipping, self.run_data_shipping)
        else:
            order = (self.run_data_shipping, self.run_query_shipping)
        try:
            return order[0](program, engine)
        except HOST_FAILURES:
            return order[1](program, engine)


def _brief(error: Exception) -> str:
    """Compact reason string for skipped-host reports."""
    if isinstance(error, RetryExhaustedError) and error.last_error is not None:
        return f"{type(error.last_error).__name__} after {error.attempts} attempt(s)"
    return type(error).__name__
