"""Federated execution strategies: query shipping, data shipping, scatter.

"Queries move from a requesting node to a remote node, are locally
executed, and results are communicated back to the requesting node; this
paradigm allows for distributing the processing to data, transferring
only query results which are usually small in size" (section 4.4).

:class:`FederatedClient` implements the strategies over a set of
:class:`~repro.federation.node.FederationNode` instances and a planner
that picks the cheaper one from compile-time estimates -- letting
experiment E9 report measured bytes for each.

Every remote interaction goes through a
:class:`~repro.resilience.ResilientCaller`: transient faults are retried
with seeded backoff, per-host circuit breakers stop hammering dead
hosts, chunk payloads are integrity-checked (corrupted transfers are
re-fetched), and retry backoff is billed as simulated network time.
:meth:`FederatedClient.run_scatter` adds partial-result degradation: a
plan over partitioned data completes with ``degraded=True`` naming the
skipped hosts instead of raising when some hosts stay down.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpenError,
    FederationError,
    HostDownError,
    RetryExhaustedError,
)
from repro.federation.estimator import (
    estimate_shard_outputs,
    place_shards,
)
from repro.federation.merge import (
    merge_partials,
    parse_staged_sections,
    read_blob_sections,
    split_sections,
)
from repro.federation.node import FederationNode
from repro.federation.protocol import ShardTransfer
from repro.federation.shards import partition_chromosomes
from repro.federation.transfer import Network
from repro.gdm import chromosome_sort_key
from repro.gmql.lang import compile_program, execute, optimize
from repro.gmql.lang.effects import annotate_effects
from repro.repository.staging import _serialise_sections
from repro.resilience.clock import perf_counter
from repro.resilience import (
    BreakerRegistry,
    ResilientCaller,
    RetryPolicy,
    SimulatedClock,
)

#: Failures that mean "this host is unusable right now" -- the planner
#: degrades around them rather than aborting the whole plan.
HOST_FAILURES = (RetryExhaustedError, CircuitOpenError, HostDownError)


@dataclass
class FederatedOutcome:
    """Result of a federated execution, with its traffic bill."""

    strategy: str
    results: dict                 # output name -> summary dict
    bytes_moved: int
    message_count: int
    executing_node: str
    degraded: bool = False        # True when hosts/shards were skipped
    skipped_hosts: tuple = ()     # (host, reason) pairs, sorted by host
    retries: int = 0              # failed attempts that were retried
    #: Chromosome groups that produced no partial ("chr1+chr2", reason).
    skipped_shards: tuple = ()
    #: Merged result datasets by output name (sharded strategy only).
    datasets: dict | None = None
    #: Per-node self-measured kernel seconds (sharded strategy only).
    node_seconds: dict = field(default_factory=dict)
    #: Client-side partial-merge seconds (sharded strategy only).
    merge_seconds: float = 0.0

    def cluster_seconds(self) -> float:
        """Critical-path execution time of a sharded run: the slowest
        node's own kernel time plus the client merge.  On a single-CPU
        test box the node processes time-slice each other, so this --
        not wall clock -- is the multi-host scaling projection."""
        slowest = max(self.node_seconds.values(), default=0.0)
        return slowest + self.merge_seconds

    def report(self) -> str:
        """One-line human summary (used by tests and the CLI)."""
        skipped = ", ".join(host for host, __ in self.skipped_hosts)
        state = f"DEGRADED (skipped: {skipped})" if self.degraded else "complete"
        line = (
            f"{self.strategy}: {state}, {len(self.results)} result(s), "
            f"{self.bytes_moved} byte(s), {self.retries} retry(ies)"
        )
        if self.skipped_shards:
            groups = ", ".join(group for group, __ in self.skipped_shards)
            line += f", skipped shard(s): {groups}"
        return line


class FederatedClient:
    """A requesting site that knows every node but owns no data."""

    def __init__(
        self,
        nodes: list,
        network: Network,
        name: str = "client",
        *,
        policy: RetryPolicy | None = None,
        breakers: BreakerRegistry | None = None,
        context=None,
        seed: int = 0,
        shared_root: str | None = None,
    ) -> None:
        if not nodes:
            raise FederationError("a federation needs at least one node")
        self.name = name
        self.nodes = {node.name: node for node in nodes}
        self.network = network
        self.context = context
        #: Persistent store root shared with co-resident nodes; when
        #: set, sharded partials are fetched as spill-file handles
        #: (mmap) instead of streamed chunks whenever a node offers one.
        self.shared_root = shared_root
        #: (host, reason) pairs skipped by the most recent discovery.
        self.last_skipped: tuple = ()
        #: ``{dataset: summary}`` from the most recent discovery.
        self.last_summaries: dict = {}
        # Backoff sleeps advance simulated time on the shared network
        # log, so resilience overhead lands in the same bill as latency.
        self.clock = SimulatedClock(sink=network.log)
        self.caller = ResilientCaller(
            policy or RetryPolicy(),
            breakers=breakers or BreakerRegistry(
                failure_threshold=5, reset_seconds=30.0, clock=self.clock
            ),
            clock=self.clock,
            seed=seed,
            context=context,
        )

    # -- discovery ----------------------------------------------------------------

    def discover(self) -> dict:
        """``{dataset_name: node_name}`` across the *reachable* federation.

        Unreachable nodes are skipped (and recorded in
        :attr:`last_skipped`) rather than failing discovery outright.
        """
        location: dict = {}
        skipped = []
        summaries: dict = {}
        for node in self.nodes.values():
            try:
                info = self.caller.call(
                    node.name, "info", lambda n=node: n.handle_info(self.name)
                )
            except HOST_FAILURES as exc:
                skipped.append((node.name, _brief(exc)))
                continue
            for summary in info.summaries:
                location[summary["name"]] = node.name
                summaries[summary["name"]] = summary
        self.last_skipped = tuple(sorted(skipped))
        self.last_summaries = summaries
        return location

    def _remote_schemas(self, summaries: dict) -> dict:
        """``{dataset: RegionSchema}`` rebuilt from discovery summaries.

        Nodes publish ``schema_types`` (attribute -> GDM type name) in
        their info summaries; older peers that omit it simply contribute
        no schema, which keeps analysis open-world for their datasets.
        """
        from repro.gdm import RegionSchema, type_named

        schemas = {}
        for name, summary in summaries.items():
            types = summary.get("schema_types")
            if not types:
                continue
            schemas[name] = RegionSchema.of(
                *((attr, type_named(t)) for attr, t in types.items())
            )
        return schemas

    def _plan_locations(self, program: str) -> dict:
        location = self.discover()
        # Compile *after* discovery so semantic analysis sees the
        # published remote schemas: a program that misuses a remote
        # attribute is rejected here, before any subplan is shipped.
        compiled = compile_program(
            program, schemas=self._remote_schemas(self.last_summaries)
        )
        missing = [s for s in compiled.sources if s not in location]
        if missing:
            detail = ""
            if self.last_skipped:
                unreachable = ", ".join(h for h, __ in self.last_skipped)
                detail = f" (unreachable node(s): {unreachable})"
            raise FederationError(f"no node hosts {missing}{detail}")
        return {source: location[source] for source in compiled.sources}

    # -- resilient transfer helpers -----------------------------------------------

    def _pull(self, node: FederationNode, ticket: str, chunk_count: int
              ) -> bytes:
        """Pull and verify every chunk of a staged result.

        Each chunk is its own resilient call: a corrupted payload fails
        verification and is re-requested under the retry policy.
        """
        parts = []
        for index in range(chunk_count):
            response = self.caller.call(
                node.name,
                "chunk",
                lambda i=index: node.handle_chunk(
                    self.name, ticket, i
                ).verified_data(),
            )
            parts.append(response)
        return b"".join(parts)

    def _collect_outputs(self, node: FederationNode, execute_response) -> dict:
        """Pull every staged output; returns summaries keyed by output."""
        results = {}
        for output_name, ticket, size, chunk_count in execute_response.tickets:
            payload = self._pull(node, ticket, chunk_count)
            results[output_name] = {
                "size_bytes": size,
                "ticket": ticket,
                "sha256": hashlib.sha256(payload).hexdigest(),
            }
        return results

    # -- strategies ------------------------------------------------------------------

    def run_query_shipping(self, program: str, engine: str = "naive"
                           ) -> FederatedOutcome:
        """Ship the query to the node holding the most data; ship only the
        (small) other sources there; pull back only result chunks."""
        baseline_messages = self.network.log.message_count()
        baseline_bytes = self.network.log.bytes_total
        baseline_retries = self.caller.retries
        locations = self._plan_locations(program)
        sizes = {
            name: self.nodes[node_name].catalog.get(name).estimated_size_bytes()
            for name, node_name in locations.items()
        }
        # Execute where the most bytes already live.
        bytes_per_node: dict = {}
        for name, node_name in locations.items():
            bytes_per_node[node_name] = bytes_per_node.get(node_name, 0) + sizes[name]
        target_name = max(bytes_per_node, key=lambda n: bytes_per_node[n])
        target = self.nodes[target_name]
        for name, node_name in locations.items():
            if node_name != target_name:
                source = self.nodes[node_name]
                self.caller.call(
                    node_name, "ship",
                    lambda s=source, n=name: s.ship_dataset(n, target),
                )
        compile_response = self.caller.call(
            target_name, "compile",
            lambda: target.handle_compile(self.name, program),
        )
        if not compile_response.ok:
            raise FederationError(f"remote compilation failed: "
                                  f"{compile_response.error}")
        execute_response = self.caller.call(
            target_name, "execute",
            lambda: target.handle_execute(self.name, program, engine),
        )
        results = self._collect_outputs(target, execute_response)
        return FederatedOutcome(
            strategy="query-shipping",
            results=results,
            bytes_moved=self.network.log.bytes_total - baseline_bytes,
            message_count=self.network.log.message_count() - baseline_messages,
            executing_node=target_name,
            retries=self.caller.retries - baseline_retries,
        )

    def run_data_shipping(self, program: str, engine: str = "naive"
                          ) -> FederatedOutcome:
        """Fetch every source dataset to the client and execute locally --
        "most of today's implementations" per the paper."""
        baseline_messages = self.network.log.message_count()
        baseline_bytes = self.network.log.bytes_total
        baseline_retries = self.caller.retries
        locations = self._plan_locations(program)
        sources = {}
        for name, node_name in locations.items():
            node = self.nodes[node_name]

            def fetch(node=node, name=name):
                from repro.federation.protocol import DatasetTransfer

                node.network.fire(f"federation.ship:{node.name}")
                dataset = node.catalog.get(name)
                transfer = DatasetTransfer(name, dataset.estimated_size_bytes())
                self.network.send(node.name, self.name, "dataset-transfer",
                                  transfer.size_bytes())
                return dataset

            sources[name] = self.caller.call(node_name, "fetch", fetch)
        results_data = execute(program, sources, engine=engine)
        results = {
            name: {"size_bytes": ds.estimated_size_bytes()}
            for name, ds in results_data.items()
        }
        return FederatedOutcome(
            strategy="data-shipping",
            results=results,
            bytes_moved=self.network.log.bytes_total - baseline_bytes,
            message_count=self.network.log.message_count() - baseline_messages,
            executing_node=self.name,
            retries=self.caller.retries - baseline_retries,
        )

    def run_scatter(self, program: str, engine: str = "naive"
                    ) -> FederatedOutcome:
        """Run *program* on every node that hosts all its sources and
        gather per-node results (the partitioned-data strategy).

        This is the degrading plan: a node that is down -- or dies while
        serving -- is *skipped*, and the outcome reports ``degraded=True``
        with the skipped hosts named, instead of the whole plan raising.
        Only when every candidate node fails does the plan raise.
        """
        baseline_messages = self.network.log.message_count()
        baseline_bytes = self.network.log.bytes_total
        baseline_retries = self.caller.retries
        compiled = compile_program(program)
        needed = set(compiled.sources)
        per_node: dict = {}
        skipped = []
        candidates = 0
        for node_name, node in self.nodes.items():
            try:
                info = self.caller.call(
                    node_name, "info", lambda n=node: n.handle_info(self.name)
                )
            except HOST_FAILURES as exc:
                skipped.append((node_name, _brief(exc)))
                continue
            hosted = {summary["name"] for summary in info.summaries}
            if not needed <= hosted:
                continue            # not a partition holder; not "skipped"
            candidates += 1
            try:
                execute_response = self.caller.call(
                    node_name, "execute",
                    lambda n=node: n.handle_execute(self.name, program, engine),
                )
                per_node[node_name] = self._collect_outputs(
                    node, execute_response
                )
            except HOST_FAILURES as exc:
                skipped.append((node_name, _brief(exc)))
        if not per_node:
            reasons = "; ".join(f"{h}: {r}" for h, r in sorted(skipped))
            raise FederationError(
                f"scatter plan found no usable node for {sorted(needed)} "
                f"({candidates} candidate(s); {reasons or 'none reachable'})"
            )
        return FederatedOutcome(
            strategy="scatter-gather",
            results=per_node,
            bytes_moved=self.network.log.bytes_total - baseline_bytes,
            message_count=self.network.log.message_count() - baseline_messages,
            executing_node=",".join(sorted(per_node)),
            degraded=bool(skipped),
            skipped_hosts=tuple(sorted(skipped)),
            retries=self.caller.retries - baseline_retries,
        )

    # -- sharded cluster execution ------------------------------------------------

    def _metric(self, name: str, amount: int) -> None:
        """Account a federation counter on the execution context."""
        if self.context is not None and amount:
            self.context.metrics.increment(name, amount)

    def _fetch_partial(self, node, node_name: str, ticket: str,
                       chunk_count: int, meta_len: int) -> tuple:
        """``(meta, regions)`` sections of one staged shard partial.

        With a shared persistent store root the client first asks for a
        spill-file handle and memory-maps the content-addressed file
        (the co-resident fast path -- only the ~160-byte handle crosses
        the network); otherwise, or when the node staged in memory, the
        partial streams back chunk by chunk with per-chunk integrity
        verification and re-fetch.
        """
        if self.shared_root is not None:
            handle = self.caller.call(
                node_name, "blob",
                lambda: node.handle_blob(self.name, ticket),
            )
            if handle.ok and os.path.exists(handle.path):
                sections = read_blob_sections(handle.path)
                if sections is not None:
                    self._metric("federation.bytes_mapped",
                                 handle.meta_len + handle.region_len)
                    return sections
        payload = self._pull(node, ticket, chunk_count)
        self._metric("federation.bytes_streamed", len(payload))
        return split_sections(payload, meta_len)

    def run_sharded(self, program: str, engine: str = "columnar",
                    max_shards: int | None = None) -> FederatedOutcome:
        """Shard-aware cluster execution: place chromosome shard groups
        on nodes by modelled cost, push the kernelized sub-plan to each,
        and merge the streamed partial aggregates.

        The placement unit is a chromosome group (every genometric
        operator matches within one chromosome only); the transfer and
        accounting unit is the (sample, chromosome) shard.  Nodes that
        die mid-shard degrade the outcome -- their groups land in
        ``skipped_shards`` and the merged result covers the surviving
        shards -- mirroring :meth:`run_scatter`'s semantics.

        Shardability is *inferred per output* from the plan's effect
        annotations (:mod:`repro.gmql.lang.effects`): chromosome-local
        outputs shard into placement groups, while outputs whose subtree
        aggregates across chromosomes (EXTEND/MERGE/ORDER/GROUP) run in
        a separate whole-genome round on one node.  Only when *no*
        output is local -- or sources are not chromosome-clustered --
        does the plan fall back to the whole-dataset planner.

        *max_shards* caps the number of shard groups (default: one
        group per chromosome, the finest placement granularity).
        """
        baseline_messages = self.network.log.message_count()
        baseline_bytes = self.network.log.bytes_total
        baseline_retries = self.caller.retries
        # Discovery, per node: the same info handler the other
        # strategies use, but summaries are kept per node because the
        # shard manifests differ across a partitioned federation.
        per_node: dict = {}
        skipped: list = []
        for node_name, node in self.nodes.items():
            try:
                info = self.caller.call(
                    node_name, "info", lambda n=node: n.handle_info(self.name)
                )
            except HOST_FAILURES as exc:
                skipped.append((node_name, _brief(exc)))
                continue
            per_node[node_name] = {
                summary["name"]: summary for summary in info.summaries
            }
        if not per_node:
            reasons = "; ".join(f"{h}: {r}" for h, r in sorted(skipped))
            raise FederationError(
                f"sharded plan found no reachable node ({reasons})"
            )
        # Merge per-node summaries into a federation-wide shard map plus
        # a residency map.  A shard may be replicated; the fullest copy
        # (most regions) defines its true statistics.
        merged: dict = {}
        residency_stats: dict = {}   # dataset -> chrom -> node -> stats
        for node_name, summaries in per_node.items():
            for name, summary in summaries.items():
                entry = merged.get(name)
                if entry is None:
                    entry = dict(summary)
                    entry["shards"] = {"clustered": True, "chroms": {}}
                    merged[name] = entry
                shards = summary.get("shards") or {}
                if not shards.get("clustered", True):
                    entry["shards"]["clustered"] = False
                for chrom, stats in (shards.get("chroms") or {}).items():
                    slot = entry["shards"]["chroms"].setdefault(
                        chrom, [0, 0, 0]
                    )
                    if stats[1] > slot[1]:
                        slot[:] = list(stats)
                    residency_stats.setdefault(name, {}).setdefault(
                        chrom, {}
                    )[node_name] = stats
        for entry in merged.values():
            chroms = entry["shards"]["chroms"]
            ordered = {
                chrom: chroms[chrom]
                for chrom in sorted(chroms, key=chromosome_sort_key)
            }
            entry["shards"]["chroms"] = ordered
            entry["regions"] = sum(stats[1] for stats in ordered.values())
            entry["size_bytes"] = sum(stats[2] for stats in ordered.values())
        self.last_summaries = merged
        compiled = compile_program(
            program, schemas=self._remote_schemas(merged)
        )
        missing = [s for s in compiled.sources if s not in merged]
        if missing:
            raise FederationError(f"no node hosts {missing}")
        optimized = optimize(compiled)
        # Effect inference replaces the old SHARDABLE_PLANS allowlist:
        # every output is gated on its own inferred chromosome locality,
        # so one EXTEND output no longer sinks the whole program to
        # whole-dataset strategies.
        annotate_effects(optimized, summaries=merged)
        local_outputs = {
            name: plan
            for name, plan in optimized.outputs.items()
            if plan.effects.chrom_local
        }
        global_outputs = {
            name: plan
            for name, plan in optimized.outputs.items()
            if name not in local_outputs
        }
        clustered = all(
            (merged[src].get("shards") or {}).get("clustered", False)
            for src in optimized.sources
        )
        # Per-chromosome load (bytes across all source datasets): the
        # weights that balance shard groups and drive placement.
        weights: dict = {}
        for src in optimized.sources:
            for chrom, stats in merged[src]["shards"]["chroms"].items():
                weights[chrom] = weights.get(chrom, 0) + stats[2]
        if not weights:
            raise FederationError(
                f"sources {sorted(optimized.sources)} hold no regions to shard"
            )
        if not clustered or not local_outputs:
            if all(
                getattr(node, "catalog", None) is not None
                for node in self.nodes.values()
            ):
                # Nothing shards (or sources are not clustered) and
                # every node is catalog-backed: the whole-dataset
                # planner wins outright.
                return self.run(program, engine)
            if not clustered:
                raise FederationError(
                    "sharded execution needs chromosome-clustered sources"
                )
        # Per-output execution rounds: chromosome-local outputs shard
        # into placement groups; outputs whose subtree aggregates across
        # chromosomes (``effects.locality_breaker``) run as one
        # whole-genome group -- slicing to every chromosome is the
        # identity, so the same shard protocol serves both.
        all_chroms = tuple(sorted(weights, key=chromosome_sort_key))
        rounds: list = []
        if clustered and local_outputs:
            if max_shards is not None:
                local_groups = partition_chromosomes(weights, max_shards)
            else:
                local_groups = tuple((chrom,) for chrom in all_chroms)
            rounds.append((local_groups, tuple(local_outputs)))
        if global_outputs:
            rounds.append(((all_chroms,), tuple(global_outputs)))
        skipped_shards: list = []
        partials: dict = {}
        node_seconds: dict = {}
        used: set = set()
        placed_chroms: set = set()
        for round_groups, round_outputs in rounds:
            self._execute_shard_round(
                program, engine, round_outputs, round_groups,
                optimized, merged, residency_stats, per_node, weights,
                partials, node_seconds, used, placed_chroms,
                skipped, skipped_shards,
            )
        if not partials:
            reasons = "; ".join(
                f"{group}: {reason}" for group, reason in skipped_shards
            ) or "; ".join(f"{h}: {r}" for h, r in sorted(skipped))
            raise FederationError(
                f"sharded plan found no usable node for "
                f"{sorted(optimized.sources)} ({reasons or 'none reachable'})"
            )
        # Merge: interleave chromosome runs, never re-aggregate.
        merge_started = perf_counter()
        datasets: dict = {}
        results: dict = {}
        for output_name in optimized.outputs:
            pieces = partials.get(output_name)
            if not pieces:
                continue
            dataset = merge_partials(pieces, name=output_name)
            datasets[output_name] = dataset
            meta_blob, region_blob = _serialise_sections(dataset)
            results[output_name] = {
                "size_bytes": dataset.estimated_size_bytes(),
                "regions": dataset.region_count(),
                "sha256": hashlib.sha256(
                    meta_blob + region_blob
                ).hexdigest(),
            }
        merge_seconds = perf_counter() - merge_started
        skipped_chroms: set = set()
        for group_text, __ in skipped_shards:
            skipped_chroms.update(group_text.split("+"))

        def shard_count(chrom_set) -> int:
            total = 0
            for src in optimized.sources:
                for chrom, stats in merged[src]["shards"]["chroms"].items():
                    if chrom in chrom_set:
                        total += stats[0]
            return total

        self._metric("federation.shards_placed", shard_count(placed_chroms))
        self._metric("federation.shards_skipped", shard_count(skipped_chroms))
        return FederatedOutcome(
            strategy="sharded",
            results=results,
            bytes_moved=self.network.log.bytes_total - baseline_bytes,
            message_count=self.network.log.message_count() - baseline_messages,
            executing_node=",".join(sorted(used)),
            degraded=bool(skipped or skipped_shards),
            skipped_hosts=tuple(sorted(skipped)),
            skipped_shards=tuple(skipped_shards),
            datasets=datasets,
            node_seconds=node_seconds,
            merge_seconds=merge_seconds,
            retries=self.caller.retries - baseline_retries,
        )

    def _execute_shard_round(
        self,
        program: str,
        engine: str,
        outputs: tuple,
        groups: tuple,
        optimized,
        merged: dict,
        residency_stats: dict,
        per_node: dict,
        weights: dict,
        partials: dict,
        node_seconds: dict,
        used: set,
        placed_chroms: set,
        skipped: list,
        skipped_shards: list,
    ) -> None:
        """Place, ship and execute one round of shard *groups* computing
        the given *outputs*; partials and accounting accumulate into the
        caller's collections (a node serving several rounds sums its
        kernel seconds)."""
        plans = [optimized.outputs[name] for name in outputs]
        # Cost-based placement over the live nodes.
        group_bytes = {
            group: sum(weights[chrom] for chrom in group) for group in groups
        }
        result_bytes = {
            group: estimate_shard_outputs(plans, merged, group)
            for group in groups
        }
        residency: dict = {}
        for group in groups:
            per = {}
            for node_name in per_node:
                resident = 0
                for src in optimized.sources:
                    for chrom in group:
                        stats = residency_stats.get(src, {}).get(
                            chrom, {}
                        ).get(node_name)
                        if stats is not None:
                            resident += stats[2]
                per[node_name] = resident
            residency[group] = per
        placements = place_shards(
            groups, residency, group_bytes, result_bytes, list(per_node)
        )
        # Ship source shards the placement moved away from their data:
        # donor nodes serve exactly the missing chromosome slices, the
        # client relays them to the executing node.
        dead_groups: set = set()
        for placement in placements:
            target_name = placement.node
            target = self.nodes[target_name]
            group = placement.chroms
            failed = None
            for src in sorted(optimized.sources):
                merged_chroms = merged[src]["shards"]["chroms"]
                need = []
                for chrom in group:
                    stats = merged_chroms.get(chrom)
                    if stats is None or stats[1] == 0:
                        continue
                    have = residency_stats.get(src, {}).get(chrom, {}).get(
                        target_name
                    )
                    if have is None or have[1] < stats[1]:
                        need.append(chrom)
                if not need:
                    continue
                by_donor: dict = {}
                for chrom in need:
                    stats = merged_chroms[chrom]
                    holders = residency_stats.get(src, {}).get(chrom, {})
                    donor = next(
                        (
                            n for n in per_node
                            if n != target_name
                            and holders.get(n, (0, 0, 0))[1] >= stats[1]
                        ),
                        None,
                    )
                    if donor is None:
                        failed = (group, f"no donor holds {src}:{chrom}")
                        break
                    by_donor.setdefault(donor, []).append(chrom)
                if failed:
                    break
                for donor_name, donor_chroms in by_donor.items():
                    donor = self.nodes[donor_name]
                    try:
                        sliced = self.caller.call(
                            donor_name, "ship",
                            lambda d=donor, s=src, c=tuple(donor_chroms):
                                d.fetch_shard(self.name, s, c),
                        )
                        relay = ShardTransfer(
                            src, tuple(donor_chroms),
                            sliced.estimated_size_bytes(),
                        )
                        self.network.send(
                            self.name, target_name, "shard-transfer",
                            relay.size_bytes(),
                        )
                        self.caller.call(
                            target_name, "receive",
                            lambda t=target, ds=sliced, c=tuple(donor_chroms):
                                t.receive_shard(ds, c),
                        )
                    except HOST_FAILURES as exc:
                        failed = (group, _brief(exc))
                        break
                if failed:
                    break
            if failed:
                skipped_shards.append(("+".join(failed[0]), failed[1]))
                dead_groups.add(group)
        # Execute: one shard sub-plan call per node, over the union of
        # its placed groups; pull (or map) each staged partial back.
        node_groups: dict = {}
        for placement in placements:
            if placement.chroms in dead_groups:
                continue
            node_groups.setdefault(placement.node, []).append(
                placement.chroms
            )
        for node_name in per_node:
            groups_here = node_groups.get(node_name)
            if not groups_here:
                continue
            node = self.nodes[node_name]
            chroms = tuple(sorted(
                {chrom for group in groups_here for chrom in group},
                key=chromosome_sort_key,
            ))
            try:
                response = self.caller.call(
                    node_name, "execute-shard",
                    lambda n=node, c=chroms: n.handle_execute_shard(
                        self.name, program, c, engine, outputs=outputs
                    ),
                )
                sections_by_output = {}
                for output_name, ticket, __, chunk_count, meta_len in (
                    response.tickets
                ):
                    sections_by_output[output_name] = self._fetch_partial(
                        node, node_name, ticket, chunk_count, meta_len
                    )
            except HOST_FAILURES as exc:
                skipped.append((node_name, _brief(exc)))
                for group in groups_here:
                    skipped_shards.append(("+".join(group), _brief(exc)))
                continue
            node_seconds[node_name] = (
                node_seconds.get(node_name, 0.0) + response.seconds
            )
            used.add(node_name)
            placed_chroms.update(
                chrom for group in groups_here for chrom in group
            )
            for output_name, (meta_blob, region_blob) in (
                sections_by_output.items()
            ):
                partials.setdefault(output_name, []).append(
                    parse_staged_sections(meta_blob, region_blob, output_name)
                )

    # -- the planner --------------------------------------------------------------------

    def estimate_strategies(self, program: str) -> dict:
        """Estimated bytes for each strategy, from summaries alone."""
        locations = self._plan_locations(program)
        source_bytes = 0
        summaries: dict = {}
        for name, node_name in locations.items():
            dataset = self.nodes[node_name].catalog.get(name)
            source_bytes += dataset.estimated_size_bytes()
            summaries[name] = dataset.summary()
        from repro.federation.estimator import estimate_plan
        from repro.gmql.lang import optimize

        compiled = optimize(compile_program(program))
        result_bytes = sum(
            estimate_plan(plan, summaries).size_bytes()
            for plan in compiled.outputs.values()
        )
        return {
            "data-shipping": source_bytes,
            "query-shipping": result_bytes,
        }

    def run(self, program: str, engine: str = "naive") -> FederatedOutcome:
        """Pick the cheaper strategy by estimate and execute it.

        When the chosen strategy fails on a host-level fault (a node
        died mid-plan, or its breaker opened), the planner falls back to
        the other strategy once before giving up -- a different strategy
        may route around the sick host.
        """
        estimates = self.estimate_strategies(program)
        if estimates["query-shipping"] <= estimates["data-shipping"]:
            order = (self.run_query_shipping, self.run_data_shipping)
        else:
            order = (self.run_data_shipping, self.run_query_shipping)
        try:
            return order[0](program, engine)
        except HOST_FAILURES:
            return order[1](program, engine)


def _brief(error: Exception) -> str:
    """Compact reason string for skipped-host reports."""
    if isinstance(error, RetryExhaustedError) and error.last_error is not None:
        return f"{type(error.last_error).__name__} after {error.attempts} attempt(s)"
    return type(error).__name__
