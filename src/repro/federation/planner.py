"""Federated execution strategies: query shipping vs data shipping.

"Queries move from a requesting node to a remote node, are locally
executed, and results are communicated back to the requesting node; this
paradigm allows for distributing the processing to data, transferring
only query results which are usually small in size" (section 4.4).

:class:`FederatedClient` implements both strategies over a set of
:class:`~repro.federation.node.FederationNode` instances and a planner
that picks the cheaper one from compile-time estimates -- letting
experiment E9 report measured bytes for each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FederationError
from repro.federation.node import FederationNode
from repro.federation.transfer import Network
from repro.gmql.lang import compile_program, execute


@dataclass
class FederatedOutcome:
    """Result of a federated execution, with its traffic bill."""

    strategy: str
    results: dict                 # output name -> summary dict
    bytes_moved: int
    message_count: int
    executing_node: str


class FederatedClient:
    """A requesting site that knows every node but owns no data."""

    def __init__(self, nodes: list, network: Network,
                 name: str = "client") -> None:
        if not nodes:
            raise FederationError("a federation needs at least one node")
        self.name = name
        self.nodes = {node.name: node for node in nodes}
        self.network = network

    # -- discovery ----------------------------------------------------------------

    def discover(self) -> dict:
        """``{dataset_name: node_name}`` across the federation."""
        location: dict = {}
        for node in self.nodes.values():
            info = node.handle_info(self.name)
            for summary in info.summaries:
                location[summary["name"]] = node.name
        return location

    def _plan_locations(self, program: str) -> dict:
        compiled = compile_program(program)
        location = self.discover()
        missing = [s for s in compiled.sources if s not in location]
        if missing:
            raise FederationError(f"no node hosts {missing}")
        return {source: location[source] for source in compiled.sources}

    # -- strategies ------------------------------------------------------------------

    def run_query_shipping(self, program: str, engine: str = "naive"
                           ) -> FederatedOutcome:
        """Ship the query to the node holding the most data; ship only the
        (small) other sources there; pull back only result chunks."""
        baseline_messages = self.network.log.message_count()
        baseline_bytes = self.network.log.bytes_total
        locations = self._plan_locations(program)
        sizes = {
            name: self.nodes[node_name].catalog.get(name).estimated_size_bytes()
            for name, node_name in locations.items()
        }
        # Execute where the most bytes already live.
        bytes_per_node: dict = {}
        for name, node_name in locations.items():
            bytes_per_node[node_name] = bytes_per_node.get(node_name, 0) + sizes[name]
        target_name = max(bytes_per_node, key=lambda n: bytes_per_node[n])
        target = self.nodes[target_name]
        for name, node_name in locations.items():
            if node_name != target_name:
                self.nodes[node_name].ship_dataset(name, target)
        compile_response = target.handle_compile(self.name, program)
        if not compile_response.ok:
            raise FederationError(f"remote compilation failed: "
                                  f"{compile_response.error}")
        execute_response = target.handle_execute(self.name, program, engine)
        results = {}
        for output_name, ticket, size, chunk_count in execute_response.tickets:
            for index in range(chunk_count):
                target.handle_chunk(self.name, ticket, index)
            results[output_name] = {"size_bytes": size, "ticket": ticket}
        return FederatedOutcome(
            strategy="query-shipping",
            results=results,
            bytes_moved=self.network.log.bytes_total - baseline_bytes,
            message_count=self.network.log.message_count() - baseline_messages,
            executing_node=target_name,
        )

    def run_data_shipping(self, program: str, engine: str = "naive"
                          ) -> FederatedOutcome:
        """Fetch every source dataset to the client and execute locally --
        "most of today's implementations" per the paper."""
        baseline_messages = self.network.log.message_count()
        baseline_bytes = self.network.log.bytes_total
        locations = self._plan_locations(program)
        sources = {}
        for name, node_name in locations.items():
            dataset = self.nodes[node_name].catalog.get(name)
            from repro.federation.protocol import DatasetTransfer

            transfer = DatasetTransfer(name, dataset.estimated_size_bytes())
            self.network.send(node_name, self.name, "dataset-transfer",
                              transfer.size_bytes())
            sources[name] = dataset
        results_data = execute(program, sources, engine=engine)
        results = {
            name: {"size_bytes": ds.estimated_size_bytes()}
            for name, ds in results_data.items()
        }
        return FederatedOutcome(
            strategy="data-shipping",
            results=results,
            bytes_moved=self.network.log.bytes_total - baseline_bytes,
            message_count=self.network.log.message_count() - baseline_messages,
            executing_node=self.name,
        )

    # -- the planner --------------------------------------------------------------------

    def estimate_strategies(self, program: str) -> dict:
        """Estimated bytes for each strategy, from summaries alone."""
        locations = self._plan_locations(program)
        source_bytes = 0
        summaries: dict = {}
        for name, node_name in locations.items():
            dataset = self.nodes[node_name].catalog.get(name)
            source_bytes += dataset.estimated_size_bytes()
            summaries[name] = dataset.summary()
        from repro.federation.estimator import estimate_plan
        from repro.gmql.lang import optimize

        compiled = optimize(compile_program(program))
        result_bytes = sum(
            estimate_plan(plan, summaries).size_bytes()
            for plan in compiled.outputs.values()
        )
        return {
            "data-shipping": source_bytes,
            "query-shipping": result_bytes,
        }

    def run(self, program: str, engine: str = "naive") -> FederatedOutcome:
        """Pick the cheaper strategy by estimate and execute it."""
        estimates = self.estimate_strategies(program)
        if estimates["query-shipping"] <= estimates["data-shipping"]:
            return self.run_query_shipping(program, engine)
        return self.run_data_shipping(program, engine)
