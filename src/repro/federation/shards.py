"""(sample, chromosome)-keyed dataset shards for federated execution.

Every genometric operator of the algebra matches regions within one
chromosome only (MAP/JOIN pair same-chromosome regions, the COVER family
sweeps per chromosome, DIFFERENCE probes per chromosome), so a dataset
cut along chromosome boundaries can be processed shard-by-shard on
different federation nodes and the partial results interleaved back --
byte-identical to single-node execution -- as long as two preconditions
hold:

* **chromosome clustering**: within every sample, regions of one
  chromosome form one contiguous run and runs appear in genome order
  (:func:`repro.gdm.region.chromosome_sort_key`).  Genome-sorted data --
  everything the simulator and the formats layer produce -- satisfies
  this; :func:`is_chromosome_clustered` verifies it so the planner can
  fall back to whole-dataset strategies for arbitrary data.
* **sample alignment**: a slice keeps *every* sample (possibly with zero
  regions) so operators that assign result sample ids positionally
  (``build_result`` numbers parts 1..N) produce the same ids on every
  shard.

The shard unit of *placement* is the chromosome: all samples' regions of
one chromosome co-locate, because MAP/JOIN/COVER need every sample's
same-chromosome regions together.  The manifest still records per
(sample, chromosome) shards -- that is the transfer/accounting unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gdm import Dataset, chromosome_sort_key


@dataclass(frozen=True)
class Shard:
    """One (sample, chromosome) shard of a dataset."""

    dataset: str
    sample_id: int
    chrom: str
    regions: int
    size_bytes: int


@dataclass(frozen=True)
class ShardManifest:
    """Every shard of one dataset, plus the clustering precondition."""

    dataset: str
    shards: tuple            # of Shard
    clustered: bool

    def chromosomes(self) -> tuple:
        """Chromosomes with at least one shard, in genome order."""
        return tuple(
            sorted({s.chrom for s in self.shards}, key=chromosome_sort_key)
        )

    def chrom_stats(self) -> dict:
        """``{chrom: [shard_count, regions, bytes]}`` aggregates."""
        out: dict = {}
        for shard in self.shards:
            entry = out.setdefault(shard.chrom, [0, 0, 0])
            entry[0] += 1
            entry[1] += shard.regions
            entry[2] += shard.size_bytes
        return out

    def summary(self) -> dict:
        """JSON-able form published in dataset info summaries."""
        return {"clustered": self.clustered, "chroms": self.chrom_stats()}


def sample_chrom_runs(regions) -> list:
    """Consecutive chromosome runs of a region sequence.

    Returns ``[(chrom, start_index, end_index), ...]`` in appearance
    order; ``regions[start:end]`` is the run.
    """
    runs = []
    current = None
    start = 0
    for index, region in enumerate(regions):
        if region.chrom != current:
            if current is not None:
                runs.append((current, start, index))
            current = region.chrom
            start = index
    if current is not None:
        runs.append((current, start, len(regions)))
    return runs


def is_chromosome_clustered(dataset: Dataset) -> bool:
    """Whether every sample's regions are one run per chromosome, in
    genome order -- the precondition for order-preserving shard merge."""
    for sample in dataset:
        runs = sample_chrom_runs(sample.regions)
        chroms = [chrom for chrom, __, __ in runs]
        if len(set(chroms)) != len(chroms):
            return False
        keys = [chromosome_sort_key(chrom) for chrom in chroms]
        if keys != sorted(keys):
            return False
    return True


def dataset_manifest(dataset: Dataset) -> ShardManifest:
    """The (sample, chromosome) shard manifest of *dataset*.

    Per-shard bytes use the same cost model as
    :meth:`Dataset.estimated_size_bytes` (32 bytes/region plus 12 per
    variable value); metadata bytes are not sharded -- slices carry the
    whole metadata of every sample.
    """
    per_region = 32 + 12 * len(dataset.schema)
    shards = []
    for sample in dataset:
        counts: dict = {}
        for region in sample.regions:
            counts[region.chrom] = counts.get(region.chrom, 0) + 1
        for chrom in sorted(counts, key=chromosome_sort_key):
            shards.append(
                Shard(
                    dataset=dataset.name,
                    sample_id=sample.id,
                    chrom=chrom,
                    regions=counts[chrom],
                    size_bytes=counts[chrom] * per_region,
                )
            )
    return ShardManifest(
        dataset=dataset.name,
        shards=tuple(shards),
        clustered=is_chromosome_clustered(dataset),
    )


def slice_dataset(dataset: Dataset, chroms) -> Dataset:
    """The shard slice of *dataset* on *chroms* (same name and schema).

    Every sample is kept -- with only its regions on *chroms*, in their
    original relative order -- so sample ids, metadata and positional
    result numbering are identical across slices.
    """
    wanted = frozenset(chroms)
    samples = []
    for sample in dataset:
        regions = [r for r in sample.regions if r.chrom in wanted]
        samples.append(
            sample if len(regions) == len(sample.regions)
            else sample.with_regions(regions)
        )
    return dataset.with_samples(samples)


def partition_chromosomes(weights: dict, count: int) -> tuple:
    """Greedy longest-processing-time split of chromosomes into at most
    *count* balanced groups.

    *weights* maps chromosome to a load figure (bytes or regions).
    Deterministic: ties break on genome order; groups come out in genome
    order of their first chromosome and empty groups are dropped.
    """
    if count <= 0:
        raise ValueError(f"shard group count must be positive, got {count}")
    order = sorted(
        weights,
        key=lambda chrom: (-weights[chrom], chromosome_sort_key(chrom)),
    )
    groups = [[] for __ in range(min(count, len(order)))]
    loads = [0] * len(groups)
    for chrom in order:
        target = loads.index(min(loads))
        groups[target].append(chrom)
        loads[target] += weights[chrom]
    out = [
        tuple(sorted(group, key=chromosome_sort_key))
        for group in groups if group
    ]
    out.sort(key=lambda group: chromosome_sort_key(group[0]))
    return tuple(out)
