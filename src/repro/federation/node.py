"""Federation nodes: data owners that answer the section 4.4 protocol.

"Each data repository will be the owner of the data that are locally
produced, and nodes of cooperating organizations will be connected to
form a federated database."  A :class:`FederationNode` owns a catalog and
answers info/compile/execute/chunk messages; all traffic goes through the
shared simulated :class:`~repro.federation.transfer.Network`.
"""

from __future__ import annotations

from repro.errors import FederationError, QueryError
from repro.federation.estimator import estimate_plan
from repro.federation.protocol import (
    ChunkRequest,
    ChunkResponse,
    CompileRequest,
    CompileResponse,
    DatasetInfoRequest,
    DatasetInfoResponse,
    DatasetTransfer,
    ExecuteRequest,
    ExecuteResponse,
    payload_checksum,
)
from repro.federation.transfer import Network
from repro.gdm import Dataset
from repro.gmql.lang import Interpreter, compile_program, optimize
from repro.engine.dispatch import get_backend
from repro.repository.catalog import Catalog
from repro.repository.staging import StagingArea


class FederationNode:
    """One node: a named catalog plus protocol handlers."""

    def __init__(
        self,
        name: str,
        catalog: Catalog,
        network: Network,
        staging_budget_bytes: int = 50_000_000,
    ) -> None:
        self.name = name
        self.catalog = catalog
        self.network = network
        self.staging = StagingArea(
            budget_bytes=staging_budget_bytes,
            fire=network.fire,
            owner=name,
        )
        #: Datasets shipped in from elsewhere (data-shipping execution).
        self.foreign: dict = {}

    # -- protocol handlers (each accounts its response on the network) -----------
    #
    # Every handler fires a chaos injection point named
    # ``federation.<op>:<node>`` before doing any work, so an armed
    # FaultInjector can make this host slow, flaky, or dead.

    def handle_info(self, requester: str) -> DatasetInfoResponse:
        """Answer a dataset-information request."""
        self.network.fire(f"federation.info:{self.name}")
        request = DatasetInfoRequest()
        self.network.send(requester, self.name, "info-request",
                          request.size_bytes())
        response = DatasetInfoResponse(tuple(self.catalog.summaries()))
        self.network.send(self.name, requester, "info-response",
                          response.size_bytes())
        return response

    def handle_compile(self, requester: str, program: str) -> CompileResponse:
        """Compile a program and estimate its outputs."""
        self.network.fire(f"federation.compile:{self.name}")
        request = CompileRequest(program)
        self.network.send(requester, self.name, "compile-request",
                          request.size_bytes())
        try:
            compiled = optimize(compile_program(program))
        except QueryError as exc:
            response = CompileResponse(ok=False, error=str(exc))
        else:
            summaries = {
                summary["name"]: summary for summary in self.catalog.summaries()
            }
            for foreign_name, dataset in self.foreign.items():
                summaries[foreign_name] = dataset.summary()
            estimates = []
            for output_name, plan in compiled.outputs.items():
                estimate = estimate_plan(plan, summaries)
                estimates.append(
                    (
                        output_name,
                        int(estimate.samples),
                        int(estimate.regions),
                        estimate.size_bytes(),
                    )
                )
            response = CompileResponse(ok=True, estimates=tuple(estimates))
        self.network.send(self.name, requester, "compile-response",
                          response.size_bytes())
        return response

    def handle_execute(
        self, requester: str, program: str, engine: str = "naive"
    ) -> ExecuteResponse:
        """Execute a program over the local (+ shipped-in) datasets."""
        self.network.fire(f"federation.execute:{self.name}")
        request = ExecuteRequest(program, engine)
        self.network.send(requester, self.name, "execute-request",
                          request.size_bytes())
        sources = self.catalog.as_sources()
        sources.update(self.foreign)
        compiled = optimize(compile_program(program))
        missing = [s for s in compiled.sources if s not in sources]
        if missing:
            raise FederationError(
                f"node {self.name!r} lacks source datasets {missing}"
            )
        results = Interpreter(get_backend(engine), sources).run_program(compiled)
        tickets = []
        for output_name, dataset in results.items():
            ticket = self.staging.stage(dataset)
            tickets.append(
                (
                    output_name,
                    ticket,
                    dataset.estimated_size_bytes(),
                    self.staging.chunk_count(ticket),
                )
            )
        response = ExecuteResponse(tuple(tickets))
        self.network.send(self.name, requester, "execute-response",
                          response.size_bytes())
        return response

    def handle_chunk(self, requester: str, ticket: str, index: int
                     ) -> ChunkResponse:
        """Serve one staged chunk.

        The checksum is taken over the true staged bytes *before* the
        payload crosses the (possibly chaotic) network, so a corrupted
        transfer is detectable by the requester.
        """
        self.network.fire(f"federation.chunk:{self.name}")
        request = ChunkRequest(ticket, index)
        self.network.send(requester, self.name, "chunk-request",
                          request.size_bytes())
        data = self.staging.retrieve_chunk(ticket, index)
        checksum = payload_checksum(data)
        data = self.network.fire(f"federation.transfer:{self.name}", data)
        response = ChunkResponse(ticket, index, data, checksum)
        self.network.send(self.name, requester, "chunk-response",
                          response.size_bytes())
        return response

    # -- data shipping -------------------------------------------------------------

    def ship_dataset(self, name: str, destination: "FederationNode") -> None:
        """Send one local dataset to another node (data shipping)."""
        self.network.fire(f"federation.ship:{self.name}")
        dataset = self.catalog.get(name)
        transfer = DatasetTransfer(name, dataset.estimated_size_bytes())
        self.network.send(self.name, destination.name, "dataset-transfer",
                          transfer.size_bytes())
        destination.foreign[name] = dataset

    def receive_foreign(self, dataset: Dataset) -> None:
        """Register a shipped-in dataset directly (used by the client)."""
        self.foreign[dataset.name] = dataset
