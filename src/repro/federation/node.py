"""Federation nodes: data owners that answer the section 4.4 protocol.

"Each data repository will be the owner of the data that are locally
produced, and nodes of cooperating organizations will be connected to
form a federated database."  A :class:`FederationNode` owns a catalog and
answers info/compile/execute/chunk messages; all traffic goes through the
shared simulated :class:`~repro.federation.transfer.Network`.
"""

from __future__ import annotations

from repro.resilience.clock import perf_counter

from repro.errors import FederationError, QueryError
from repro.federation.estimator import estimate_plan
from repro.federation.protocol import (
    BlobHandleRequest,
    BlobHandleResponse,
    ChunkRequest,
    ChunkResponse,
    CompileRequest,
    CompileResponse,
    DatasetInfoRequest,
    DatasetInfoResponse,
    DatasetTransfer,
    ExecuteRequest,
    ExecuteResponse,
    ShardExecuteRequest,
    ShardExecuteResponse,
    ShardTransfer,
    payload_checksum,
)
from repro.federation.merge import merge_partials
from repro.federation.shards import slice_dataset
from repro.federation.transfer import Network
from repro.gdm import Dataset
from repro.gmql.lang import Interpreter, compile_program, optimize
from repro.gmql.lang.plan import CompiledProgram
from repro.engine.dispatch import get_backend
from repro.repository.catalog import Catalog
from repro.repository.staging import StagingArea


class FederationNode:
    """One node: a named catalog plus protocol handlers."""

    def __init__(
        self,
        name: str,
        catalog: Catalog,
        network: Network,
        staging_budget_bytes: int = 50_000_000,
    ) -> None:
        self.name = name
        self.catalog = catalog
        self.network = network
        self.staging = StagingArea(
            budget_bytes=staging_budget_bytes,
            fire=network.fire,
            owner=name,
        )
        #: Datasets shipped in from elsewhere (data-shipping execution).
        self.foreign: dict = {}
        #: Shard slices shipped in for sharded execution:
        #: ``{dataset_name: [slice, ...]}`` -- merged with the local
        #: catalog slice at shard-execute time.
        self.foreign_shards: dict = {}

    # -- protocol handlers (each accounts its response on the network) -----------
    #
    # Every handler fires a chaos injection point named
    # ``federation.<op>:<node>`` before doing any work, so an armed
    # FaultInjector can make this host slow, flaky, or dead.

    def handle_info(self, requester: str) -> DatasetInfoResponse:
        """Answer a dataset-information request."""
        self.network.fire(f"federation.info:{self.name}")
        request = DatasetInfoRequest()
        self.network.send(requester, self.name, "info-request",
                          request.size_bytes())
        response = DatasetInfoResponse(tuple(self.catalog.summaries()))
        self.network.send(self.name, requester, "info-response",
                          response.size_bytes())
        return response

    def handle_compile(self, requester: str, program: str) -> CompileResponse:
        """Compile a program and estimate its outputs."""
        self.network.fire(f"federation.compile:{self.name}")
        request = CompileRequest(program)
        self.network.send(requester, self.name, "compile-request",
                          request.size_bytes())
        try:
            compiled = optimize(compile_program(program))
        except QueryError as exc:
            response = CompileResponse(ok=False, error=str(exc))
        else:
            summaries = {
                summary["name"]: summary for summary in self.catalog.summaries()
            }
            for foreign_name, dataset in self.foreign.items():
                summaries[foreign_name] = dataset.summary()
            estimates = []
            for output_name, plan in compiled.outputs.items():
                estimate = estimate_plan(plan, summaries)
                estimates.append(
                    (
                        output_name,
                        int(estimate.samples),
                        int(estimate.regions),
                        estimate.size_bytes(),
                    )
                )
            response = CompileResponse(ok=True, estimates=tuple(estimates))
        self.network.send(self.name, requester, "compile-response",
                          response.size_bytes())
        return response

    def handle_execute(
        self, requester: str, program: str, engine: str = "naive"
    ) -> ExecuteResponse:
        """Execute a program over the local (+ shipped-in) datasets."""
        self.network.fire(f"federation.execute:{self.name}")
        request = ExecuteRequest(program, engine)
        self.network.send(requester, self.name, "execute-request",
                          request.size_bytes())
        sources = self.catalog.as_sources()
        sources.update(self.foreign)
        compiled = optimize(compile_program(program))
        missing = [s for s in compiled.sources if s not in sources]
        if missing:
            raise FederationError(
                f"node {self.name!r} lacks source datasets {missing}"
            )
        results = Interpreter(get_backend(engine), sources).run_program(compiled)
        tickets = []
        for output_name, dataset in results.items():
            ticket = self.staging.stage(dataset)
            tickets.append(
                (
                    output_name,
                    ticket,
                    dataset.estimated_size_bytes(),
                    self.staging.chunk_count(ticket),
                )
            )
        response = ExecuteResponse(tuple(tickets))
        self.network.send(self.name, requester, "execute-response",
                          response.size_bytes())
        return response

    def handle_execute_shard(
        self,
        requester: str,
        program: str,
        chroms,
        engine: str = "columnar",
        outputs=None,
    ) -> ShardExecuteResponse:
        """Execute a program over this node's shards of a chromosome group.

        Every source dataset -- catalog, whole foreign datasets, and
        shipped-in shard slices -- is narrowed to *chroms* before the
        kernels run, so the node computes exactly its assigned shards'
        partial results and stages them for streaming (or handle
        shipping) back to the requester.  *outputs* narrows execution to
        a subset of the program's materialised outputs (the planner's
        per-output rounds); ``None`` runs them all.  The response
        carries the node's own kernel wall time: the client's
        critical-path scaling measure is independent of client-side
        queueing.
        """
        self.network.fire(f"federation.execute:{self.name}")
        wanted = tuple(chroms)
        wanted_outputs = tuple(outputs) if outputs is not None else None
        request = ShardExecuteRequest(
            program, wanted, engine, wanted_outputs
        )
        self.network.send(requester, self.name, "shard-execute-request",
                          request.size_bytes())
        sources: dict = {}
        for name in self.catalog.names():
            sources[name] = slice_dataset(self.catalog.get(name), wanted)
        for name, dataset in self.foreign.items():
            sources[name] = slice_dataset(dataset, wanted)
        for name, slices in self.foreign_shards.items():
            pieces = [slice_dataset(piece, wanted) for piece in slices]
            if name in sources:
                pieces.insert(0, sources[name])
            sources[name] = (
                pieces[0] if len(pieces) == 1 else merge_partials(pieces)
            )
        compiled = optimize(compile_program(program))
        if wanted_outputs is not None:
            unknown = [o for o in wanted_outputs if o not in compiled.outputs]
            if unknown:
                raise FederationError(
                    f"node {self.name!r} has no program outputs {unknown}"
                )
            filtered = CompiledProgram(
                compiled.variables,
                {name: compiled.outputs[name] for name in wanted_outputs},
                compiled.sources,
            )
            filtered.analysis = compiled.analysis
            compiled = filtered
        missing = [s for s in compiled.sources if s not in sources]
        if missing:
            raise FederationError(
                f"node {self.name!r} lacks source datasets {missing}"
            )
        backend = get_backend(engine)
        started = perf_counter()
        try:
            results = Interpreter(backend, sources).run_program(compiled)
        finally:
            backend.close()
        seconds = perf_counter() - started
        tickets = []
        for output_name, dataset in results.items():
            ticket = self.staging.stage(dataset)
            meta_len, __ = self.staging.section_lengths(ticket)
            tickets.append(
                (
                    output_name,
                    ticket,
                    dataset.estimated_size_bytes(),
                    self.staging.chunk_count(ticket),
                    meta_len,
                )
            )
        response = ShardExecuteResponse(tuple(tickets), wanted, seconds)
        self.network.send(self.name, requester, "shard-execute-response",
                          response.size_bytes())
        return response

    def handle_blob(self, requester: str, ticket: str) -> BlobHandleResponse:
        """Answer with a spill-file handle to a staged result.

        The co-resident fast path of the PR 6 handle protocol: a client
        sharing this node's filesystem memory-maps the content-addressed
        spill file instead of pulling chunks, so only the tiny handle
        crosses the network.  Memory-staged results answer ``ok=False``
        and the client falls back to chunked streaming.
        """
        self.network.fire(f"federation.blob:{self.name}")
        request = BlobHandleRequest(ticket)
        self.network.send(requester, self.name, "blob-request",
                          request.size_bytes())
        path, meta_len, region_len = self.staging.blob_handle(ticket)
        response = BlobHandleResponse(
            ticket,
            ok=path is not None,
            path=path or "",
            meta_len=meta_len,
            region_len=region_len,
        )
        self.network.send(self.name, requester, "blob-response",
                          response.size_bytes())
        return response

    def handle_chunk(self, requester: str, ticket: str, index: int
                     ) -> ChunkResponse:
        """Serve one staged chunk.

        The checksum is taken over the true staged bytes *before* the
        payload crosses the (possibly chaotic) network, so a corrupted
        transfer is detectable by the requester.
        """
        self.network.fire(f"federation.chunk:{self.name}")
        request = ChunkRequest(ticket, index)
        self.network.send(requester, self.name, "chunk-request",
                          request.size_bytes())
        data = self.staging.retrieve_chunk(ticket, index)
        checksum = payload_checksum(data)
        data = self.network.fire(f"federation.transfer:{self.name}", data)
        response = ChunkResponse(ticket, index, data, checksum)
        self.network.send(self.name, requester, "chunk-response",
                          response.size_bytes())
        return response

    # -- data shipping -------------------------------------------------------------

    def ship_dataset(self, name: str, destination: "FederationNode") -> None:
        """Send one local dataset to another node (data shipping)."""
        self.network.fire(f"federation.ship:{self.name}")
        dataset = self.catalog.get(name)
        transfer = DatasetTransfer(name, dataset.estimated_size_bytes())
        self.network.send(self.name, destination.name, "dataset-transfer",
                          transfer.size_bytes())
        destination.foreign[name] = dataset

    def receive_foreign(self, dataset: Dataset) -> None:
        """Register a shipped-in dataset directly (used by the client)."""
        self.foreign[dataset.name] = dataset

    # -- shard shipping ------------------------------------------------------------

    def fetch_shard(self, requester: str, name: str, chroms) -> Dataset:
        """Slice one local dataset to a chromosome group for shipping.

        The donor side of shard-aware placement: when the planner
        assigns a chromosome group to a node that lacks some source
        shards, the owning node serves exactly the missing slice (all
        samples kept, regions narrowed) and the network accounts the
        sliced -- not whole-dataset -- payload.
        """
        self.network.fire(f"federation.ship:{self.name}")
        sliced = slice_dataset(self.catalog.get(name), tuple(chroms))
        transfer = ShardTransfer(
            name, tuple(chroms), sliced.estimated_size_bytes()
        )
        self.network.send(self.name, requester, "shard-transfer",
                          transfer.size_bytes())
        return sliced

    def receive_shard(self, dataset: Dataset, chroms=()) -> None:
        """Accept a shipped-in shard slice of a source dataset."""
        self.foreign_shards.setdefault(dataset.name, []).append(dataset)
