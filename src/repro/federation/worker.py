"""Out-of-process federation nodes served over a local connection.

:func:`serve_node` is the entry point of a worker *process*: it builds a
real :class:`~repro.federation.node.FederationNode` around an empty
catalog and answers a small ``(op, args)`` request loop over a
:class:`multiprocessing.connection.Listener` socket.
:class:`WorkerNodeProxy` is the client-side stand-in -- it exposes the
same handler methods the in-process node does, so
:meth:`~repro.federation.planner.FederatedClient.run_sharded` drives a
process cluster and an in-process federation through one code path.

A dead worker surfaces as :class:`~repro.errors.HostDownError` (a broken
pipe is exactly "this host is unusable right now"), which is what the
planner's degraded-execution semantics key on.
"""

from __future__ import annotations

from multiprocessing.connection import Listener

from repro.errors import HostDownError, FederationError


def _dispatch(node, op: str, args: tuple):
    """Execute one protocol operation against the worker's node."""
    if op == "load":
        dataset, = args
        node.catalog.register(dataset, replace=True)
        return dataset.summary()
    if op == "info":
        return node.handle_info(*args)
    if op == "compile":
        return node.handle_compile(*args)
    if op == "execute":
        return node.handle_execute(*args)
    if op == "execute_shard":
        return node.handle_execute_shard(*args)
    if op == "chunk":
        return node.handle_chunk(*args)
    if op == "blob":
        return node.handle_blob(*args)
    if op == "fetch_shard":
        return node.fetch_shard(*args)
    if op == "receive_shard":
        return node.receive_shard(*args)
    raise FederationError(f"unknown worker operation {op!r}")


def serve_node(address: str, authkey: bytes, name: str,
               store_root: str | None = None) -> None:
    """Run one federation node until its client says ``shutdown``.

    Target of the worker :class:`multiprocessing.Process`.  With a
    *store_root* the node persists columnar blocks and spills staged
    results there -- content-addressed files a co-resident client can
    memory-map instead of streaming (the handle protocol).
    """
    from repro.federation.node import FederationNode
    from repro.federation.transfer import Network
    from repro.repository.catalog import Catalog

    if store_root is not None:
        from repro.store.persist import set_store_root

        set_store_root(store_root, sync=True)
    node = FederationNode(name, Catalog(name), Network())
    with Listener(address, family="AF_UNIX", authkey=authkey) as listener:
        with listener.accept() as connection:
            while True:
                try:
                    op, args = connection.recv()
                except (EOFError, OSError):
                    return
                if op == "shutdown":
                    return
                try:
                    result = _dispatch(node, op, args)
                except Exception as exc:
                    connection.send(
                        ("error", (type(exc).__name__, str(exc)))
                    )
                else:
                    connection.send(("ok", result))


class WorkerNodeProxy:
    """Client-side handle of a worker-process node.

    Mirrors the :class:`FederationNode` handler surface over the worker
    connection.  Deliberately has **no** ``catalog`` attribute: the
    planner detects that and never attempts catalog-touching strategies
    against process nodes.
    """

    def __init__(self, name: str, connection, client_name: str = "client"
                 ) -> None:
        self.name = name
        self.connection = connection
        self.client_name = client_name

    def _call(self, op: str, *args):
        try:
            self.connection.send((op, args))
            status, payload = self.connection.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise HostDownError(
                f"node {self.name} is unreachable: {type(exc).__name__}"
            ) from exc
        if status == "error":
            kind, message = payload
            if kind == "HostDownError":
                raise HostDownError(message)
            raise FederationError(f"{kind}: {message}")
        return payload

    # -- the FederationNode handler surface ----------------------------------

    def load(self, dataset):
        """Register one dataset slice in the worker's catalog."""
        return self._call("load", dataset)

    def handle_info(self, requester: str):
        return self._call("info", requester)

    def handle_compile(self, requester: str, program: str):
        return self._call("compile", requester, program)

    def handle_execute(self, requester: str, program: str,
                       engine: str = "naive"):
        return self._call("execute", requester, program, engine)

    def handle_execute_shard(self, requester: str, program: str, chroms,
                             engine: str = "columnar", outputs=None):
        return self._call(
            "execute_shard", requester, program, chroms, engine, outputs
        )

    def handle_chunk(self, requester: str, ticket: str, index: int):
        return self._call("chunk", requester, ticket, index)

    def handle_blob(self, requester: str, ticket: str):
        return self._call("blob", requester, ticket)

    def fetch_shard(self, requester: str, name: str, chroms):
        return self._call("fetch_shard", requester, name, chroms)

    def receive_shard(self, dataset, chroms=()):
        return self._call("receive_shard", dataset, chroms)

    def shutdown(self) -> None:
        """Ask the worker to exit (best-effort; it may already be gone)."""
        try:
            self.connection.send(("shutdown", ()))
        except (EOFError, OSError, BrokenPipeError):
            pass
        try:
            self.connection.close()
        except (EOFError, OSError):
            pass
