"""Compile-time result-size estimation.

The federation protocol of section 4.4 wants query compilation to return
"estimates of the data sizes of results", so clients can plan staging and
communication load *before* executing.  The estimator walks a logical
plan bottom-up propagating (samples, regions-per-sample) cardinalities
with per-operator selectivity heuristics, then converts to bytes with the
same cost model as :meth:`Dataset.estimated_size_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gmql.lang.plan import (
    CoverPlan,
    DifferencePlan,
    EmptyPlan,
    ExtendPlan,
    GroupPlan,
    JoinPlan,
    MapPlan,
    MergePlan,
    OrderPlan,
    PlanNode,
    ProjectPlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)

#: Default selectivities, deliberately coarse: the protocol's point is an
#: order-of-magnitude figure, not a query optimizer's cost model.
META_SELECT_SELECTIVITY = 0.5
REGION_SELECT_SELECTIVITY = 0.5
DIFFERENCE_SURVIVAL = 0.5
JOIN_FANOUT = 2.0
COVER_COMPRESSION = 0.5

#: Crude sustained kernel throughput used to balance shard placement --
#: calibrated against the columnar sweep/pair kernels, which chew
#: through store blocks at a few hundred MB/s on one core.  Placement
#: only needs relative magnitudes (is moving this shard cheaper than
#: queueing behind that node?), not absolute accuracy.
SHARD_COMPUTE_BYTES_PER_SECOND = 200e6

#: Network defaults matching :class:`repro.federation.transfer.Network`.
SHARD_BANDWIDTH_BYTES_PER_SECOND = 100e6 / 8
SHARD_LATENCY_SECONDS = 0.02


@dataclass(frozen=True)
class Estimate:
    """Estimated result shape."""

    samples: float
    regions: float          # total regions across samples
    attributes: int         # variable attributes per region

    def size_bytes(self) -> int:
        """Bytes under the dataset cost model (32/region + 12/value)."""
        return int(self.regions * (32 + 12 * self.attributes))


def summarize_datasets(datasets: dict) -> dict:
    """Protocol-style summaries for in-memory datasets.

    Produces the same ``{name: summary_dict}`` shape that
    :meth:`Catalog.summaries` publishes for remote data, so local
    execution (the physical planner) and federated planning share one
    estimation code path.
    """
    return {name: dataset.summary() for name, dataset in datasets.items()}


def estimate_plan(
    node: PlanNode, catalog_summaries: dict, cache: dict | None = None
) -> Estimate:
    """Estimate one plan against ``{dataset_name: summary_dict}``.

    Summaries are what :meth:`Catalog.summaries` publishes, so estimation
    needs only protocol-level information about remote data.  Passing a
    *cache* dict memoises estimates by node identity, which keeps
    whole-plan annotation (one call per node, as the physical planner
    does) linear on shared DAGs.
    """
    if cache is not None and id(node) in cache:
        return cache[id(node)]
    estimate = _estimate_node(node, catalog_summaries, cache)
    if cache is not None:
        cache[id(node)] = estimate
    return estimate


def _estimate_node(
    node: PlanNode, catalog_summaries: dict, cache: dict | None
) -> Estimate:
    if isinstance(node, EmptyPlan):
        # Statically proven empty: exactly zero, not an estimate.
        return Estimate(0, 0, len(node.schema))
    if isinstance(node, ScanPlan):
        summary = catalog_summaries.get(node.dataset_name)
        if summary is None:
            return Estimate(1, 1_000, 1)
        return Estimate(
            samples=max(1, summary["samples"]),
            regions=max(1, summary["regions"]),
            attributes=len(summary.get("schema", ())) or 1,
        )
    if isinstance(node, SelectPlan):
        child = estimate_plan(node.child, catalog_summaries, cache)
        samples = child.samples
        regions = child.regions
        if node.meta_predicate is not None:
            samples *= META_SELECT_SELECTIVITY
            regions *= META_SELECT_SELECTIVITY
        if node.region_predicate is not None:
            regions *= REGION_SELECT_SELECTIVITY
        return Estimate(max(samples, 1), regions, child.attributes)
    if isinstance(node, (ProjectPlan,)):
        child = estimate_plan(node.child, catalog_summaries, cache)
        kept = (
            child.attributes
            if node.region_attributes is None
            else len(node.region_attributes)
        )
        return Estimate(
            child.samples, child.regions, kept + len(node.new_region_attributes)
        )
    if isinstance(node, (ExtendPlan, OrderPlan)):
        child = estimate_plan(node.child, catalog_summaries, cache)
        if isinstance(node, OrderPlan) and node.top is not None:
            fraction = min(1.0, node.top / max(child.samples, 1))
            return Estimate(
                min(child.samples, node.top),
                child.regions * fraction,
                child.attributes,
            )
        return child
    if isinstance(node, MergePlan):
        child = estimate_plan(node.child, catalog_summaries, cache)
        groups = max(1, len(node.groupby) * 3) if node.groupby else 1
        return Estimate(groups, child.regions, child.attributes)
    if isinstance(node, GroupPlan):
        child = estimate_plan(node.child, catalog_summaries, cache)
        return Estimate(child.samples, child.regions, child.attributes)
    if isinstance(node, UnionPlan):
        left = estimate_plan(node.left, catalog_summaries, cache)
        right = estimate_plan(node.right, catalog_summaries, cache)
        return Estimate(
            left.samples + right.samples,
            left.regions + right.regions,
            left.attributes + right.attributes,
        )
    if isinstance(node, DifferencePlan):
        left = estimate_plan(node.left, catalog_summaries, cache)
        return Estimate(
            left.samples, left.regions * DIFFERENCE_SURVIVAL, left.attributes
        )
    if isinstance(node, CoverPlan):
        child = estimate_plan(node.child, catalog_summaries, cache)
        return Estimate(1, child.regions * COVER_COMPRESSION, 1)
    if isinstance(node, MapPlan):
        reference = estimate_plan(node.reference, catalog_summaries, cache)
        experiment = estimate_plan(node.experiment, catalog_summaries, cache)
        ref_regions_per_sample = reference.regions / max(reference.samples, 1)
        samples = reference.samples * experiment.samples
        return Estimate(
            samples,
            samples * ref_regions_per_sample,
            reference.attributes + max(1, len(node.aggregates)),
        )
    if isinstance(node, JoinPlan):
        anchor = estimate_plan(node.anchor, catalog_summaries, cache)
        experiment = estimate_plan(node.experiment, catalog_summaries, cache)
        anchor_regions_per_sample = anchor.regions / max(anchor.samples, 1)
        samples = anchor.samples * experiment.samples
        return Estimate(
            samples,
            samples * anchor_regions_per_sample * JOIN_FANOUT,
            anchor.attributes + experiment.attributes + 1,
        )
    # Unknown node kinds: propagate the first child or a token estimate.
    if node.children:
        return estimate_plan(node.children[0], catalog_summaries, cache)
    return Estimate(1, 1_000, 1)


# -- per-shard cardinality and transfer cost (sharded cluster execution) --------


def shard_summaries(catalog_summaries: dict, chroms) -> dict:
    """Catalog summaries narrowed to the shards on *chroms*.

    Each dataset's ``regions``/``size_bytes`` are replaced by the exact
    per-chromosome figures its shard manifest publishes (see
    :meth:`repro.federation.shards.ShardManifest.summary` under the
    ``"shards"`` summary key), so :func:`estimate_plan` runs unchanged
    but produces *per-shard* cardinalities.  Datasets without a manifest
    fall back to a uniform per-chromosome split.
    """
    wanted = tuple(chroms)
    out = {}
    for name, summary in catalog_summaries.items():
        shards = (summary.get("shards") or {}).get("chroms") or {}
        if shards:
            regions = sum(
                stats[1] for chrom, stats in shards.items() if chrom in wanted
            )
            size = sum(
                stats[2] for chrom, stats in shards.items() if chrom in wanted
            )
        else:
            n_chroms = max(1, len(summary.get("chromosomes", ())) or 3)
            fraction = min(1.0, len(wanted) / n_chroms)
            regions = int(summary.get("regions", 0) * fraction)
            size = int(summary.get("size_bytes", 0) * fraction)
        out[name] = dict(summary, regions=regions, size_bytes=size)
    return out


def estimate_shard_outputs(output_plans, catalog_summaries: dict,
                           chroms) -> int:
    """Estimated partial-result bytes of a plan's outputs on one shard
    group -- what streams back from the executing node."""
    narrowed = shard_summaries(catalog_summaries, chroms)
    cache: dict = {}
    return sum(
        estimate_plan(plan, narrowed, cache).size_bytes()
        for plan in output_plans
    )


def transfer_seconds(
    payload_bytes: int,
    messages: int = 1,
    bandwidth_bytes_per_second: float = SHARD_BANDWIDTH_BYTES_PER_SECOND,
    latency_seconds: float = SHARD_LATENCY_SECONDS,
) -> float:
    """Modelled wire time of moving *payload_bytes* in *messages*."""
    return messages * latency_seconds + (
        payload_bytes / bandwidth_bytes_per_second
    )


@dataclass(frozen=True)
class ShardPlacement:
    """One placement decision: a chromosome group pinned to a node."""

    chroms: tuple            # chromosomes of the shard group
    node: str
    move_bytes: int          # source shard bytes that must ship there
    result_bytes: int        # estimated partial-result bytes shipped back
    seconds: float           # modelled transfer + compute cost

    def report(self) -> str:
        return (
            f"{'+'.join(self.chroms)} -> {self.node} "
            f"(move {self.move_bytes} B, results ~{self.result_bytes} B, "
            f"~{self.seconds * 1000:.0f} ms)"
        )


def place_shards(
    groups,
    residency: dict,
    group_bytes: dict,
    result_bytes: dict,
    nodes,
    *,
    bandwidth_bytes_per_second: float = SHARD_BANDWIDTH_BYTES_PER_SECOND,
    latency_seconds: float = SHARD_LATENCY_SECONDS,
    compute_bytes_per_second: float = SHARD_COMPUTE_BYTES_PER_SECOND,
) -> tuple:
    """Cost-based greedy placement of shard groups onto live nodes.

    Parameters
    ----------
    groups:
        Shard groups (tuples of chromosomes), the placement units.
    residency:
        ``{group: {node: resident_source_bytes}}`` -- how much of the
        group's source data each node already holds.
    group_bytes:
        ``{group: total_source_bytes}`` across all source datasets.
    result_bytes:
        ``{group: estimated_partial_result_bytes}`` (streamed back).
    nodes:
        Names of the reachable nodes, in a deterministic order.

    Heaviest groups place first (longest-processing-time); each takes
    the node minimising *modelled completion time*: data movement for
    non-resident source shards, the result stream back, the kernel time
    of the group's bytes, all queued behind work already assigned to
    that node.  Deterministic -- ties break on node order.
    """
    node_order = list(nodes)
    if not node_order:
        return ()
    load = {node: 0.0 for node in node_order}
    placements = []
    order = sorted(groups, key=lambda g: (-group_bytes.get(g, 0), g))
    for group in order:
        resident = residency.get(group, {})
        total = group_bytes.get(group, 0)
        results = result_bytes.get(group, 0)
        best = None
        for node in node_order:
            move = max(0, total - resident.get(node, 0))
            seconds = (
                transfer_seconds(
                    move + results,
                    messages=2 if move else 1,
                    bandwidth_bytes_per_second=bandwidth_bytes_per_second,
                    latency_seconds=latency_seconds,
                )
                + total / compute_bytes_per_second
            )
            completion = load[node] + seconds
            if best is None or completion < best[0]:
                best = (completion, node, move, results, seconds)
        completion, node, move, results, seconds = best
        load[node] = completion
        placements.append(
            ShardPlacement(
                chroms=tuple(group),
                node=node,
                move_bytes=move,
                result_bytes=results,
                seconds=seconds,
            )
        )
    return tuple(placements)
