"""Compile-time result-size estimation.

The federation protocol of section 4.4 wants query compilation to return
"estimates of the data sizes of results", so clients can plan staging and
communication load *before* executing.  The estimator walks a logical
plan bottom-up propagating (samples, regions-per-sample) cardinalities
with per-operator selectivity heuristics, then converts to bytes with the
same cost model as :meth:`Dataset.estimated_size_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gmql.lang.plan import (
    CoverPlan,
    DifferencePlan,
    EmptyPlan,
    ExtendPlan,
    GroupPlan,
    JoinPlan,
    MapPlan,
    MergePlan,
    OrderPlan,
    PlanNode,
    ProjectPlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)

#: Default selectivities, deliberately coarse: the protocol's point is an
#: order-of-magnitude figure, not a query optimizer's cost model.
META_SELECT_SELECTIVITY = 0.5
REGION_SELECT_SELECTIVITY = 0.5
DIFFERENCE_SURVIVAL = 0.5
JOIN_FANOUT = 2.0
COVER_COMPRESSION = 0.5


@dataclass(frozen=True)
class Estimate:
    """Estimated result shape."""

    samples: float
    regions: float          # total regions across samples
    attributes: int         # variable attributes per region

    def size_bytes(self) -> int:
        """Bytes under the dataset cost model (32/region + 12/value)."""
        return int(self.regions * (32 + 12 * self.attributes))


def summarize_datasets(datasets: dict) -> dict:
    """Protocol-style summaries for in-memory datasets.

    Produces the same ``{name: summary_dict}`` shape that
    :meth:`Catalog.summaries` publishes for remote data, so local
    execution (the physical planner) and federated planning share one
    estimation code path.
    """
    return {name: dataset.summary() for name, dataset in datasets.items()}


def estimate_plan(
    node: PlanNode, catalog_summaries: dict, cache: dict | None = None
) -> Estimate:
    """Estimate one plan against ``{dataset_name: summary_dict}``.

    Summaries are what :meth:`Catalog.summaries` publishes, so estimation
    needs only protocol-level information about remote data.  Passing a
    *cache* dict memoises estimates by node identity, which keeps
    whole-plan annotation (one call per node, as the physical planner
    does) linear on shared DAGs.
    """
    if cache is not None and id(node) in cache:
        return cache[id(node)]
    estimate = _estimate_node(node, catalog_summaries, cache)
    if cache is not None:
        cache[id(node)] = estimate
    return estimate


def _estimate_node(
    node: PlanNode, catalog_summaries: dict, cache: dict | None
) -> Estimate:
    if isinstance(node, EmptyPlan):
        # Statically proven empty: exactly zero, not an estimate.
        return Estimate(0, 0, len(node.schema))
    if isinstance(node, ScanPlan):
        summary = catalog_summaries.get(node.dataset_name)
        if summary is None:
            return Estimate(1, 1_000, 1)
        return Estimate(
            samples=max(1, summary["samples"]),
            regions=max(1, summary["regions"]),
            attributes=len(summary.get("schema", ())) or 1,
        )
    if isinstance(node, SelectPlan):
        child = estimate_plan(node.child, catalog_summaries, cache)
        samples = child.samples
        regions = child.regions
        if node.meta_predicate is not None:
            samples *= META_SELECT_SELECTIVITY
            regions *= META_SELECT_SELECTIVITY
        if node.region_predicate is not None:
            regions *= REGION_SELECT_SELECTIVITY
        return Estimate(max(samples, 1), regions, child.attributes)
    if isinstance(node, (ProjectPlan,)):
        child = estimate_plan(node.child, catalog_summaries, cache)
        kept = (
            child.attributes
            if node.region_attributes is None
            else len(node.region_attributes)
        )
        return Estimate(
            child.samples, child.regions, kept + len(node.new_region_attributes)
        )
    if isinstance(node, (ExtendPlan, OrderPlan)):
        child = estimate_plan(node.child, catalog_summaries, cache)
        if isinstance(node, OrderPlan) and node.top is not None:
            fraction = min(1.0, node.top / max(child.samples, 1))
            return Estimate(
                min(child.samples, node.top),
                child.regions * fraction,
                child.attributes,
            )
        return child
    if isinstance(node, MergePlan):
        child = estimate_plan(node.child, catalog_summaries, cache)
        groups = max(1, len(node.groupby) * 3) if node.groupby else 1
        return Estimate(groups, child.regions, child.attributes)
    if isinstance(node, GroupPlan):
        child = estimate_plan(node.child, catalog_summaries, cache)
        return Estimate(child.samples, child.regions, child.attributes)
    if isinstance(node, UnionPlan):
        left = estimate_plan(node.left, catalog_summaries, cache)
        right = estimate_plan(node.right, catalog_summaries, cache)
        return Estimate(
            left.samples + right.samples,
            left.regions + right.regions,
            left.attributes + right.attributes,
        )
    if isinstance(node, DifferencePlan):
        left = estimate_plan(node.left, catalog_summaries, cache)
        return Estimate(
            left.samples, left.regions * DIFFERENCE_SURVIVAL, left.attributes
        )
    if isinstance(node, CoverPlan):
        child = estimate_plan(node.child, catalog_summaries, cache)
        return Estimate(1, child.regions * COVER_COMPRESSION, 1)
    if isinstance(node, MapPlan):
        reference = estimate_plan(node.reference, catalog_summaries, cache)
        experiment = estimate_plan(node.experiment, catalog_summaries, cache)
        ref_regions_per_sample = reference.regions / max(reference.samples, 1)
        samples = reference.samples * experiment.samples
        return Estimate(
            samples,
            samples * ref_regions_per_sample,
            reference.attributes + max(1, len(node.aggregates)),
        )
    if isinstance(node, JoinPlan):
        anchor = estimate_plan(node.anchor, catalog_summaries, cache)
        experiment = estimate_plan(node.experiment, catalog_summaries, cache)
        anchor_regions_per_sample = anchor.regions / max(anchor.samples, 1)
        samples = anchor.samples * experiment.samples
        return Estimate(
            samples,
            samples * anchor_regions_per_sample * JOIN_FANOUT,
            anchor.attributes + experiment.attributes + 1,
        )
    # Unknown node kinds: propagate the first child or a token estimate.
    if node.children:
        return estimate_plan(node.children[0], catalog_summaries, cache)
    return Estimate(1, 1_000, 1)
