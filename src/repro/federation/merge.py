"""Partial-aggregate parsing and parent-side shard merge.

A node executing a shard sub-plan stages its outputs in the same
serialised form every staged result uses
(:func:`repro.repository.staging._serialise_sections`), so partials
stream back over the existing chunked/checksummed transfer protocol --
or arrive as spill-file handles when the node is co-resident.  This
module turns those byte sections back into datasets and interleaves
per-chromosome partials into one result.

Merge guarantee: because aggregation boundaries align with the
chromosome sharding (MAP aggregates per reference region, COVER depths
per position -- never across chromosomes), the node-local kernels
already computed final values with ``segment_reduce``/``segment_fsum``;
the parent only *interleaves* chromosome runs in genome order and never
re-aggregates, so merged results are byte-identical to single-node
execution on clustered inputs.
"""

from __future__ import annotations

from repro.errors import FederationError
from repro.federation.shards import sample_chrom_runs
from repro.formats.bed import CustomBedFormat, schema_from_header, schema_to_header
from repro.formats.meta import parse_meta
from repro.gdm import Dataset, Metadata, Sample, chromosome_sort_key
from repro.store.persist import BLOB_HEADER, map_blob


def parse_staged_sections(meta_blob: bytes, region_blob: bytes,
                          name: str) -> Dataset:
    """Rebuild a dataset from its staged (meta, regions) byte sections.

    Inverse of the staging serialisation: the metadata section carries
    the schema header and per-sample metadata, the region section the
    per-sample region rows in the custom BED layout.
    """
    schema = None
    meta_by_sample: dict = {}
    current_id = None
    current_lines: list = []

    def flush_meta():
        if current_id is not None:
            meta_by_sample[current_id] = parse_meta("\n".join(current_lines))

    for line in meta_blob.decode().splitlines():
        if line.startswith("#schema\t"):
            schema = schema_from_header(line.split("\t", 1)[1])
        elif line.startswith("#sample\t"):
            flush_meta()
            current_id = int(line.split("\t", 1)[1])
            current_lines = []
        elif line:
            current_lines.append(line)
    flush_meta()
    if schema is None:
        raise FederationError(
            f"staged result for {name!r} carries no schema header"
        )
    region_format = CustomBedFormat(schema)
    regions_by_sample: dict = {}
    current_regions: list = []
    for line in region_blob.decode().splitlines():
        if line.startswith("#sample\t"):
            current_regions = []
            regions_by_sample[int(line.split("\t", 1)[1])] = current_regions
        elif line:
            current_regions.append(region_format.parse_line(line.split("\t")))
    samples = [
        Sample(sample_id,
               regions_by_sample.get(sample_id, []),
               meta_by_sample.get(sample_id, Metadata()))
        for sample_id in sorted(meta_by_sample)
    ]
    return Dataset(name, schema, samples, validate=False)


def read_blob_sections(path: str) -> tuple | None:
    """``(meta_blob, region_blob)`` of a staged spill file, or ``None``.

    The co-resident fast path: instead of streaming chunks, a node hands
    the client the path of its content-addressed spill file and the
    client maps it read-only (PR 6 handle protocol).  The map is copied
    out and closed immediately -- the caller keeps plain bytes.
    """
    mapped = map_blob(path)
    if mapped is None:
        return None
    mapping, meta_len, region_len = mapped
    try:
        base = BLOB_HEADER.size
        meta = bytes(mapping[base:base + meta_len])
        regions = bytes(mapping[base + meta_len:base + meta_len + region_len])
    finally:
        mapping.close()
    return meta, regions


def split_sections(payload: bytes, meta_len: int) -> tuple:
    """Split a streamed chunk concatenation into its two sections."""
    return payload[:meta_len], payload[meta_len:]


def merge_partials(partials: list, name: str | None = None) -> Dataset:
    """Interleave per-shard partial datasets into one result.

    Every partial must carry the same schema and the same sample id
    sequence (slices keep all samples, and result numbering is
    positional, so aligned partials are guaranteed for shardable
    plans).  For each sample, each chromosome's run is taken from the
    unique partial that produced regions on it; runs interleave in
    genome order.  Two partials producing the same (sample, chromosome)
    means the placement double-assigned a shard -- an error, not a
    merge.
    """
    if not partials:
        raise FederationError("nothing to merge: no partial results")
    if len(partials) == 1:
        # A single partial is already the complete result (and need not
        # be chromosome-clustered -- the degenerate one-group path runs
        # arbitrary plans on one node).
        only = partials[0]
        if name is not None and only.name != name:
            return only.with_name(name)
        return only
    first = partials[0]
    header = schema_to_header(first.schema)
    ids = first.sample_ids
    for other in partials[1:]:
        if schema_to_header(other.schema) != header:
            raise FederationError(
                f"partials of {first.name!r} disagree on schema"
            )
        if other.sample_ids != ids:
            raise FederationError(
                f"partials of {first.name!r} disagree on sample ids: "
                f"{ids} vs {other.sample_ids}"
            )
    merged_samples = []
    for sample_id in ids:
        runs: dict = {}
        for partial in partials:
            sample = partial[sample_id]
            for chrom, start, end in sample_chrom_runs(sample.regions):
                if chrom in runs:
                    raise FederationError(
                        f"shard overlap: sample {sample_id} has "
                        f"{chrom!r} regions in two partials"
                    )
                runs[chrom] = sample.regions[start:end]
        regions = [
            region
            for chrom in sorted(runs, key=chromosome_sort_key)
            for region in runs[chrom]
        ]
        merged_samples.append(first[sample_id].with_regions(regions))
    merged = first.with_samples(merged_samples, name=name or first.name)
    merged.provenance = list(first.provenance)
    return merged
