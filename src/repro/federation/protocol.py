"""The federated interaction protocol of section 4.4.

Three interactions, exactly as the paper lists them:

* **dataset information** -- metadata summaries and region schemas of a
  node's catalog (for locating data and formalising queries);
* **query compilation** -- a GMQL text is compiled remotely and answered
  with correctness plus a result-size estimate;
* **execution + controlled transfer** -- the query runs remotely, the
  result is staged, and the client pulls chunks at its own pace.

Message payload sizes are explicit so the simulated network can account
them; GMQL programs are "short texts" (their size is just ``len(text)``)
while datasets cost their serialised size.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field


def _json_size(payload) -> int:
    """Serialised size of a JSON-able payload, in bytes."""
    return len(json.dumps(payload, default=str).encode())


def payload_checksum(data: bytes) -> int:
    """The integrity checksum carried alongside chunk payloads."""
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True)
class DatasetInfoRequest:
    """Ask a node what it hosts."""

    def size_bytes(self) -> int:
        return 64


@dataclass(frozen=True)
class DatasetInfoResponse:
    """Summaries (name, samples, regions, schema, size) per dataset."""

    summaries: tuple

    def size_bytes(self) -> int:
        return _json_size(list(self.summaries))


@dataclass(frozen=True)
class CompileRequest:
    """Ship a GMQL text for remote compilation."""

    program: str

    def size_bytes(self) -> int:
        return len(self.program.encode()) + 64


@dataclass(frozen=True)
class CompileResponse:
    """Compilation outcome plus per-output size estimates."""

    ok: bool
    error: str = ""
    estimates: tuple = ()  # of (output_name, samples, regions, bytes)

    def size_bytes(self) -> int:
        return _json_size(
            {"ok": self.ok, "error": self.error,
             "estimates": list(self.estimates)}
        )


@dataclass(frozen=True)
class ExecuteRequest:
    """Run a program remotely; results are staged, not returned inline."""

    program: str
    engine: str = "naive"

    def size_bytes(self) -> int:
        return len(self.program.encode()) + 96


@dataclass(frozen=True)
class ExecuteResponse:
    """Tickets for the staged outputs."""

    tickets: tuple  # of (output_name, ticket, size_bytes, chunk_count)

    def size_bytes(self) -> int:
        return _json_size(list(self.tickets))


@dataclass(frozen=True)
class ChunkRequest:
    """Pull one chunk of a staged result."""

    ticket: str
    index: int

    def size_bytes(self) -> int:
        return 96


@dataclass(frozen=True)
class ChunkResponse:
    """One chunk of serialised result data, with an integrity checksum.

    The checksum is computed server-side over the *true* staged bytes,
    so a client can detect a transfer corrupted en route and re-request
    the chunk.
    """

    ticket: str
    index: int
    data: bytes
    checksum: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.checksum < 0:
            object.__setattr__(self, "checksum", payload_checksum(self.data))

    def verified_data(self) -> bytes:
        """The payload, after integrity verification."""
        from repro.errors import CorruptTransferError

        if payload_checksum(self.data) != self.checksum:
            raise CorruptTransferError(
                f"chunk {self.index} of ticket {self.ticket!r} failed its "
                f"integrity check"
            )
        return self.data

    def size_bytes(self) -> int:
        return len(self.data) + 96


@dataclass(frozen=True)
class DatasetTransfer:
    """A whole dataset shipped between nodes (the data-shipping path)."""

    name: str
    payload_bytes: int

    def size_bytes(self) -> int:
        return self.payload_bytes + 128


# -- sharded cluster execution ---------------------------------------------------


@dataclass(frozen=True)
class ShardExecuteRequest:
    """Run a program over the shards of a chromosome group only.

    ``outputs`` limits execution to a subset of the program's
    MATERIALIZE targets (``None`` = all): the planner runs
    chromosome-local and whole-genome outputs in separate rounds.
    """

    program: str
    chroms: tuple
    engine: str = "columnar"
    outputs: tuple | None = None

    def size_bytes(self) -> int:
        return (
            len(self.program.encode())
            + _json_size(list(self.chroms))
            + _json_size(list(self.outputs or ()))
            + 96
        )


@dataclass(frozen=True)
class ShardExecuteResponse:
    """Tickets for the staged shard partials, plus the node's own kernel
    wall time (the client's critical-path scaling measure).

    Each ticket is ``(output_name, ticket, size_bytes, chunk_count,
    meta_len)``; the metadata-section length lets the puller split the
    streamed payload back into its two staged sections.
    """

    tickets: tuple
    chroms: tuple = ()
    seconds: float = 0.0

    def size_bytes(self) -> int:
        return _json_size(
            {"tickets": list(self.tickets), "chroms": list(self.chroms),
             "seconds": self.seconds}
        )


@dataclass(frozen=True)
class ShardTransfer:
    """One dataset's chromosome-group slice shipped between nodes."""

    name: str
    chroms: tuple
    payload_bytes: int

    def size_bytes(self) -> int:
        return self.payload_bytes + _json_size(list(self.chroms)) + 128


@dataclass(frozen=True)
class BlobHandleRequest:
    """Ask for a spill-file handle to a staged result (co-resident path)."""

    ticket: str

    def size_bytes(self) -> int:
        return 96


@dataclass(frozen=True)
class BlobHandleResponse:
    """A persisted-store handle to a staged result's spill file.

    The whole point of the handle protocol: a co-resident client maps
    the content-addressed spill file read-only instead of streaming its
    bytes, so the response costs a fixed ~160 bytes however large the
    result is.  ``ok`` is ``False`` when the result is memory-staged
    (no spill file to hand out) -- the client falls back to chunk pulls.
    """

    ticket: str
    ok: bool
    path: str = ""
    meta_len: int = 0
    region_len: int = 0

    def size_bytes(self) -> int:
        return len(self.path.encode()) + 160
