"""Simulated network transport with byte and latency accounting.

The federation experiments (E9) need to *measure* what the paper argues
qualitatively -- query shipping moves orders of magnitude fewer bytes
than data shipping -- so every message crossing the simulated network is
accounted here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TransferLog:
    """Accumulated traffic between federation participants."""

    messages: list = field(default_factory=list)
    bytes_total: int = 0
    simulated_seconds: float = 0.0

    def record(self, sender: str, receiver: str, kind: str, size: int,
               network: "Network") -> None:
        """Account one message."""
        self.messages.append((sender, receiver, kind, size))
        self.bytes_total += size
        self.simulated_seconds += network.latency_seconds + (
            size / network.bandwidth_bytes_per_second
        )

    def bytes_by_kind(self) -> dict:
        """Traffic broken down by message kind."""
        out: dict = {}
        for __, __r, kind, size in self.messages:
            out[kind] = out.get(kind, 0) + size
        return out

    def message_count(self) -> int:
        return len(self.messages)


@dataclass
class Network:
    """A homogeneous simulated network."""

    bandwidth_bytes_per_second: float = 100e6 / 8  # 100 Mbit/s
    latency_seconds: float = 0.02
    log: TransferLog = field(default_factory=TransferLog)

    def send(self, sender: str, receiver: str, kind: str, payload_bytes: int
             ) -> None:
        """Transfer *payload_bytes* from sender to receiver."""
        self.log.record(sender, receiver, kind, payload_bytes, self)
