"""Simulated network transport with byte and latency accounting.

The federation experiments (E9) need to *measure* what the paper argues
qualitatively -- query shipping moves orders of magnitude fewer bytes
than data shipping -- so every message crossing the simulated network is
accounted here.

The network is also where chaos plugs in: a
:class:`~repro.resilience.faults.FaultInjector` attached to a
:class:`Network` (explicitly, or ambiently via ``repro run --chaos``)
evaluates its rules whenever instrumented code fires a named injection
point through :meth:`Network.fire`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TransferLog:
    """Accumulated traffic between federation participants."""

    messages: list = field(default_factory=list)
    bytes_total: int = 0
    simulated_seconds: float = 0.0

    def record(self, sender: str, receiver: str, kind: str, size: int,
               network: "Network") -> None:
        """Account one message."""
        self.messages.append((sender, receiver, kind, size))
        self.bytes_total += size
        self.simulated_seconds += network.latency_seconds + (
            size / network.bandwidth_bytes_per_second
        )

    def bytes_by_kind(self) -> dict:
        """Traffic broken down by message kind."""
        out: dict = {}
        for __, __r, kind, size in self.messages:
            out[kind] = out.get(kind, 0) + size
        return out

    def message_count(self) -> int:
        return len(self.messages)


@dataclass
class Network:
    """A homogeneous simulated network, optionally under chaos."""

    bandwidth_bytes_per_second: float = 100e6 / 8  # 100 Mbit/s
    latency_seconds: float = 0.02
    log: TransferLog = field(default_factory=TransferLog)
    injector: object = None   # FaultInjector | None; None = ambient lookup

    def send(self, sender: str, receiver: str, kind: str, payload_bytes: int
             ) -> None:
        """Transfer *payload_bytes* from sender to receiver."""
        self.log.record(sender, receiver, kind, payload_bytes, self)

    def _injector(self):
        if self.injector is not None:
            return self.injector
        from repro.resilience.faults import armed

        return armed()

    def fire(self, point: str, payload: bytes | None = None):
        """Evaluate chaos rules at *point*; returns the (possibly
        corrupted) payload.  Injected latency is billed as simulated
        time; injected errors propagate to the caller."""
        injector = self._injector()
        if injector is None:
            return payload
        payload, delay = injector.fire(point, payload)
        if delay:
            self.log.simulated_seconds += delay
        return payload
