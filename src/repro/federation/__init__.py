"""Federated query processing (paper, section 4.4).

Nodes own their data; queries move to the data; only results move back.
Every protocol message crosses a simulated network that accounts bytes
and latency, so the data-shipping/query-shipping trade-off is measurable
(experiment E9).
"""

from repro.federation.cluster import LocalCluster
from repro.federation.estimator import (
    Estimate,
    ShardPlacement,
    estimate_plan,
    estimate_shard_outputs,
    place_shards,
    shard_summaries,
    transfer_seconds,
)
from repro.federation.merge import (
    merge_partials,
    parse_staged_sections,
    read_blob_sections,
    split_sections,
)
from repro.federation.node import FederationNode
from repro.federation.planner import FederatedClient, FederatedOutcome
from repro.federation.protocol import (
    BlobHandleRequest,
    BlobHandleResponse,
    ChunkRequest,
    ChunkResponse,
    CompileRequest,
    CompileResponse,
    DatasetInfoRequest,
    DatasetInfoResponse,
    DatasetTransfer,
    ExecuteRequest,
    ExecuteResponse,
    ShardExecuteRequest,
    ShardExecuteResponse,
    ShardTransfer,
    payload_checksum,
)
from repro.federation.shards import (
    Shard,
    ShardManifest,
    dataset_manifest,
    is_chromosome_clustered,
    partition_chromosomes,
    sample_chrom_runs,
    slice_dataset,
)
from repro.federation.transfer import Network, TransferLog
from repro.federation.worker import WorkerNodeProxy, serve_node

__all__ = [
    "BlobHandleRequest",
    "BlobHandleResponse",
    "ChunkRequest",
    "ChunkResponse",
    "CompileRequest",
    "CompileResponse",
    "DatasetInfoRequest",
    "DatasetInfoResponse",
    "DatasetTransfer",
    "Estimate",
    "ExecuteRequest",
    "ExecuteResponse",
    "FederatedClient",
    "FederatedOutcome",
    "FederationNode",
    "LocalCluster",
    "Network",
    "Shard",
    "ShardExecuteRequest",
    "ShardExecuteResponse",
    "ShardManifest",
    "ShardPlacement",
    "ShardTransfer",
    "TransferLog",
    "WorkerNodeProxy",
    "dataset_manifest",
    "estimate_plan",
    "estimate_shard_outputs",
    "is_chromosome_clustered",
    "merge_partials",
    "parse_staged_sections",
    "partition_chromosomes",
    "payload_checksum",
    "place_shards",
    "read_blob_sections",
    "sample_chrom_runs",
    "serve_node",
    "shard_summaries",
    "slice_dataset",
    "split_sections",
    "transfer_seconds",
]
