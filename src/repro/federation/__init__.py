"""Federated query processing (paper, section 4.4).

Nodes own their data; queries move to the data; only results move back.
Every protocol message crosses a simulated network that accounts bytes
and latency, so the data-shipping/query-shipping trade-off is measurable
(experiment E9).
"""

from repro.federation.estimator import Estimate, estimate_plan
from repro.federation.node import FederationNode
from repro.federation.planner import FederatedClient, FederatedOutcome
from repro.federation.protocol import (
    ChunkRequest,
    ChunkResponse,
    CompileRequest,
    CompileResponse,
    DatasetInfoRequest,
    DatasetInfoResponse,
    DatasetTransfer,
    ExecuteRequest,
    ExecuteResponse,
    payload_checksum,
)
from repro.federation.transfer import Network, TransferLog

__all__ = [
    "ChunkRequest",
    "ChunkResponse",
    "CompileRequest",
    "CompileResponse",
    "DatasetInfoRequest",
    "DatasetInfoResponse",
    "DatasetTransfer",
    "Estimate",
    "ExecuteRequest",
    "ExecuteResponse",
    "FederatedClient",
    "FederatedOutcome",
    "FederationNode",
    "Network",
    "TransferLog",
    "estimate_plan",
    "payload_checksum",
]
