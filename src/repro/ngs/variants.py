"""Variant calling: pileup-majority SNV caller over aligned reads.

Completes the secondary-analysis toolbox of Figure 1: a donor genome with
planted SNVs is sequenced and aligned; the caller builds per-position
allele counts (a pileup) from the aligned read sequences, and calls a
variant wherever a non-reference allele dominates with enough depth.
"""

from __future__ import annotations

from repro.gdm import (
    Dataset,
    FLOAT,
    GenomicRegion,
    INT,
    RegionSchema,
    STR,
    Sample,
)
from repro.ngs.genome import ReferenceGenome, encode_sequence


def call_variants(
    aligned: Dataset,
    reference: ReferenceGenome,
    min_depth: int = 4,
    min_allele_fraction: float = 0.7,
    name: str = "VARIANTS",
) -> Dataset:
    """Call SNVs per sample of an aligned-reads dataset.

    The aligned dataset must carry the SAM-lite schema (the read sequence
    is the 5th variable attribute).  Reverse-strand alignments carry the
    reverse-complemented read; we re-complement to reference orientation.
    """
    schema = RegionSchema.of(
        ("ref", STR), ("alt", STR), ("depth", INT), ("allele_fraction", FLOAT)
    )
    sequence_index = aligned.schema.index_of("sequence")
    result = Dataset(name, schema)
    bases = "ACGT"
    for sample in aligned:
        # pileups[chrom][position] = [countA, countC, countG, countT]
        pileups: dict = {}
        for region in sample.regions:
            read_codes = encode_sequence(region.values[sequence_index])
            if region.strand == "-":
                read_codes = (3 - read_codes)[::-1]
            chrom_pileup = pileups.setdefault(region.chrom, {})
            for offset, code in enumerate(read_codes):
                position = region.left + offset
                counts = chrom_pileup.get(position)
                if counts is None:
                    counts = [0, 0, 0, 0]
                    chrom_pileup[position] = counts
                counts[int(code)] += 1
        regions = []
        for chrom in sorted(pileups):
            reference_codes = reference.codes(chrom)
            for position in sorted(pileups[chrom]):
                counts = pileups[chrom][position]
                depth = sum(counts)
                if depth < min_depth:
                    continue
                best = max(range(4), key=lambda code: counts[code])
                fraction = counts[best] / depth
                ref_code = int(reference_codes[position])
                if best == ref_code or fraction < min_allele_fraction:
                    continue
                regions.append(
                    GenomicRegion(
                        chrom,
                        position,
                        position + 1,
                        "*",
                        (bases[ref_code], bases[best], depth,
                         round(fraction, 3)),
                    )
                )
        meta = sample.meta.with_pairs(
            [("caller", "pileup-sim"), ("min_depth", min_depth)]
        )
        result.add_sample(Sample(sample.id, regions, meta), validate=False)
    return result


def variant_accuracy(called: Dataset, planted: list) -> dict:
    """Precision/recall of called SNVs against planted ``(chrom, pos, alt)``."""
    truth = {(chrom, position) for chrom, position, __ in planted}
    calls = {
        (region.chrom, region.left)
        for sample in called
        for region in sample.regions
    }
    true_positives = len(calls & truth)
    precision = true_positives / len(calls) if calls else 0.0
    recall = true_positives / len(truth) if truth else 0.0
    return {
        "precision": precision,
        "recall": recall,
        "called": len(calls),
        "planted": len(truth),
    }
