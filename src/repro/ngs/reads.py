"""Read simulation: the *primary analysis* stage of Figure 1.

Produces short reads from a (donor) genome, with optional ChIP-style
enrichment: a fraction of fragments is drawn around planted binding sites
instead of uniformly, which is what makes downstream peak calling find
something.  Sequencing errors are substituted uniformly at a configurable
rate.  Reads remember their true origin so alignment accuracy is
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.ngs.genome import ReferenceGenome, decode_sequence
from repro.simulate.rng import generator


@dataclass(frozen=True)
class Read:
    """One simulated read with its (hidden) true origin."""

    name: str
    sequence: str
    true_chrom: str
    true_position: int
    strand: str

    def __len__(self) -> int:
        return len(self.sequence)


def _reverse_complement_codes(codes: np.ndarray) -> np.ndarray:
    # Complement in code space: A<->T is 0<->3, C<->G is 1<->2, i.e. 3-x.
    return (3 - codes)[::-1]


def simulate_reads(
    genome: ReferenceGenome,
    n_reads: int,
    read_length: int = 50,
    error_rate: float = 0.01,
    seed: int = 0,
    binding_sites: list | None = None,
    enrichment: float = 0.0,
    fragment_sigma: float = 100.0,
) -> list:
    """Simulate *n_reads* reads.

    Parameters
    ----------
    genome:
        The genome to sequence (apply variants first for a donor).
    n_reads, read_length, error_rate:
        Sequencing parameters.
    binding_sites:
        ``[(chrom, position), ...]`` protein binding sites.
    enrichment:
        Fraction of reads drawn from around binding sites (ChIP pulldown);
        0 gives whole-genome (input/WGS) sequencing.
    fragment_sigma:
        Spread of enriched fragments around their site.
    seed:
        Randomness seed.
    """
    if read_length < 10:
        raise SimulationError("read length must be >= 10")
    if not 0 <= enrichment <= 1:
        raise SimulationError("enrichment must be in [0, 1]")
    rng = generator(seed, "reads")
    chroms = genome.chromosomes()
    sizes = np.array([genome.size(c) for c in chroms], dtype=np.float64)
    chrom_weights = sizes / sizes.sum()
    reads = []
    for index in range(n_reads):
        if binding_sites and enrichment and rng.random() < enrichment:
            chrom, site = binding_sites[int(rng.integers(0, len(binding_sites)))]
            position = int(rng.normal(site, fragment_sigma))
        else:
            chrom = chroms[int(rng.choice(len(chroms), p=chrom_weights))]
            position = int(rng.integers(0, genome.size(chrom) - read_length))
        position = min(max(0, position), genome.size(chrom) - read_length)
        codes = genome.codes(chrom)[position: position + read_length].copy()
        strand = "+" if rng.random() < 0.5 else "-"
        if strand == "-":
            codes = _reverse_complement_codes(codes).copy()
        # Sequencing errors: substitute random bases.
        n_errors = int(rng.binomial(read_length, error_rate))
        if n_errors:
            error_positions = rng.choice(read_length, size=n_errors,
                                         replace=False)
            offsets = rng.integers(1, 4, size=n_errors).astype(np.uint8)
            codes[error_positions] = (codes[error_positions] + offsets) % 4
        reads.append(
            Read(
                name=f"read{index:07d}",
                sequence=decode_sequence(codes),
                true_chrom=chrom,
                true_position=position,
                strand=strand,
            )
        )
    return reads
