"""Read alignment: the *secondary analysis* stage of Figure 1.

A seed-and-extend aligner over a k-mer hash index of the reference:

1. index every k-mer of the reference (k = 16 by default);
2. for each read, look up a few seed k-mers (both orientations) to get
   candidate positions;
3. score each candidate by Hamming distance over the full read length and
   keep the best; mapping quality reflects the best/second-best gap.

Ungapped by construction (our simulator introduces substitutions only),
which keeps CIGARs to a single ``<n>M`` -- the dialect
:mod:`repro.formats.sam` speaks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gdm import Dataset, GenomicRegion, Metadata, Sample
from repro.formats.sam import FLAG_REVERSE, SamFormat
from repro.ngs.genome import ReferenceGenome, encode_sequence
from repro.ngs.reads import Read, _reverse_complement_codes


@dataclass(frozen=True)
class Alignment:
    """One aligned read."""

    read: Read
    chrom: str
    position: int
    strand: str
    mismatches: int
    mapq: int

    @property
    def correct(self) -> bool:
        """True when the alignment recovered the read's true origin."""
        return (
            self.chrom == self.read.true_chrom
            and abs(self.position - self.read.true_position) <= 2
        )


def _kmer_codes(codes: np.ndarray, k: int) -> np.ndarray:
    """Rolling integer encodings of all k-mers (base-4 packing)."""
    if len(codes) < k:
        return np.empty(0, dtype=np.int64)
    weights = 4 ** np.arange(k - 1, -1, -1, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(
        codes.astype(np.int64), k
    )
    return windows @ weights


class KmerIndex:
    """Hash index from k-mer code to reference positions."""

    def __init__(self, genome: ReferenceGenome, k: int = 16) -> None:
        if k < 8 or k > 30:
            raise SimulationError("k must be in [8, 30]")
        self.k = k
        self._genome = genome
        self._index: dict = {}
        for chrom in genome.chromosomes():
            kmers = _kmer_codes(genome.codes(chrom), k)
            for position, kmer in enumerate(kmers):
                self._index.setdefault(int(kmer), []).append((chrom, position))

    def candidates(self, codes: np.ndarray, offsets: tuple) -> set:
        """Candidate (chrom, read_start) pairs from seeds at *offsets*."""
        found: set = set()
        kmers = _kmer_codes(codes, self.k)
        for offset in offsets:
            if offset >= len(kmers):
                continue
            for chrom, position in self._index.get(int(kmers[offset]), ()):
                found.add((chrom, position - offset))
        return found


class Aligner:
    """Seed-and-extend aligner producing :class:`Alignment` records."""

    def __init__(
        self,
        genome: ReferenceGenome,
        k: int = 16,
        max_mismatch_fraction: float = 0.1,
    ) -> None:
        self._genome = genome
        self._index = KmerIndex(genome, k)
        self._max_mismatch_fraction = max_mismatch_fraction

    def align_read(self, read: Read) -> Alignment | None:
        """Best alignment of one read, or ``None`` when unmapped."""
        length = len(read.sequence)
        forward = encode_sequence(read.sequence)
        reverse = _reverse_complement_codes(forward).copy()
        seeds = (0, length // 2, max(0, length - self._index.k))
        best = second = None
        for strand, codes in (("+", forward), ("-", reverse)):
            for chrom, start in self._index.candidates(codes, seeds):
                if start < 0 or start + length > self._genome.size(chrom):
                    continue
                reference = self._genome.codes(chrom)[start: start + length]
                mismatches = int(np.count_nonzero(reference != codes))
                record = (mismatches, chrom, start, strand)
                if best is None or record < best:
                    best, second = record, best
                elif second is None or record < second:
                    second = record
        if best is None:
            return None
        mismatches, chrom, start, strand = best
        if mismatches > length * self._max_mismatch_fraction:
            return None
        if second is None or second[0] > mismatches:
            mapq = 60
        elif second[0] == mismatches:
            mapq = 3  # ambiguous placement
        else:
            mapq = 30
        return Alignment(read, chrom, start, strand, mismatches, mapq)

    def align(self, reads: list) -> list:
        """Align many reads, dropping the unmapped ones."""
        alignments = []
        for read in reads:
            alignment = self.align_read(read)
            if alignment is not None:
                alignments.append(alignment)
        return alignments


def alignments_to_dataset(
    alignments: list,
    sample_id: int = 1,
    meta: Metadata | None = None,
    name: str = "ALIGNED",
) -> Dataset:
    """Package alignments as a GDM dataset in the SAM-lite schema."""
    sam = SamFormat()
    regions = []
    for alignment in alignments:
        flag = FLAG_REVERSE if alignment.strand == "-" else 0
        regions.append(
            GenomicRegion(
                alignment.chrom,
                alignment.position,
                alignment.position + len(alignment.read.sequence),
                alignment.strand,
                (
                    alignment.read.name,
                    flag,
                    alignment.mapq,
                    f"{len(alignment.read.sequence)}M",
                    alignment.read.sequence,
                ),
            )
        )
    regions.sort(key=GenomicRegion.sort_key)
    return Dataset(
        name,
        sam.schema(),
        [Sample(sample_id, regions, meta or Metadata({"stage": "secondary"}))],
        validate=False,
    )
