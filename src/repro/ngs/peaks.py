"""Peak calling: turning aligned ChIP reads into processed peak regions.

The caller models the background as a Poisson process with rate equal to
the genome-wide read density, scans the per-position coverage profile of
the aligned reads, and reports maximal runs whose depth clears the
``p_threshold`` quantile of the background, attaching the Poisson tail
p-value of the summit depth -- the ``p_value`` attribute of the paper's
Figure 2 PEAKS dataset.
"""

from __future__ import annotations

from scipy import stats

from repro.gdm import (
    Dataset,
    FLOAT,
    GenomicRegion,
    INT,
    RegionSchema,
    Sample,
)
from repro.intervals import coverage_profile


def call_peaks(
    aligned: Dataset,
    genome_size: int,
    p_threshold: float = 1e-4,
    min_width: int = 50,
    merge_gap: int = 100,
    name: str = "PEAKS",
) -> Dataset:
    """Call peaks on each sample of an aligned-reads dataset.

    Parameters
    ----------
    aligned:
        Dataset of aligned reads (any schema; only coordinates are used).
    genome_size:
        Total reference length, for the background rate.
    p_threshold:
        Poisson tail probability a depth must beat to enter a peak.
    min_width:
        Minimum peak width to report.
    merge_gap:
        Peaks closer than this merge into one.
    """
    schema = RegionSchema.of(
        ("name", "STR"), ("summit_depth", INT), ("p_value", FLOAT)
    )
    result = Dataset(name, schema)
    for sample in aligned:
        total_read_bases = sum(region.length for region in sample.regions)
        background_rate = max(total_read_bases / max(genome_size, 1), 1e-9)
        # Depth that a position must reach: smallest d with
        # P(Poisson(rate) >= d) < threshold.
        threshold_depth = int(stats.poisson.isf(p_threshold, background_rate)) + 1
        candidate = []
        raw_peaks = []
        for segment in coverage_profile(sample.regions):
            if segment.depth >= threshold_depth:
                if (
                    candidate
                    and (
                        segment.chrom != candidate[-1].chrom
                        or segment.left - candidate[-1].right > merge_gap
                    )
                ):
                    raw_peaks.append(candidate)
                    candidate = []
                candidate.append(segment)
        if candidate:
            raw_peaks.append(candidate)
        regions = []
        for index, run in enumerate(raw_peaks):
            left = run[0].left
            right = run[-1].right
            if right - left < min_width:
                continue
            summit_depth = max(s.depth for s in run)
            p_value = float(stats.poisson.sf(summit_depth - 1, background_rate))
            regions.append(
                GenomicRegion(
                    run[0].chrom,
                    left,
                    right,
                    "*",
                    (f"peak{index:05d}", summit_depth, max(p_value, 1e-300)),
                )
            )
        meta = sample.meta.with_pairs(
            [("caller", "poisson-sim"), ("p_threshold", p_threshold)]
        )
        result.add_sample(Sample(sample.id, regions, meta), validate=False)
    return result


def peak_recall(peaks: Dataset, binding_sites: list, slack: int = 500) -> float:
    """Fraction of planted binding sites recovered by at least one peak."""
    if not binding_sites:
        return 0.0
    recovered = 0
    regions = [r for sample in peaks for r in sample.regions]
    for chrom, position in binding_sites:
        if any(
            r.chrom == chrom and r.left - slack <= position < r.right + slack
            for r in regions
        ):
            recovered += 1
    return recovered / len(binding_sites)
