"""Reference genome simulation (the substrate of primary analysis).

A :class:`ReferenceGenome` holds one random nucleotide string per
chromosome, generated deterministically from a seed.  Sequences are kept
as numpy uint8 arrays over the alphabet ``ACGT`` for cheap slicing and
comparison; helpers convert to/from strings at the edges.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.simulate.rng import generator

#: The nucleotide alphabet, indexed by the internal uint8 code.
ALPHABET = np.frombuffer(b"ACGT", dtype=np.uint8)

_CODE_BY_LETTER = {letter: code for code, letter in enumerate(b"ACGT")}


def encode_sequence(text: str) -> np.ndarray:
    """Encode an ACGT string to the internal uint8 code array."""
    raw = text.upper().encode()
    try:
        return np.fromiter(
            (_CODE_BY_LETTER[b] for b in raw), dtype=np.uint8, count=len(raw)
        )
    except KeyError as exc:
        raise SimulationError(f"non-ACGT base in sequence: {text!r}") from exc


def decode_sequence(codes: np.ndarray) -> str:
    """Decode an internal code array back to an ACGT string."""
    return ALPHABET[codes].tobytes().decode()


class ReferenceGenome:
    """A seeded random reference genome."""

    def __init__(self, sequences: dict, seed: int = 0) -> None:
        self._sequences = sequences
        self.seed = seed

    @classmethod
    def generate(
        cls,
        seed: int = 0,
        chromosome_sizes: dict | None = None,
    ) -> "ReferenceGenome":
        """Generate random chromosomes (default: chr1/chr2 of 200 kb)."""
        sizes = chromosome_sizes or {"chr1": 200_000, "chr2": 200_000}
        sequences = {}
        for chrom, size in sorted(sizes.items()):
            if size < 1:
                raise SimulationError(f"bad chromosome size {size} for {chrom}")
            rng = generator(seed, "genome", chrom)
            sequences[chrom] = rng.integers(
                0, 4, size=size, dtype=np.uint8
            )
        return cls(sequences, seed)

    def chromosomes(self) -> tuple:
        """Sorted chromosome names."""
        return tuple(sorted(self._sequences))

    def size(self, chrom: str) -> int:
        """Length of one chromosome."""
        return len(self._sequences[chrom])

    def total_size(self) -> int:
        """Total genome length."""
        return sum(len(s) for s in self._sequences.values())

    def codes(self, chrom: str) -> np.ndarray:
        """The raw code array of a chromosome (do not mutate)."""
        return self._sequences[chrom]

    def fetch(self, chrom: str, left: int, right: int) -> str:
        """The sequence of ``chrom[left:right)`` as an ACGT string."""
        return decode_sequence(self._sequences[chrom][left:right])

    def with_variants(self, variants: list) -> "ReferenceGenome":
        """A donor genome: copy with SNVs applied.

        *variants* is a list of ``(chrom, position, alt_letter)``.
        """
        sequences = {
            chrom: codes.copy() for chrom, codes in self._sequences.items()
        }
        for chrom, position, alt in variants:
            sequences[chrom][position] = _CODE_BY_LETTER[ord(alt.upper())]
        return ReferenceGenome(sequences, self.seed)
