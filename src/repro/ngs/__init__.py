"""NGS pipeline substrate: the primary/secondary stages of Figure 1.

The paper positions GDM/GMQL downstream of primary analysis (read
production) and secondary analysis (alignment + feature calling).  This
package implements simulated versions of those stages -- genome, read
simulator, k-mer aligner, Poisson peak caller, pileup variant caller --
so that tertiary analysis has a realistic upstream to consume.
"""

from repro.ngs.align import Aligner, Alignment, KmerIndex, alignments_to_dataset
from repro.ngs.genome import (
    ALPHABET,
    ReferenceGenome,
    decode_sequence,
    encode_sequence,
)
from repro.ngs.peaks import call_peaks, peak_recall
from repro.ngs.pipeline import PipelineResult, run_pipeline
from repro.ngs.reads import Read, simulate_reads
from repro.ngs.variants import call_variants, variant_accuracy

__all__ = [
    "ALPHABET",
    "Aligner",
    "Alignment",
    "KmerIndex",
    "PipelineResult",
    "Read",
    "ReferenceGenome",
    "alignments_to_dataset",
    "call_peaks",
    "call_variants",
    "decode_sequence",
    "encode_sequence",
    "peak_recall",
    "run_pipeline",
    "simulate_reads",
    "variant_accuracy",
]
