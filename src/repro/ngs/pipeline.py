"""The full Figure 1 pipeline: primary -> secondary -> tertiary analysis.

:func:`run_pipeline` wires the whole chain together on a simulated
genome:

* **primary** -- simulate ChIP-enriched reads from a donor genome;
* **secondary** -- align them and call peaks (and optionally variants);
* **tertiary** -- load the processed data into GDM and run a GMQL MAP of
  peaks onto planted gene promoters.

Each stage is timed, giving experiment E1 its per-phase breakdown, and
every stage hands the next one a GDM dataset -- demonstrating the paper's
point that a single data model can mediate the entire chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.clock import perf_counter
from repro.gdm import (
    Dataset,
    Metadata,
    GenomicRegion,
    RegionSchema,
    STR,
    Sample,
)
from repro.ngs.align import Aligner, alignments_to_dataset
from repro.ngs.genome import ReferenceGenome
from repro.ngs.peaks import call_peaks, peak_recall
from repro.ngs.reads import simulate_reads
from repro.ngs.variants import call_variants, variant_accuracy
from repro.simulate.rng import generator


@dataclass
class PipelineResult:
    """Everything the pipeline produced, stage by stage."""

    genome: ReferenceGenome
    binding_sites: list
    reads: list
    aligned: Dataset
    peaks: Dataset
    variants: Dataset | None
    mapped: Dataset
    timings: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)


def run_pipeline(
    seed: int = 0,
    chromosome_sizes: dict | None = None,
    n_reads: int = 20_000,
    read_length: int = 50,
    n_binding_sites: int = 20,
    n_genes: int = 30,
    n_variants: int = 25,
    call_snvs: bool = False,
    enrichment: float = 0.6,
) -> PipelineResult:
    """Run the full primary/secondary/tertiary chain.

    Binding sites are planted *at gene promoters* (every site sits a
    fixed offset upstream of a gene TSS), so the tertiary MAP finds the
    signal the secondary stage recovered.
    """
    sizes = chromosome_sizes or {"chr1": 120_000, "chr2": 120_000}
    timings: dict = {}
    metrics: dict = {}

    started = perf_counter()
    reference = ReferenceGenome.generate(seed=seed, chromosome_sizes=sizes)
    rng = generator(seed, "pipeline")

    # Plant genes with promoters; bind the protein at a subset of promoters.
    genes = []
    chroms = reference.chromosomes()
    pitch = min(sizes.values()) // max(1, (n_genes // len(chroms)) + 1)
    index = 0
    for chrom in chroms:
        cursor = pitch // 2
        while cursor + 3_000 < reference.size(chrom) and index < n_genes:
            genes.append((f"gene{index:03d}", chrom, cursor, cursor + 2_000, "+"))
            cursor += pitch
            index += 1
    binding_sites = []
    for gene_name, chrom, left, right, strand in genes[:n_binding_sites]:
        binding_sites.append((chrom, max(0, left - 200)))  # upstream of TSS

    # Donor genome with planted SNVs.
    planted_variants = []
    for __ in range(n_variants):
        chrom = chroms[int(rng.integers(0, len(chroms)))]
        position = int(rng.integers(0, reference.size(chrom) - 1))
        current = reference.fetch(chrom, position, position + 1)
        alternatives = [b for b in "ACGT" if b != current]
        planted_variants.append(
            (chrom, position, alternatives[int(rng.integers(0, 3))])
        )
    donor = reference.with_variants(planted_variants)

    reads = simulate_reads(
        donor,
        n_reads=n_reads,
        read_length=read_length,
        seed=seed,
        binding_sites=binding_sites,
        enrichment=enrichment,
    )
    timings["primary"] = perf_counter() - started

    # Secondary: align + call peaks (+ variants).
    started = perf_counter()
    aligner = Aligner(reference)
    alignments = aligner.align(reads)
    aligned = alignments_to_dataset(
        alignments,
        meta=Metadata({"dataType": "ChipSeq", "cell": "simCell",
                       "antibody": "TFsim"}),
    )
    metrics["alignment_rate"] = len(alignments) / len(reads) if reads else 0.0
    metrics["alignment_accuracy"] = (
        sum(1 for a in alignments if a.correct) / len(alignments)
        if alignments
        else 0.0
    )
    peaks = call_peaks(aligned, genome_size=reference.total_size())
    metrics["peak_recall"] = peak_recall(peaks, binding_sites)
    variants = None
    if call_snvs:
        variants = call_variants(aligned, reference)
        metrics["variants"] = variant_accuracy(variants, planted_variants)
    timings["secondary"] = perf_counter() - started

    # Tertiary: GDM + GMQL sense-making (MAP peaks onto promoters).
    started = perf_counter()
    promoter_regions = [
        GenomicRegion(chrom, max(0, left - 500), left + 200, strand, (name,))
        for name, chrom, left, right, strand in genes
    ]
    promoters = Dataset(
        "PROMS",
        RegionSchema.of(("name", STR)),
        [Sample(1, promoter_regions, Metadata({"annType": "promoter"}))],
    )
    from repro.gmql import Count, map_regions

    mapped = map_regions(
        promoters, peaks, {"peak_count": (Count(), None)}, name="RESULT"
    )
    bound_names = {
        genes[i][0] for i in range(min(n_binding_sites, len(genes)))
    }
    hit = miss = 0
    for region in mapped[1].regions:
        if region.values[-1] > 0:
            if region.values[0] in bound_names:
                hit += 1
            else:
                miss += 1
    metrics["tertiary_bound_promoters_hit"] = hit
    metrics["tertiary_unbound_promoters_hit"] = miss
    timings["tertiary"] = perf_counter() - started

    return PipelineResult(
        genome=reference,
        binding_sites=binding_sites,
        reads=reads,
        aligned=aligned,
        peaks=peaks,
        variants=variants,
        mapped=mapped,
        timings=timings,
        metrics=metrics,
    )
