"""Genotype-phenotype correlation between genome spaces and metadata.

"...relationships among genomic data, and between them and biological or
clinical features of experimental samples expressed in their metadata,
i.e., for genotype-phenotype correlation analysis" (paper, section 4.1).

Given a genome space and a metadata attribute over its experiment columns
(e.g. ``karyotype`` = cancer/normal), each region's signal profile is
tested for association with the phenotype: two-sided Welch t-test for
binary phenotypes, Pearson correlation for numeric ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.analysis.genomespace import GenomeSpace
from repro.errors import EvaluationError
from repro.gdm import Dataset


@dataclass(frozen=True)
class Association:
    """One region/phenotype association."""

    region: str
    statistic: float
    p_value: float
    effect: float  # mean difference (binary) or correlation (numeric)


def phenotype_vector(mapped: Dataset, attribute: str) -> list:
    """The per-sample values of a metadata attribute, in sample order."""
    return [sample.meta.first(attribute) for sample in mapped]


def correlate_phenotype(
    space: GenomeSpace,
    phenotype: list,
    min_group_size: int = 2,
) -> list:
    """Associate every region with a phenotype across experiments.

    *phenotype* has one entry per experiment column.  With exactly two
    distinct values a Welch t-test compares the groups; with numeric
    values a Pearson correlation is computed.  Returns
    :class:`Association` records sorted by ascending p-value.
    """
    if len(phenotype) != space.n_experiments:
        raise EvaluationError(
            f"phenotype has {len(phenotype)} values for "
            f"{space.n_experiments} experiments"
        )
    values = list(phenotype)
    distinct = sorted({str(v) for v in values})
    matrix = np.nan_to_num(space.matrix, nan=0.0)
    results = []
    if len(distinct) == 2:
        mask = np.array([str(v) == distinct[1] for v in values])
        if mask.sum() < min_group_size or (~mask).sum() < min_group_size:
            raise EvaluationError("phenotype groups too small for a t-test")
        for label, row in zip(space.region_labels, matrix):
            a, b = row[mask], row[~mask]
            if np.allclose(a.std(), 0) and np.allclose(b.std(), 0):
                if np.isclose(a.mean(), b.mean()):
                    # Identical constant groups: no association.
                    statistic, p_value = 0.0, 1.0
                else:
                    # Perfect separation with zero within-group variance:
                    # the strongest possible association.  Assign the
                    # permutation-test floor: 1 / C(n, |group|).
                    from math import comb

                    n = len(row)
                    statistic = float("inf") if a.mean() > b.mean() else float(
                        "-inf"
                    )
                    p_value = 2.0 / comb(n, int(mask.sum()))
            else:
                statistic, p_value = stats.ttest_ind(a, b, equal_var=False)
            results.append(
                Association(
                    region=label,
                    statistic=float(statistic),
                    p_value=float(p_value),
                    effect=float(a.mean() - b.mean()),
                )
            )
    else:
        try:
            numeric = np.array([float(v) for v in values])
        except (TypeError, ValueError) as exc:
            raise EvaluationError(
                "phenotype must be binary or numeric"
            ) from exc
        for label, row in zip(space.region_labels, matrix):
            if np.allclose(row.std(), 0) or np.allclose(numeric.std(), 0):
                statistic, p_value = 0.0, 1.0
            else:
                statistic, p_value = stats.pearsonr(row, numeric)
            results.append(
                Association(
                    region=label,
                    statistic=float(statistic),
                    p_value=float(p_value),
                    effect=float(statistic),
                )
            )
    results.sort(key=lambda a: a.p_value)
    return results


def benjamini_hochberg(associations: list, alpha: float = 0.05) -> list:
    """The associations surviving Benjamini-Hochberg FDR control."""
    m = len(associations)
    ordered = sorted(associations, key=lambda a: a.p_value)
    survivors = []
    threshold_rank = 0
    for rank, association in enumerate(ordered, start=1):
        if association.p_value <= alpha * rank / m:
            threshold_rank = rank
    return ordered[:threshold_rank]
