"""DNA region clustering over genome spaces.

The paper's abstract promises "seamless integration of descriptive
statistics and high-level data analysis (e.g., DNA region clustering...)".
Two clustering routes are provided over genome-space rows: k-means (via a
small Lloyd's-iteration implementation with seeded initialisation) and
agglomerative hierarchical clustering (scipy linkage).
"""

from __future__ import annotations

import numpy as np
from scipy.cluster import hierarchy

from repro.analysis.genomespace import GenomeSpace
from repro.errors import EvaluationError
from repro.simulate.rng import generator


def kmeans_regions(
    space: GenomeSpace,
    k: int,
    seed: int = 0,
    max_iterations: int = 100,
) -> dict:
    """Cluster genome-space rows with Lloyd's k-means.

    Returns ``{"labels": [...], "centroids": ndarray, "inertia": float,
    "clusters": {cluster_index: [region_labels...]}}``.
    """
    matrix = np.nan_to_num(space.matrix, nan=0.0)
    n = matrix.shape[0]
    if not 1 <= k <= n:
        raise EvaluationError(f"k must be in [1, {n}], got {k}")
    rng = generator(seed, "kmeans")
    centroids = matrix[rng.choice(n, size=k, replace=False)].astype(np.float64)
    labels = np.zeros(n, dtype=np.int64)
    for __ in range(max_iterations):
        distances = (
            ((matrix[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        )
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and __ > 0:
            break
        labels = new_labels
        for cluster in range(k):
            members = matrix[labels == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    inertia = float(
        ((matrix - centroids[labels]) ** 2).sum()
    )
    clusters: dict = {}
    for label, region in zip(labels, space.region_labels):
        clusters.setdefault(int(label), []).append(region)
    return {
        "labels": labels.tolist(),
        "centroids": centroids,
        "inertia": inertia,
        "clusters": clusters,
    }


def hierarchical_regions(
    space: GenomeSpace,
    n_clusters: int,
    method: str = "average",
) -> dict:
    """Agglomerative clustering of genome-space rows (scipy linkage)."""
    matrix = np.nan_to_num(space.matrix, nan=0.0)
    if matrix.shape[0] < 2:
        raise EvaluationError("need at least two regions to cluster")
    linkage = hierarchy.linkage(matrix, method=method)
    labels = hierarchy.fcluster(linkage, t=n_clusters, criterion="maxclust")
    clusters: dict = {}
    for label, region in zip(labels, space.region_labels):
        clusters.setdefault(int(label), []).append(region)
    return {"labels": labels.tolist(), "linkage": linkage, "clusters": clusters}


def silhouette(space: GenomeSpace, labels: list) -> float:
    """Mean silhouette coefficient of a clustering (quality metric)."""
    matrix = np.nan_to_num(space.matrix, nan=0.0)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        return 0.0
    distances = np.sqrt(
        ((matrix[:, None, :] - matrix[None, :, :]) ** 2).sum(axis=2)
    )
    scores = []
    for i in range(len(labels)):
        same = labels == labels[i]
        same[i] = False
        a = distances[i][same].mean() if same.any() else 0.0
        b = min(
            distances[i][labels == other].mean()
            for other in unique
            if other != labels[i]
        )
        denominator = max(a, b)
        scores.append(0.0 if denominator == 0 else (b - a) / denominator)
    return float(np.mean(scores))
