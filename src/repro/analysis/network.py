"""Gene networks: the second transformation of Figure 4.

"Such table can be also interpreted as an adjacency matrix representing a
network, where regions are nodes and arcs have a weight obtained by
further aggregating properties across experiments" (paper, section 4.1).
:func:`genome_space_to_network` performs exactly that interpretation, and
helper functions report the hub/community structure regulatory analyses
look at.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.analysis.genomespace import GenomeSpace


def genome_space_to_network(
    space: GenomeSpace,
    method: str = "coactivity",
    threshold: float = 1.0,
    keep_self_loops: bool = False,
) -> nx.Graph:
    """Interpret a genome space as a weighted region/gene network.

    Nodes are the space's regions (labelled); an edge joins two regions
    whose similarity (see :meth:`GenomeSpace.similarity_matrix`) reaches
    *threshold*, weighted by that similarity.  The full dense network of
    a G-region space has G^2 relationships (the paper's "10K genes and
    100M relationships"); the threshold is what keeps analyses tractable.
    """
    similarity = space.similarity_matrix(method)
    graph = nx.Graph()
    graph.add_nodes_from(space.region_labels)
    n = len(space.region_labels)
    rows, cols = np.where(similarity >= threshold)
    for i, j in zip(rows, cols):
        if j <= i and not (keep_self_loops and i == j):
            continue
        if i == j and not keep_self_loops:
            continue
        graph.add_edge(
            space.region_labels[i],
            space.region_labels[j],
            weight=float(similarity[i, j]),
        )
    return graph


def interaction_strengths(graph: nx.Graph) -> list:
    """Edges sorted by descending weight, as ``(a, b, weight)`` triples."""
    return sorted(
        ((a, b, data["weight"]) for a, b, data in graph.edges(data=True)),
        key=lambda edge: -edge[2],
    )


def hub_genes(graph: nx.Graph, top: int = 10) -> list:
    """The *top* nodes by weighted degree (regulatory hubs)."""
    degree = graph.degree(weight="weight")
    return sorted(degree, key=lambda pair: -pair[1])[:top]


def network_communities(graph: nx.Graph) -> list:
    """Greedy-modularity communities, largest first (gene modules)."""
    if graph.number_of_edges() == 0:
        return [ {node} for node in graph.nodes ]
    communities = nx.community.greedy_modularity_communities(
        graph, weight="weight"
    )
    return [set(c) for c in communities]


def network_summary(graph: nx.Graph) -> dict:
    """Size/density/clustering summary used by reports and benchmarks."""
    nodes = graph.number_of_nodes()
    edges = graph.number_of_edges()
    return {
        "nodes": nodes,
        "edges": edges,
        "density": nx.density(graph) if nodes > 1 else 0.0,
        "components": nx.number_connected_components(graph) if nodes else 0,
        "mean_clustering": nx.average_clustering(graph) if nodes else 0.0,
    }


def relationship_count(n_regions: int) -> int:
    """Number of ordered relationships in a dense genome-space network.

    The paper: "simple queries over genes may produce genome spaces of
    10K genes and 100M relationships between them" -- i.e. G^2.
    Experiment E8 checks this arithmetic against the dense similarity
    matrix size.
    """
    return n_regions * n_regions
