"""Genome spaces: the region x experiment matrix of Figure 4.

"Every map operation produces what we call a genome space, i.e., a tabular
space of regions vs. experiments, which is the starting point for data
analysis" (paper, section 4.1).  :class:`GenomeSpace` is built from a MAP
result dataset: each output sample contributes one column, each reference
region one row; cell values are the MAP aggregate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError
from repro.gdm import Dataset


class GenomeSpace:
    """Dense region-by-experiment matrix with labelled axes.

    Attributes
    ----------
    matrix:
        ``(n_regions, n_experiments)`` float64 array (missing = nan).
    region_labels:
        One label per row (region name when available, else coordinates).
    column_labels:
        One label per column (from sample metadata).
    """

    def __init__(
        self,
        matrix: np.ndarray,
        region_labels: list,
        column_labels: list,
        region_coordinates: list,
    ) -> None:
        self.matrix = matrix
        self.region_labels = list(region_labels)
        self.column_labels = list(column_labels)
        self.region_coordinates = list(region_coordinates)

    @classmethod
    def from_map_result(
        cls,
        mapped: Dataset,
        value_attribute: str | None = None,
        label_attribute: str | None = None,
        column_attribute: str | None = None,
    ) -> "GenomeSpace":
        """Build a genome space from a MAP result.

        Parameters
        ----------
        mapped:
            A MAP result: every sample carries the same reference regions
            in the same genome order (this is checked).
        value_attribute:
            Region attribute holding the cell value; defaults to the last
            attribute (where MAP appends its aggregate).
        label_attribute:
            Region attribute used as row label; falls back to
            ``chrom:left-right``.
        column_attribute:
            Metadata attribute used as the column label; defaults to the
            sample id.
        """
        samples = list(mapped)
        if not samples:
            raise EvaluationError("cannot build a genome space from 0 samples")
        value_index = (
            mapped.schema.index_of(value_attribute)
            if value_attribute is not None
            else len(mapped.schema) - 1
        )
        if value_index < 0:
            raise EvaluationError("MAP result has no variable attributes")
        label_index = (
            mapped.schema.index_of(label_attribute)
            if label_attribute is not None
            else None
        )
        first = samples[0]
        coordinates = [region.coordinates() for region in first.regions]
        for sample in samples[1:]:
            if [r.coordinates() for r in sample.regions] != coordinates:
                raise EvaluationError(
                    "samples do not share reference regions; not a MAP result"
                )
        matrix = np.full((len(coordinates), len(samples)), np.nan)
        for column, sample in enumerate(samples):
            for row, region in enumerate(sample.regions):
                value = region.values[value_index]
                if value is not None:
                    matrix[row, column] = float(value)
        if label_index is not None:
            region_labels = [
                str(region.values[label_index]) for region in first.regions
            ]
        else:
            region_labels = [
                f"{chrom}:{left}-{right}"
                for chrom, left, right, __ in coordinates
            ]
        if column_attribute is not None:
            column_labels = [
                str(sample.meta.first(column_attribute, sample.id))
                for sample in samples
            ]
        else:
            column_labels = [f"exp{sample.id}" for sample in samples]
        return cls(matrix, region_labels, column_labels, coordinates)

    # -- shape and access -------------------------------------------------------

    @property
    def n_regions(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_experiments(self) -> int:
        return self.matrix.shape[1]

    def row(self, label: str) -> np.ndarray:
        """One region's profile across experiments."""
        return self.matrix[self.region_labels.index(label)]

    def column(self, label: str) -> np.ndarray:
        """One experiment's profile across regions."""
        return self.matrix[:, self.column_labels.index(label)]

    # -- transformations ----------------------------------------------------------

    def filter_active_regions(self, min_total: float = 1.0) -> "GenomeSpace":
        """Drop rows whose total signal is below *min_total*."""
        totals = np.nansum(self.matrix, axis=1)
        keep = totals >= min_total
        return GenomeSpace(
            self.matrix[keep],
            [l for l, k in zip(self.region_labels, keep) if k],
            self.column_labels,
            [c for c, k in zip(self.region_coordinates, keep) if k],
        )

    def normalized(self) -> "GenomeSpace":
        """Column-wise z-normalised copy (nan-safe); constant columns -> 0."""
        matrix = self.matrix.copy()
        means = np.nanmean(matrix, axis=0)
        stds = np.nanstd(matrix, axis=0)
        stds[stds == 0] = 1.0
        matrix = (matrix - means) / stds
        return GenomeSpace(
            matrix, self.region_labels, self.column_labels,
            self.region_coordinates,
        )

    def similarity_matrix(self, method: str = "correlation") -> np.ndarray:
        """Region-by-region similarity across experiments.

        ``correlation`` -- Pearson correlation of rows;
        ``cosine``      -- cosine similarity of rows;
        ``coactivity``  -- dot products of binarised (value > 0) rows,
        i.e. the number of experiments where both regions are active
        (this is the paper's "aggregating properties across experiments").
        """
        matrix = np.nan_to_num(self.matrix, nan=0.0)
        if method == "coactivity":
            active = (matrix > 0).astype(np.float64)
            return active @ active.T
        if method == "cosine":
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            unit = matrix / norms
            return unit @ unit.T
        if method == "correlation":
            centered = matrix - matrix.mean(axis=1, keepdims=True)
            norms = np.linalg.norm(centered, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            unit = centered / norms
            return unit @ unit.T
        raise EvaluationError(f"unknown similarity method {method!r}")

    def to_dataset(self, name: str = "GENOME_SPACE") -> "Dataset":
        """Convert the space back into a GDM dataset (one sample per
        experiment column), closing the loop: analysis results become
        queryable with GMQL again.

        The variable schema is ``(label STR, value FLOAT)``.
        """
        from repro.gdm import (
            FLOAT,
            GenomicRegion,
            Metadata,
            RegionSchema,
            STR,
            Sample,
        )

        schema = RegionSchema.of(("label", STR), ("value", FLOAT))
        dataset = Dataset(name, schema)
        for column, column_label in enumerate(self.column_labels):
            regions = []
            for row, (chrom, left, right, strand) in enumerate(
                self.region_coordinates
            ):
                value = self.matrix[row, column]
                regions.append(
                    GenomicRegion(
                        chrom, left, right, strand,
                        (
                            self.region_labels[row],
                            None if np.isnan(value) else float(value),
                        ),
                    )
                )
            dataset.add_sample(
                Sample(column + 1, regions,
                       Metadata({"experiment": column_label})),
                validate=False,
            )
        return dataset

    def to_rows(self) -> list:
        """The matrix as ``(region_label, {column_label: value})`` rows."""
        return [
            (
                label,
                {
                    column: (None if np.isnan(v) else float(v))
                    for column, v in zip(self.column_labels, row)
                },
            )
            for label, row in zip(self.region_labels, self.matrix)
        ]

    def __repr__(self) -> str:
        return (
            f"GenomeSpace({self.n_regions} regions x "
            f"{self.n_experiments} experiments)"
        )
