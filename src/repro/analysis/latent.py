"""Latent semantic analysis over genome spaces.

"Several data mining and computational intelligence approaches, including
advanced latent semantic analysis and topic modelling, can be applied to
evaluate relationships among genomic data" (paper, section 4.1).  We
implement the LSA core: truncated SVD of the (normalised) genome space,
giving k latent *regulatory programs*; regions and experiments both embed
into the factor space, enabling soft clustering ("topics") and low-rank
similarity that is robust to sparse counts.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.genomespace import GenomeSpace
from repro.errors import EvaluationError


class LatentModel:
    """A rank-k factorisation of a genome space.

    Attributes
    ----------
    region_factors:
        ``(n_regions, k)`` embedding of regions (rows of U * S).
    experiment_factors:
        ``(n_experiments, k)`` embedding of experiments (rows of V * S).
    singular_values:
        The k singular values (factor strengths).
    explained_variance:
        Fraction of total variance captured by the k factors.
    """

    def __init__(self, space: GenomeSpace, k: int) -> None:
        matrix = np.nan_to_num(space.matrix, nan=0.0).astype(np.float64)
        max_rank = min(matrix.shape)
        if not 1 <= k <= max_rank:
            raise EvaluationError(
                f"k must be in [1, {max_rank}] for a "
                f"{matrix.shape[0]}x{matrix.shape[1]} space, got {k}"
            )
        u, s, vt = np.linalg.svd(matrix, full_matrices=False)
        self.k = k
        self.space = space
        self.singular_values = s[:k]
        self.region_factors = u[:, :k] * s[:k]
        self.experiment_factors = vt[:k].T * s[:k]
        total = float((s**2).sum())
        self.explained_variance = (
            float((s[:k] ** 2).sum()) / total if total > 0 else 1.0
        )

    def reconstruct(self) -> np.ndarray:
        """The rank-k approximation of the original matrix."""
        u = self.region_factors / np.where(
            self.singular_values == 0, 1, self.singular_values
        )
        return u @ (
            self.experiment_factors.T
        )

    def region_topics(self) -> dict:
        """Soft region clustering: each region's dominant latent factor.

        Returns ``{factor_index: [region_labels...]}`` -- the "topics".
        """
        topics: dict = {}
        dominant = np.abs(self.region_factors).argmax(axis=1)
        for label, factor in zip(self.space.region_labels, dominant):
            topics.setdefault(int(factor), []).append(label)
        return topics

    def top_regions(self, factor: int, top: int = 5) -> list:
        """Regions loading strongest on one factor, ``(label, loading)``."""
        if not 0 <= factor < self.k:
            raise EvaluationError(f"no factor {factor} in a rank-{self.k} model")
        loadings = self.region_factors[:, factor]
        order = np.argsort(-np.abs(loadings))[:top]
        return [
            (self.space.region_labels[i], float(loadings[i])) for i in order
        ]

    def low_rank_similarity(self) -> np.ndarray:
        """Region-by-region similarity in the latent space (cosine)."""
        norms = np.linalg.norm(self.region_factors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        unit = self.region_factors / norms
        return unit @ unit.T


def latent_semantic_analysis(space: GenomeSpace, k: int) -> LatentModel:
    """Fit a rank-*k* LSA model to a genome space."""
    return LatentModel(space, k)
