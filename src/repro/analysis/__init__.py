"""Data analysis layer: genome spaces, gene networks, clustering, statistics.

Implements the paper's section 4.1 (MAP result -> genome space -> gene
network, clustering, genotype-phenotype correlation) and the GREAT-like
statistics of section 4.3.
"""

from repro.analysis.clustering import (
    hierarchical_regions,
    kmeans_regions,
    silhouette,
)
from repro.analysis.correlation import (
    Association,
    benjamini_hochberg,
    correlate_phenotype,
    phenotype_vector,
)
from repro.analysis.genomespace import GenomeSpace
from repro.analysis.latent import LatentModel, latent_semantic_analysis
from repro.analysis.network import (
    genome_space_to_network,
    hub_genes,
    interaction_strengths,
    network_communities,
    network_summary,
    relationship_count,
)
from repro.analysis.stats import (
    EnrichmentResult,
    binomial_region_enrichment,
    describe_result,
    hypergeometric_gene_enrichment,
)

__all__ = [
    "Association",
    "EnrichmentResult",
    "GenomeSpace",
    "LatentModel",
    "benjamini_hochberg",
    "binomial_region_enrichment",
    "correlate_phenotype",
    "describe_result",
    "genome_space_to_network",
    "hierarchical_regions",
    "hub_genes",
    "hypergeometric_gene_enrichment",
    "interaction_strengths",
    "kmeans_regions",
    "latent_semantic_analysis",
    "network_communities",
    "network_summary",
    "phenotype_vector",
    "relationship_count",
    "silhouette",
]
