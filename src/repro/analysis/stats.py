"""GREAT-like enrichment statistics for custom queries.

"Custom queries will need to be augmented with suitable mechanisms for
reasoning about data; such services could imitate the GREAT service ...
which includes powerful statistics to indicate the significance of query
results" (paper, section 4.3).  GREAT (McLean et al. 2010) tests a region
set against annotated regulatory domains with two statistics, both
implemented here:

* a **binomial test** over regions: if annotated domains cover fraction
  ``p`` of the genome, the number of query regions hitting a domain is
  Binomial(n, p) under the null;
* a **hypergeometric test** over genes: drawing ``k`` of the ``n`` genes
  hit by the query from the ``K`` annotated genes among ``N`` total.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats

from repro.errors import EvaluationError
from repro.gdm import GenomicRegion
from repro.intervals import GenomeIndex, merge_touching


@dataclass(frozen=True)
class EnrichmentResult:
    """Outcome of one enrichment test."""

    observed: int
    expected: float
    total: int
    fraction_null: float
    p_value: float
    fold: float

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the enrichment clears *alpha*."""
        return self.p_value < alpha


def binomial_region_enrichment(
    query_regions: list,
    domain_regions: list,
    genome_size: int,
) -> EnrichmentResult:
    """GREAT's binomial test of a region set against annotation domains.

    ``p`` is the fraction of the genome covered by the (merged) domains;
    the observed statistic is the number of query regions whose midpoint
    falls inside a domain (GREAT uses midpoints too).
    """
    if genome_size <= 0:
        raise EvaluationError("genome size must be positive")
    merged = merge_touching(domain_regions)
    covered = sum(region.length for region in merged)
    p_null = min(1.0, covered / genome_size)
    index = GenomeIndex(merged)
    observed = 0
    for region in query_regions:
        midpoint = int(region.midpoint)
        probe = GenomicRegion(region.chrom, midpoint, midpoint + 1)
        if next(iter(index.overlapping(probe)), None) is not None:
            observed += 1
    n = len(query_regions)
    expected = n * p_null
    p_value = float(stats.binom.sf(observed - 1, n, p_null)) if n else 1.0
    fold = observed / expected if expected > 0 else float("inf")
    return EnrichmentResult(
        observed=observed,
        expected=expected,
        total=n,
        fraction_null=p_null,
        p_value=p_value,
        fold=fold,
    )


def hypergeometric_gene_enrichment(
    hit_genes: set,
    annotated_genes: set,
    all_genes: set,
) -> EnrichmentResult:
    """GREAT's gene-based hypergeometric test.

    Tests whether the genes hit by a query are over-represented among
    the annotated genes.
    """
    if not all_genes:
        raise EvaluationError("the gene universe is empty")
    population = len(all_genes)
    successes = len(annotated_genes & all_genes)
    draws = len(hit_genes & all_genes)
    observed = len(hit_genes & annotated_genes & all_genes)
    expected = draws * successes / population if population else 0.0
    p_value = float(
        stats.hypergeom.sf(observed - 1, population, successes, draws)
    )
    fold = observed / expected if expected > 0 else float("inf")
    return EnrichmentResult(
        observed=observed,
        expected=expected,
        total=draws,
        fraction_null=successes / population,
        p_value=p_value,
        fold=fold,
    )


def describe_result(name: str, result: EnrichmentResult) -> str:
    """One-line GREAT-style report row."""
    return (
        f"{name}: {result.observed}/{result.total} hits "
        f"(expected {result.expected:.1f}, fold {result.fold:.2f}, "
        f"p = {result.p_value:.3g})"
    )
