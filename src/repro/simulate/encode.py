"""ENCODE-like synthetic repository (the paper's headline-query substrate).

The paper's Section 2 query ran over 2,423 ENCODE ChIP-seq samples holding
83,899,526 peaks, mapped onto 131,780 UCSC promoters and producing 29 GB.
Real ENCODE is not available offline, so :class:`EncodeRepository`
generates a repository with the same *structure* and tunable scale:

* samples carry realistic metadata (``dataType``, ``cell``, ``antibody``,
  ``treatment``, ``lab``, ``format``) drawn from ENCODE-like vocabularies;
* ChIP-seq peak regions are enriched at promoters/enhancers of a planted
  :class:`~repro.simulate.annotations.GenomeLayout` (a fraction of peaks
  binds near functional elements, the rest is background), so MAP counts
  carry real signal;
* per-sample peak counts follow the paper's ~34.6k-peaks-per-sample
  average, scaled by ``peaks_scale``.

``EncodeRepository.paper_scale_factor`` documents how a given generated
size extrapolates to the paper's cardinalities (used by experiment E3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gdm import (
    Dataset,
    FLOAT,
    GenomicRegion,
    Metadata,
    RegionSchema,
    STR,
    Sample,
)
from repro.simulate.annotations import GenomeLayout
from repro.simulate.rng import generator

#: The paper's reported cardinalities for the Section 2 query.
PAPER_SAMPLES = 2_423
PAPER_PEAKS = 83_899_526
PAPER_PROMOTERS = 131_780
PAPER_RESULT_BYTES = 29 * 1024**3

#: Mean peaks per sample implied by the paper's numbers (~34,626).
PAPER_PEAKS_PER_SAMPLE = PAPER_PEAKS / PAPER_SAMPLES

_CELLS = ("HeLa-S3", "K562", "GM12878", "HepG2", "H1-hESC", "A549")
_ANTIBODIES = ("CTCF", "POL2", "H3K27ac", "H3K4me1", "H3K4me3", "MYC", "REST")
_TREATMENTS = ("none", "IFNa", "estradiol")
_LABS = ("Broad", "Stanford", "UW", "Caltech")
_DATA_TYPES = ("ChipSeq", "ChipSeq", "ChipSeq", "DnaseSeq", "RnaSeq")


@dataclass
class EncodeRepository:
    """A generated ENCODE-like repository: annotations + experiment samples."""

    layout: GenomeLayout
    annotations: Dataset
    encode: Dataset
    seed: int
    peaks_per_sample_mean: float

    @classmethod
    def generate(
        cls,
        seed: int = 0,
        n_samples: int = 48,
        peaks_per_sample_mean: float = 350.0,
        layout: GenomeLayout | None = None,
        promoter_binding_fraction: float = 0.45,
        enhancer_binding_fraction: float = 0.2,
        name: str = "ENCODE",
    ) -> "EncodeRepository":
        """Generate a repository.

        Parameters
        ----------
        seed:
            Master seed; everything derives from it.
        n_samples:
            Number of experiment samples.
        peaks_per_sample_mean:
            Mean ChIP-seq peak count per sample (Poisson).
        layout:
            Genome layout to bind peaks to (a default one is generated).
        promoter_binding_fraction, enhancer_binding_fraction:
            Fractions of each sample's peaks placed at promoters and
            enhancers respectively; the remainder is uniform background.
        name:
            Dataset name for the experiment dataset.
        """
        layout = layout or GenomeLayout.generate(seed=seed)
        annotations = layout.annotations_dataset()
        schema = RegionSchema.of(("name", STR), ("p_value", FLOAT))
        encode = Dataset(name, schema)
        promoters = layout.promoter_regions()
        enhancers = sorted(layout.enhancers, key=GenomicRegion.sort_key)
        chroms = sorted(layout.chromosome_sizes)

        for sample_id in range(1, n_samples + 1):
            rng = generator(seed, "sample", sample_id)
            data_type = _DATA_TYPES[int(rng.integers(0, len(_DATA_TYPES)))]
            meta = Metadata(
                {
                    "dataType": data_type,
                    "cell": _CELLS[int(rng.integers(0, len(_CELLS)))],
                    "antibody": _ANTIBODIES[
                        int(rng.integers(0, len(_ANTIBODIES)))
                    ]
                    if data_type == "ChipSeq"
                    else (),
                    "treatment": _TREATMENTS[
                        int(rng.integers(0, len(_TREATMENTS)))
                    ],
                    "lab": _LABS[int(rng.integers(0, len(_LABS)))],
                    "format": "BED",
                    "view": "Peaks" if data_type != "RnaSeq" else "Signal",
                }
            )
            n_peaks = max(1, int(rng.poisson(peaks_per_sample_mean)))
            regions = []
            for peak_index in range(n_peaks):
                dice = rng.random()
                width = int(rng.integers(80, 600))
                if dice < promoter_binding_fraction and promoters:
                    anchor = promoters[int(rng.integers(0, len(promoters)))]
                    center = int(
                        rng.normal((anchor.left + anchor.right) / 2, 300)
                    )
                    chrom = anchor.chrom
                elif (
                    dice < promoter_binding_fraction + enhancer_binding_fraction
                    and enhancers
                ):
                    anchor = enhancers[int(rng.integers(0, len(enhancers)))]
                    center = int(
                        rng.normal((anchor.left + anchor.right) / 2, 200)
                    )
                    chrom = anchor.chrom
                else:
                    chrom = chroms[int(rng.integers(0, len(chroms)))]
                    center = int(
                        rng.integers(0, layout.chromosome_sizes[chrom])
                    )
                left = max(0, center - width // 2)
                p_value = float(10 ** -rng.uniform(2, 12))
                regions.append(
                    GenomicRegion(
                        chrom,
                        left,
                        left + width,
                        "*",
                        (f"peak{peak_index}", p_value),
                    )
                )
            regions.sort(key=GenomicRegion.sort_key)
            encode.add_sample(Sample(sample_id, regions, meta), validate=False)

        return cls(
            layout=layout,
            annotations=annotations,
            encode=encode,
            seed=seed,
            peaks_per_sample_mean=peaks_per_sample_mean,
        )

    # -- paper-scale arithmetic -------------------------------------------------

    def chipseq_sample_count(self) -> int:
        """Number of ChIP-seq samples (what the paper's SELECT keeps)."""
        return sum(
            1
            for sample in self.encode
            if sample.meta.first("dataType") == "ChipSeq"
        )

    def chipseq_peak_count(self) -> int:
        """Total peaks across ChIP-seq samples."""
        return sum(
            len(sample)
            for sample in self.encode
            if sample.meta.first("dataType") == "ChipSeq"
        )

    def promoter_count(self) -> int:
        """Number of promoter regions in the annotation sample."""
        return len(self.layout.genes)

    def paper_scale_factor(self) -> dict:
        """How this repository's cardinalities relate to the paper's.

        Returns the per-dimension ratios and the extrapolated result size
        of the Section 2 query at paper scale (experiment E3 checks the
        extrapolation lands near the reported 29 GB).
        """
        samples = self.chipseq_sample_count()
        peaks = self.chipseq_peak_count()
        promoters = self.promoter_count()
        return {
            "sample_ratio": samples / PAPER_SAMPLES if samples else 0.0,
            "peak_ratio": peaks / PAPER_PEAKS if peaks else 0.0,
            "promoter_ratio": promoters / PAPER_PROMOTERS if promoters else 0.0,
            "paper_samples": PAPER_SAMPLES,
            "paper_peaks": PAPER_PEAKS,
            "paper_promoters": PAPER_PROMOTERS,
            "paper_result_bytes": PAPER_RESULT_BYTES,
        }
