"""The Section 3 fragility scenario: breakpoints, mutations, replication
timing and gene dis-regulation.

The paper's first open problem assumes a causal chain: oncogene induction
dis-regulates certain genes -> dis-regulated genes fail to protect their
loci during replication -> DNA string breaks accumulate there -> mutations
occur where the genome is fragile.  We plant that chain explicitly:

* a fraction of genes is marked **dis-regulated** (their expression
  changes between control and induced conditions);
* **fragile sites** are placed at dis-regulated genes (with some decoys);
* **breakpoints** are sampled densely inside fragile sites, sparsely
  elsewhere; **mutations** are sampled densely near breakpoints;
* **replication timing** regions get a delayed timing value over fragile
  sites.

Experiment E6 runs the GMQL pipeline the paper sketches -- extract
differentially dis-regulated genes, intersect with break regions, count
mutations -- and checks that the measured mutation enrichment at
dis-regulated genes reproduces the planted effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gdm import (
    Dataset,
    FLOAT,
    GenomicRegion,
    Metadata,
    RegionSchema,
    STR,
    Sample,
)
from repro.simulate.annotations import GenomeLayout
from repro.simulate.rng import generator


@dataclass
class CancerScenario:
    """Planted fragility world: datasets plus ground truth."""

    layout: GenomeLayout
    expression: Dataset       #: per-gene expression, control + induced samples
    breakpoints: Dataset      #: DNA break points (point features)
    mutations: Dataset        #: somatic mutations (point features)
    replication: Dataset      #: replication-timing domains
    disregulated: set = field(default_factory=set)  #: planted gene names

    @classmethod
    def generate(
        cls,
        seed: int = 0,
        disregulated_fraction: float = 0.2,
        breaks_per_fragile_site: float = 12.0,
        background_breaks: int = 60,
        mutations_per_break: float = 4.0,
        background_mutations: int = 120,
        fold_change: float = 3.0,
        layout: GenomeLayout | None = None,
    ) -> "CancerScenario":
        layout = layout or GenomeLayout.generate(seed=seed)
        rng = generator(seed, "cancer")
        genes = list(layout.genes)
        n_disregulated = max(1, int(len(genes) * disregulated_fraction))
        shuffled = list(genes)
        rng.shuffle(shuffled)
        disregulated = {gene.name for gene in shuffled[:n_disregulated]}

        # Expression: two samples (control, induced), one region per gene.
        # Each gene has one base level; conditions add small measurement
        # noise, and dis-regulated genes shift by fold_change when induced.
        base_rng = generator(seed, "expr-base")
        base_level = {
            gene.name: float(base_rng.lognormal(3, 0.4)) for gene in genes
        }
        up_rng = generator(seed, "expr-direction")
        goes_up = {
            gene.name: up_rng.random() < 0.5 for gene in genes
        }
        expr_schema = RegionSchema.of(("gene", STR), ("expression", FLOAT))
        expression = Dataset("EXPRESSION", expr_schema)
        for sample_id, condition in ((1, "control"), (2, "induced")):
            expr_rng = generator(seed, "expr", condition)
            regions = []
            for gene in genes:
                value = base_level[gene.name] * float(
                    expr_rng.lognormal(0, 0.08)
                )
                if condition == "induced" and gene.name in disregulated:
                    value = (
                        value * fold_change
                        if goes_up[gene.name]
                        else value / fold_change
                    )
                regions.append(
                    GenomicRegion(gene.chrom, gene.left, gene.right, gene.strand,
                                  (gene.name, round(value, 3)))
                )
            regions.sort(key=GenomicRegion.sort_key)
            expression.add_sample(
                Sample(sample_id, regions,
                       Metadata({"condition": condition,
                                 "assay": "RNA-seq", "oncogene": "MYCsim"})),
                validate=False,
            )

        # Breakpoints: dense at fragile (dis-regulated) gene loci.
        break_rng = generator(seed, "breaks")
        break_regions = []
        for gene in genes:
            if gene.name not in disregulated:
                continue
            count = max(1, int(break_rng.poisson(breaks_per_fragile_site)))
            for __ in range(count):
                position = int(break_rng.integers(gene.left, gene.right))
                break_regions.append(
                    GenomicRegion(gene.chrom, position, position + 1, "*",
                                  ("fragile",))
                )
        chroms = sorted(layout.chromosome_sizes)
        for __ in range(background_breaks):
            chrom = chroms[int(break_rng.integers(0, len(chroms)))]
            position = int(
                break_rng.integers(0, layout.chromosome_sizes[chrom] - 1)
            )
            break_regions.append(
                GenomicRegion(chrom, position, position + 1, "*", ("background",))
            )
        break_regions.sort(key=GenomicRegion.sort_key)
        breakpoints = Dataset(
            "BREAKPOINTS",
            RegionSchema.of(("origin", STR)),
            [Sample(1, break_regions,
                    Metadata({"assay": "BLISS-sim", "condition": "induced"}))],
        )

        # Mutations: clustered around breakpoints plus background.
        mut_rng = generator(seed, "mutations")
        mutation_regions = []
        for break_region in break_regions:
            if break_region.values[0] != "fragile":
                continue
            count = int(mut_rng.poisson(mutations_per_break))
            for __ in range(count):
                position = max(
                    0, break_region.left + int(mut_rng.normal(0, 500))
                )
                mutation_regions.append(
                    GenomicRegion(break_region.chrom, position, position + 1,
                                  "*", ("C>T",))
                )
        for __ in range(background_mutations):
            chrom = chroms[int(mut_rng.integers(0, len(chroms)))]
            position = int(
                mut_rng.integers(0, layout.chromosome_sizes[chrom] - 1)
            )
            mutation_regions.append(
                GenomicRegion(chrom, position, position + 1, "*", ("A>G",))
            )
        mutation_regions.sort(key=GenomicRegion.sort_key)
        mutations = Dataset(
            "MUTATIONS",
            RegionSchema.of(("change", STR)),
            [Sample(1, mutation_regions,
                    Metadata({"assay": "WGS-sim", "condition": "induced"}))],
        )

        # Replication timing: one domain per gene neighbourhood; fragile
        # sites replicate late (higher timing value).
        rt_rng = generator(seed, "timing")
        timing_regions = []
        for gene in genes:
            timing = float(rt_rng.uniform(0.2, 0.5))
            if gene.name in disregulated:
                timing += float(rt_rng.uniform(0.3, 0.5))  # delayed
            timing_regions.append(
                GenomicRegion(
                    gene.chrom,
                    max(0, gene.left - 5_000),
                    gene.right + 5_000,
                    "*",
                    (round(timing, 3),),
                )
            )
        timing_regions.sort(key=GenomicRegion.sort_key)
        replication = Dataset(
            "REPLICATION",
            RegionSchema.of(("timing", FLOAT)),
            [Sample(1, timing_regions,
                    Metadata({"assay": "Repli-seq-sim", "condition": "induced"}))],
        )

        return cls(
            layout=layout,
            expression=expression,
            breakpoints=breakpoints,
            mutations=mutations,
            replication=replication,
            disregulated=disregulated,
        )


def fragility_analysis(scenario: CancerScenario, fold_threshold: float = 2.0
                       ) -> dict:
    """The paper's sketched pipeline, in GMQL operations.

    1. extract differentially dis-regulated genes (expression fold change
       between control and induced beyond *fold_threshold*);
    2. intersect them with regions where string breaks occur;
    3. count the mutations at those genes vs the others.

    Returns the gene sets and the mutation enrichment ratio
    (mutations per kb at dis-regulated-with-breaks genes over the rest).
    """
    from repro.gmql import Count, map_regions

    control = {
        r.values[0]: r.values[1]
        for r in scenario.expression[1].regions
    }
    induced = {
        r.values[0]: r.values[1]
        for r in scenario.expression[2].regions
    }
    called_disregulated = {
        gene
        for gene in control
        if control[gene] > 0
        and (
            induced[gene] / control[gene] >= fold_threshold
            or control[gene] / max(induced[gene], 1e-9) >= fold_threshold
        )
    }

    gene_dataset = Dataset(
        "CALLED",
        RegionSchema.of(("gene", STR)),
        [
            Sample(
                1,
                [
                    GenomicRegion(g.chrom, g.left, g.right, g.strand, (g.name,))
                    for g in scenario.layout.genes
                ],
                Metadata({"set": "all"}),
            )
        ],
    )

    with_breaks = map_regions(
        gene_dataset, scenario.breakpoints, {"breaks": (Count(), None)},
        name="GENES_BREAKS",
    )
    with_both = map_regions(
        with_breaks, scenario.mutations, {"mutations": (Count(), None)},
        name="GENES_BREAKS_MUTS",
    )

    per_gene = {}
    for region in with_both[1].regions:
        gene, breaks, mutation_count = (
            region.values[0], region.values[1], region.values[2]
        )
        per_gene[gene] = {
            "breaks": breaks,
            "mutations": mutation_count,
            "kb": region.length / 1_000,
            "disregulated": gene in called_disregulated,
        }

    def density(genes):
        mutation_total = sum(per_gene[g]["mutations"] for g in genes)
        kb_total = sum(per_gene[g]["kb"] for g in genes)
        return mutation_total / kb_total if kb_total else 0.0

    target = {
        g
        for g in per_gene
        if per_gene[g]["disregulated"] and per_gene[g]["breaks"] > 0
    }
    rest = set(per_gene) - target
    enrichment = (
        density(target) / density(rest) if rest and density(rest) > 0 else
        float("inf")
    )
    return {
        "called_disregulated": called_disregulated,
        "target_genes": target,
        "per_gene": per_gene,
        "mutation_enrichment": enrichment,
    }
