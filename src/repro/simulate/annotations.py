"""Synthetic genome layout and annotation datasets (the UCSC side).

The paper's example selects promoter regions from an ANNOTATIONS dataset
downloaded from the UCSC database.  :class:`GenomeLayout` plants genes
(with strand and TSS), derives promoters, and scatters enhancers between
genes; :meth:`GenomeLayout.annotations_dataset` packages them as a GDM
dataset with one sample per annotation type, each tagged with the
``annType`` metadata attribute the paper's SELECT uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.gdm import Dataset, GenomicRegion, Metadata, RegionSchema, STR, Sample
from repro.simulate.rng import generator


@dataclass(frozen=True)
class Gene:
    """One planted gene: body coordinates plus derived landmarks."""

    name: str
    chrom: str
    left: int
    right: int
    strand: str

    @property
    def tss(self) -> int:
        """Transcription start site (strand-aware 5' end)."""
        return self.right if self.strand == "-" else self.left

    def body_region(self) -> GenomicRegion:
        """The gene body as a region carrying the gene name."""
        return GenomicRegion(self.chrom, self.left, self.right, self.strand,
                             (self.name,))

    def promoter_region(self, upstream: int = 2000, downstream: int = 200
                        ) -> GenomicRegion:
        """The promoter window around the TSS (strand-aware)."""
        return self.body_region().promoter(upstream, downstream)


@dataclass
class GenomeLayout:
    """A synthetic genome: chromosome sizes, genes, enhancers.

    Use :meth:`generate` rather than the constructor.
    """

    seed: int
    chromosome_sizes: dict
    genes: list = field(default_factory=list)
    enhancers: list = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        seed: int = 0,
        n_chromosomes: int = 3,
        chromosome_size: int = 10_000_000,
        n_genes: int = 400,
        n_enhancers: int = 300,
        gene_length_mean: int = 20_000,
    ) -> "GenomeLayout":
        """Plant a deterministic genome layout.

        Genes are laid out without overlap on each chromosome (spacing
        drawn around the uniform pitch); enhancers fall in intergenic
        space.
        """
        if n_chromosomes < 1 or n_genes < 1:
            raise SimulationError("need at least one chromosome and one gene")
        sizes = {
            f"chr{i + 1}": chromosome_size for i in range(n_chromosomes)
        }
        layout = cls(seed=seed, chromosome_sizes=sizes)
        rng = generator(seed, "layout")
        genes_per_chrom = [
            n_genes // n_chromosomes + (1 if i < n_genes % n_chromosomes else 0)
            for i in range(n_chromosomes)
        ]
        gene_index = 0
        for chrom_index, (chrom, size) in enumerate(sorted(sizes.items())):
            count = genes_per_chrom[chrom_index]
            if count == 0:
                continue
            pitch = size // (count + 1)
            cursor = pitch // 2
            for __ in range(count):
                length = int(
                    min(
                        max(2_000, rng.normal(gene_length_mean,
                                              gene_length_mean / 4)),
                        pitch * 0.8,
                    )
                )
                jitter = int(rng.integers(0, max(1, pitch // 4)))
                left = min(cursor + jitter, size - length - 1)
                strand = "+" if rng.random() < 0.5 else "-"
                layout.genes.append(
                    Gene(f"gene{gene_index:04d}", chrom, left, left + length,
                         strand)
                )
                gene_index += 1
                cursor += pitch
        # Enhancers: short intergenic elements.
        rng = generator(seed, "enhancers")
        chroms = sorted(sizes)
        gene_spans: dict = {}
        for gene in layout.genes:
            gene_spans.setdefault(gene.chrom, []).append((gene.left, gene.right))
        for index in range(n_enhancers):
            chrom = chroms[int(rng.integers(0, len(chroms)))]
            size = sizes[chrom]
            for __ in range(50):  # rejection-sample intergenic placement
                left = int(rng.integers(0, size - 1_000))
                right = left + int(rng.integers(200, 1_000))
                if all(
                    right <= g_left or left >= g_right
                    for g_left, g_right in gene_spans.get(chrom, ())
                ):
                    layout.enhancers.append(
                        GenomicRegion(chrom, left, right, "*",
                                      (f"enh{index:04d}",))
                    )
                    break
        return layout

    # -- dataset views ---------------------------------------------------------

    def promoter_regions(self, upstream: int = 2000, downstream: int = 200
                         ) -> list:
        """All promoter regions, in genome order."""
        promoters = [g.promoter_region(upstream, downstream) for g in self.genes]
        promoters.sort(key=GenomicRegion.sort_key)
        return promoters

    def gene_regions(self) -> list:
        """All gene-body regions, in genome order."""
        bodies = [g.body_region() for g in self.genes]
        bodies.sort(key=GenomicRegion.sort_key)
        return bodies

    def annotations_dataset(self, name: str = "ANNOTATIONS") -> Dataset:
        """The UCSC-style annotation dataset of the paper's example.

        One sample per annotation type (``gene``, ``promoter``,
        ``enhancer``), each tagged with the ``annType`` metadata attribute
        so that ``SELECT(annType == 'promoter')`` works verbatim.
        """
        schema = RegionSchema.of(("name", STR))
        dataset = Dataset(name, schema)
        dataset.add_sample(
            Sample(
                1,
                self.gene_regions(),
                Metadata({"annType": "gene", "assembly": "sim1",
                          "provider": "UCSC-sim"}),
            ),
            validate=False,
        )
        dataset.add_sample(
            Sample(
                2,
                self.promoter_regions(),
                Metadata({"annType": "promoter", "assembly": "sim1",
                          "provider": "UCSC-sim"}),
            ),
            validate=False,
        )
        dataset.add_sample(
            Sample(
                3,
                sorted(self.enhancers, key=GenomicRegion.sort_key),
                Metadata({"annType": "enhancer", "assembly": "sim1",
                          "provider": "UCSC-sim"}),
            ),
            validate=False,
        )
        return dataset
