"""The Figure 3 scenario: CTCF loops, enhancer marks and gene regulation.

The paper's second open problem (section 3) asks whether active enhancers
regulate active genes when both are enclosed within short CTCF loops.  We
plant exactly that structure:

* a :class:`~repro.simulate.annotations.GenomeLayout` provides genes and
  enhancers;
* a set of **CTCF loops** (regions spanning a few tens of kilobases) is
  laid out; a planted fraction of loops encloses one gene promoter *and*
  one enhancer -- those are the **true regulatory pairs**;
* signal samples are generated for CTCF, H3K27ac, H3K4me1 (enhancer
  marks) and H3K4me3 (promoter mark): marks fire at the planted elements
  with high probability and at background positions with low probability.

:func:`candidate_pairs_query` then expresses the paper's suggested
analysis in GMQL -- intersect marks, enclose within loops -- and
experiment E4 measures how well the query recovers the planted pairs
versus a distance-only baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gdm import (
    Dataset,
    FLOAT,
    GenomicRegion,
    Metadata,
    RegionSchema,
    STR,
    Sample,
)
from repro.simulate.annotations import GenomeLayout
from repro.simulate.rng import generator


@dataclass
class CtcfScenario:
    """Planted CTCF-loop world: datasets plus ground truth."""

    layout: GenomeLayout
    loops: Dataset          #: CTCF loop spans (one sample)
    marks: Dataset          #: histone-mark + CTCF signal samples
    genes: Dataset          #: RefSeq-like gene bodies (one sample)
    true_pairs: set = field(default_factory=set)
    #: (gene_name, enhancer_name) pairs planted inside loops

    @classmethod
    def generate(
        cls,
        seed: int = 0,
        n_loops: int = 60,
        looped_pair_fraction: float = 0.6,
        mark_sensitivity: float = 0.9,
        background_marks: int = 120,
        layout: GenomeLayout | None = None,
    ) -> "CtcfScenario":
        """Plant the scenario.

        ``looped_pair_fraction`` of the loops are *regulatory*: placed to
        enclose one promoter and one nearby enhancer.  The rest are decoy
        loops over background DNA.  ``mark_sensitivity`` is the
        probability that a planted element actually shows its histone
        mark (models assay noise); ``background_marks`` per mark type are
        scattered uniformly.
        """
        layout = layout or GenomeLayout.generate(seed=seed)
        rng = generator(seed, "ctcf")
        loop_regions = []
        true_pairs: set = set()
        enhancers_by_chrom: dict = {}
        for enhancer in layout.enhancers:
            enhancers_by_chrom.setdefault(enhancer.chrom, []).append(enhancer)

        genes = list(layout.genes)
        rng.shuffle(genes)
        n_regulatory = int(n_loops * looped_pair_fraction)
        made = 0
        marked_promoters = []
        marked_enhancers = []
        for gene in genes:
            if made >= n_regulatory:
                break
            candidates = [
                e
                for e in enhancers_by_chrom.get(gene.chrom, ())
                if 2_000 < abs(e.midpoint - gene.tss) < 60_000
            ]
            if not candidates:
                continue
            enhancer = candidates[int(rng.integers(0, len(candidates)))]
            left = min(gene.promoter_region().left, enhancer.left) - int(
                rng.integers(1_000, 5_000)
            )
            right = max(gene.promoter_region().right, enhancer.right) + int(
                rng.integers(1_000, 5_000)
            )
            loop_regions.append(
                GenomicRegion(gene.chrom, max(0, left), right, "*",
                              (f"loop{made:03d}",))
            )
            true_pairs.add((gene.name, enhancer.values[0]))
            marked_promoters.append(gene)
            marked_enhancers.append(enhancer)
            made += 1
        # Decoy loops over background.
        chroms = sorted(layout.chromosome_sizes)
        for index in range(n_loops - made):
            chrom = chroms[int(rng.integers(0, len(chroms)))]
            left = int(rng.integers(0, layout.chromosome_sizes[chrom] - 80_000))
            loop_regions.append(
                GenomicRegion(chrom, left, left + int(rng.integers(20_000, 80_000)),
                              "*", (f"decoy{index:03d}",))
            )
        loop_regions.sort(key=GenomicRegion.sort_key)
        loops = Dataset(
            "CTCF_LOOPS",
            RegionSchema.of(("name", STR)),
            [Sample(1, loop_regions, Metadata({"antibody": "CTCF",
                                               "view": "loops"}))],
        )

        # Mark samples.
        mark_schema = RegionSchema.of(("signal", FLOAT))
        marks = Dataset("MARKS", mark_schema)

        def mark_sample(sample_id, mark, elements, width_sigma):
            mark_rng = generator(seed, "mark", mark)
            regions = []
            for element in elements:
                if mark_rng.random() > mark_sensitivity:
                    continue
                center = int(element.midpoint)
                width = int(mark_rng.integers(300, 1_200))
                regions.append(
                    GenomicRegion(
                        element.chrom,
                        max(0, center - width // 2),
                        center + width // 2,
                        "*",
                        (float(mark_rng.uniform(5, 50)),),
                    )
                )
            for __ in range(background_marks):
                chrom = chroms[int(mark_rng.integers(0, len(chroms)))]
                left = int(
                    mark_rng.integers(0, layout.chromosome_sizes[chrom] - 2_000)
                )
                regions.append(
                    GenomicRegion(chrom, left, left + int(mark_rng.integers(200, 800)),
                                  "*", (float(mark_rng.uniform(1, 10)),))
                )
            regions.sort(key=GenomicRegion.sort_key)
            marks.add_sample(
                Sample(sample_id, regions,
                       Metadata({"antibody": mark, "dataType": "ChipSeq"})),
                validate=False,
            )

        promoter_elements = [g.promoter_region() for g in marked_promoters]
        mark_sample(1, "H3K27ac", marked_enhancers, 400)
        mark_sample(2, "H3K4me1", marked_enhancers, 600)
        mark_sample(3, "H3K4me3", promoter_elements, 400)

        genes_dataset = Dataset(
            "REFSEQ",
            RegionSchema.of(("name", STR)),
            [Sample(1, layout.gene_regions(),
                    Metadata({"provider": "RefSeq-sim", "annType": "gene"}))],
        )
        return cls(
            layout=layout,
            loops=loops,
            marks=marks,
            genes=genes_dataset,
            true_pairs=true_pairs,
        )


def extract_candidate_pairs(scenario: CtcfScenario) -> set:
    """The paper's Figure 3 analysis as GMQL operations.

    Enhancer candidates: H3K27ac regions intersecting H3K4me1 regions
    (both enhancer marks) and *not* intersecting H3K4me3 (promoter mark).
    Candidate gene-enhancer pairs: a gene whose promoter and an enhancer
    candidate fall inside the same CTCF loop.  Returns a set of
    ``(gene_name, enhancer_name)`` pairs (enhancer named by its planted
    annotation via overlap lookup).
    """
    from repro.gmql import (
        DistLess,
        GenometricCondition,
        MetaCompare,
        difference,
        join,
        select,
    )
    from repro.intervals import GenomeIndex

    k27 = select(scenario.marks, MetaCompare("antibody", "==", "H3K27ac"))
    k4me1 = select(scenario.marks, MetaCompare("antibody", "==", "H3K4me1"))
    k4me3 = select(scenario.marks, MetaCompare("antibody", "==", "H3K4me3"))

    # Active enhancer signals: K27ac peaks overlapping K4me1, minus
    # promoter-mark territory.
    overlap = GenometricCondition(DistLess(-1))
    active = join(k27, k4me1, overlap, output="INT", name="ACTIVE")
    enhancer_candidates = difference(active, k4me3, name="ENH")

    # Promoters of genes.
    promoter_regions = [
        g.promoter_region() for g in scenario.layout.genes
    ]
    gene_by_promoter = {
        id(region): gene.name
        for region, gene in zip(promoter_regions, scenario.layout.genes)
    }

    # Enclose promoter and enhancer candidate within the same loop.
    loop_index = GenomeIndex(
        [r for sample in scenario.loops for r in sample.regions]
    )
    enhancer_annotation_index = GenomeIndex(scenario.layout.enhancers)

    pairs: set = set()
    candidate_regions = [
        r for sample in enhancer_candidates for r in sample.regions
    ]
    for promoter in promoter_regions:
        for loop in loop_index.overlapping(promoter):
            if not loop.contains(promoter):
                continue
            for candidate in candidate_regions:
                if loop.contains(candidate):
                    for annotation in enhancer_annotation_index.overlapping(
                        candidate
                    ):
                        pairs.add(
                            (gene_by_promoter[id(promoter)],
                             annotation.values[0])
                        )
    return pairs


def distance_baseline_pairs(scenario: CtcfScenario, max_distance: int = 60_000
                            ) -> set:
    """Baseline ignoring loops: pair every gene with every enhancer within
    *max_distance* of its TSS.  More recall, far less precision -- the
    foil experiment E4 compares the loop-aware query against."""
    pairs: set = set()
    for gene in scenario.layout.genes:
        for enhancer in scenario.layout.enhancers:
            if enhancer.chrom != gene.chrom:
                continue
            if abs(enhancer.midpoint - gene.tss) <= max_distance:
                pairs.add((gene.name, enhancer.values[0]))
    return pairs
