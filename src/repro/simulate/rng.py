"""Seeded randomness for all generators.

Every generator takes an explicit integer seed and derives child seeds
deterministically, so a whole synthetic repository is reproducible from
one number -- essential for benchmark comparability across engines.
"""

from __future__ import annotations

import hashlib

import numpy as np


def generator(seed: int, *scope) -> np.random.Generator:
    """A numpy Generator for ``(seed, scope...)``.

    The scope components (strings/ints) namespace the stream, so e.g.
    sample 7's peak positions do not shift when sample 6 changes size.
    """
    label = ":".join(str(part) for part in (seed, *scope))
    digest = hashlib.sha256(label.encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def poisson_at_least_one(rng: np.random.Generator, mean: float) -> int:
    """A Poisson draw clamped to at least 1 (empty samples are separate
    events, modelled explicitly by callers that want them)."""
    return max(1, int(rng.poisson(mean)))
