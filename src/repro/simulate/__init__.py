"""Synthetic data generators standing in for the paper's repositories.

ENCODE, TCGA and UCSC data are not available offline; these generators
produce structurally equivalent datasets with planted ground truth so
every experiment in DESIGN.md has a verifiable signal (see the
Substitutions section of DESIGN.md).
"""

from repro.simulate.annotations import Gene, GenomeLayout
from repro.simulate.cancer import CancerScenario, fragility_analysis
from repro.simulate.encode import (
    EncodeRepository,
    PAPER_PEAKS,
    PAPER_PEAKS_PER_SAMPLE,
    PAPER_PROMOTERS,
    PAPER_RESULT_BYTES,
    PAPER_SAMPLES,
)
from repro.simulate.epigenome import (
    CtcfScenario,
    distance_baseline_pairs,
    extract_candidate_pairs,
)
from repro.simulate.rng import generator
from repro.simulate.workload import region_sample, workload_dataset

__all__ = [
    "CancerScenario",
    "CtcfScenario",
    "EncodeRepository",
    "Gene",
    "GenomeLayout",
    "PAPER_PEAKS",
    "PAPER_PEAKS_PER_SAMPLE",
    "PAPER_PROMOTERS",
    "PAPER_RESULT_BYTES",
    "PAPER_SAMPLES",
    "distance_baseline_pairs",
    "extract_candidate_pairs",
    "fragility_analysis",
    "generator",
    "region_sample",
    "workload_dataset",
]
