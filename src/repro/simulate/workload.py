"""Generic region workloads for engine and kernel benchmarks (E7, E14)."""

from __future__ import annotations

from repro.gdm import (
    Dataset,
    FLOAT,
    GenomicRegion,
    Metadata,
    RegionSchema,
    Sample,
)
from repro.simulate.rng import generator


def region_sample(
    seed: int,
    n_regions: int,
    genome_size: int = 10_000_000,
    n_chromosomes: int = 3,
    width_mean: int = 300,
    clustered: bool = False,
) -> list:
    """A list of random regions; ``clustered`` concentrates them in hot
    spots (10% of the genome holds 80% of the regions), the shape that
    separates tree and sweep joins in the E14 ablation."""
    rng = generator(seed, "workload")
    regions = []
    hot_spots = [
        (f"chr{int(rng.integers(1, n_chromosomes + 1))}",
         int(rng.integers(0, genome_size)))
        for __ in range(max(1, n_regions // 100))
    ]
    for __ in range(n_regions):
        width = max(1, int(rng.normal(width_mean, width_mean / 3)))
        if clustered and rng.random() < 0.8:
            chrom, center = hot_spots[int(rng.integers(0, len(hot_spots)))]
            left = max(0, int(rng.normal(center, 5_000)))
        else:
            chrom = f"chr{int(rng.integers(1, n_chromosomes + 1))}"
            left = int(rng.integers(0, genome_size - width))
        regions.append(
            GenomicRegion(chrom, left, left + width, "*",
                          (round(float(rng.random()), 4),))
        )
    regions.sort(key=GenomicRegion.sort_key)
    return regions


def workload_dataset(
    seed: int,
    n_samples: int,
    regions_per_sample: int,
    name: str = "WORK",
    clustered: bool = False,
    **kwargs,
) -> Dataset:
    """A dataset of random samples with a single FLOAT ``score`` attribute."""
    schema = RegionSchema.of(("score", FLOAT))
    dataset = Dataset(name, schema)
    for sample_id in range(1, n_samples + 1):
        dataset.add_sample(
            Sample(
                sample_id,
                region_sample(
                    seed * 1000 + sample_id, regions_per_sample,
                    clustered=clustered, **kwargs,
                ),
                Metadata({"dataType": "ChipSeq", "replicate": sample_id,
                          "cell": f"cell{sample_id % 3}"}),
            ),
            validate=False,
        )
    return dataset
