"""Ranking primitives shared by the search services: TF-IDF and cosine."""

from __future__ import annotations

import math


def tf_idf_scores(query_tokens: list, documents: dict) -> list:
    """Rank documents by TF-IDF relevance to a token list.

    *documents* maps document key to its token list.  Returns
    ``[(key, score), ...]`` sorted by descending score, zero-score
    documents omitted.
    """
    n_documents = len(documents)
    if n_documents == 0:
        return []
    document_frequency: dict = {}
    term_counts: dict = {}
    for key, tokens in documents.items():
        counts: dict = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        term_counts[key] = counts
        for token in counts:
            document_frequency[token] = document_frequency.get(token, 0) + 1
    scores = []
    for key, counts in term_counts.items():
        score = 0.0
        length = sum(counts.values()) or 1
        for token in query_tokens:
            tf = counts.get(token, 0) / length
            if tf == 0:
                continue
            idf = math.log((1 + n_documents) / (1 + document_frequency[token])) + 1
            score += tf * idf
        if score > 0:
            scores.append((key, score))
    scores.sort(key=lambda pair: (-pair[1], str(pair[0])))
    return scores


def cosine_similarity(a: dict, b: dict) -> float:
    """Cosine similarity of two sparse vectors (dict form)."""
    shared = set(a) & set(b)
    numerator = sum(a[k] * b[k] for k in shared)
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return numerator / (norm_a * norm_b)
