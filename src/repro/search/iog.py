"""The Internet of Genomes (paper, section 4.5): publish, crawl, search.

The paper's "most ambitious and challenging vision": research centres
publish links to their experimental data with metadata under a simple
protocol; a third-party search service periodically crawls the hosts,
indexes the metadata (and optionally mirrors some datasets), and answers
search queries with snippets plus an indication of whether each dataset
is mirrored; users then download from the owning host asynchronously.

Everything is simulated in-process: :class:`GenomeHost` is a publishing
site, :class:`Crawler` fetches under a politeness budget, and
:class:`GenomeSearchService` indexes and serves queries.  Transfers are
accounted on a :class:`~repro.federation.transfer.Network`.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.errors import RetryExhaustedError, SearchError, TransientError
from repro.federation.transfer import Network
from repro.gdm import Dataset
from repro.repository.index import tokenize_value
from repro.resilience import RetryPolicy, SimulatedClock, call_with_retry
from repro.search.ranking import tf_idf_scores


@dataclass(frozen=True)
class PublishedLink:
    """One published dataset link: the unit of the publishing protocol."""

    host: str
    dataset_name: str
    url: str
    metadata_pairs: tuple       # ((attribute, value), ...)
    size_bytes: int
    version: int                # bumped when the host updates the dataset

    def metadata_size_bytes(self) -> int:
        """Size of the crawlable metadata record."""
        return 64 + sum(
            len(str(a)) + len(str(v)) for a, v in self.metadata_pairs
        )


class GenomeHost:
    """A research centre publishing download links with metadata."""

    def __init__(self, name: str, network: Network) -> None:
        self.name = name
        self.network = network
        self._published: dict = {}   # dataset name -> (link, dataset)
        self._versions = itertools.count(1)
        self.fetches = 0
        #: When true the host refuses protocol fetches (simulated outage);
        #: crawlers must tolerate this and retry on later passes.
        self.offline = False

    def publish(self, dataset: Dataset, public: bool = True) -> PublishedLink:
        """Publish a dataset link (the paper's reviewer-download practice).

        Non-public links exist but are invisible to crawlers, like a
        download URL shared only within a paper's review process.
        """
        link = PublishedLink(
            host=self.name,
            dataset_name=dataset.name,
            url=f"genome://{self.name}/{dataset.name}",
            metadata_pairs=tuple(
                (attribute, value)
                for sample in dataset
                for attribute, value in sample.meta
            ),
            size_bytes=dataset.estimated_size_bytes(),
            version=next(self._versions),
        )
        self._published[dataset.name] = (link, dataset, public)
        return link

    def update(self, dataset: Dataset) -> PublishedLink:
        """Republish a new version of a dataset (staleness for crawlers)."""
        if dataset.name not in self._published:
            raise SearchError(f"{dataset.name!r} was never published")
        public = self._published[dataset.name][2]
        return self.publish(dataset, public)

    def crawlable_links(self, requester: str) -> list:
        """Serve the public link list (one protocol fetch)."""
        self.network.fire(f"iog.links:{self.name}")
        if self.offline:
            raise SearchError(f"host {self.name!r} is unreachable")
        links = [
            link for link, __, public in self._published.values() if public
        ]
        payload = 64 + sum(link.metadata_size_bytes() for link in links)
        self.network.send(self.name, requester, "crawl-links", payload)
        self.fetches += 1
        return links

    def download(self, dataset_name: str, requester: str) -> Dataset:
        """Serve a dataset download (the asynchronous user fetch)."""
        self.network.fire(f"iog.download:{self.name}")
        if self.offline:
            raise SearchError(f"host {self.name!r} is unreachable")
        try:
            link, dataset, __ = self._published[dataset_name]
        except KeyError:
            raise SearchError(
                f"host {self.name!r} does not publish {dataset_name!r}"
            ) from None
        self.network.send(self.name, requester, "dataset-download",
                          link.size_bytes)
        return dataset


@dataclass(frozen=True)
class HostOutcome:
    """What happened at one host during one crawl pass."""

    host: str
    ok: bool
    attempts: int = 1
    reason: str = ""


@dataclass
class CrawlReport:
    """What one crawl pass did.

    Per-host accounting has a single source of truth: the
    :attr:`host_outcomes` list.  ``hosts_planned`` / ``hosts_visited`` /
    ``hosts_failed`` / ``retries`` are all *derived* from it, so they can
    never disagree with each other (they used to be independent counters
    and could drift).
    """

    links_seen: int = 0
    links_new_or_updated: int = 0
    datasets_mirrored: int = 0
    bytes_fetched: int = 0
    host_outcomes: list = field(default_factory=list)  # of HostOutcome

    @property
    def hosts_planned(self) -> int:
        """Hosts this pass attempted (bounded by the crawl budget)."""
        return len(self.host_outcomes)

    @property
    def hosts_visited(self) -> int:
        return sum(1 for outcome in self.host_outcomes if outcome.ok)

    @property
    def hosts_failed(self) -> int:
        return sum(1 for outcome in self.host_outcomes if not outcome.ok)

    @property
    def retries(self) -> int:
        """Failed fetch attempts that were retried within the pass."""
        return sum(max(0, outcome.attempts - 1)
                   for outcome in self.host_outcomes)

    def failed_hosts(self) -> list:
        return sorted(o.host for o in self.host_outcomes if not o.ok)


class Crawler:
    """Periodic, polite crawler feeding the search service.

    Link fetches and mirror downloads run under a seeded
    :class:`~repro.resilience.RetryPolicy`: transient host trouble is
    retried within the pass (in virtual time), while hard failures --
    offline hosts, exhausted retries -- mark the host failed so the next
    pass tries it first.
    """

    def __init__(
        self,
        hosts: list,
        network: Network,
        name: str = "crawler",
        mirror_budget_bytes: int = 0,
        policy: RetryPolicy | None = None,
        seed: int = 0,
    ) -> None:
        self.hosts = {host.name: host for host in hosts}
        self.network = network
        self.name = name
        self.mirror_budget_bytes = mirror_budget_bytes
        self.policy = policy or RetryPolicy()
        self.clock = SimulatedClock(sink=network.log)
        self.rng = random.Random(seed)

    def _fetch(self, fn) -> tuple:
        """Run one host interaction under the retry policy.

        Returns ``(result, attempts)``; raises the final error (with
        attempts folded into :class:`RetryExhaustedError`) on failure.
        """
        attempts = [0]

        def on_attempt(attempt, __error):
            attempts[0] = attempt

        result = call_with_retry(
            fn, self.policy, clock=self.clock, rng=self.rng,
            on_attempt=on_attempt,
        )
        return result, attempts[0] + 1

    def crawl(self, service: "GenomeSearchService",
              max_hosts: int | None = None) -> CrawlReport:
        """One crawl pass: fetch links, index changes, mirror within budget.

        *max_hosts* bounds the pass (the crawl budget of experiment E12);
        hosts are visited in least-recently-crawled order so repeated
        passes eventually cover everything.
        """
        report = CrawlReport()
        order = sorted(
            self.hosts.values(),
            key=lambda host: service.last_crawled.get(host.name, -1),
        )
        if max_hosts is not None:
            order = order[:max_hosts]
        mirrored_bytes = service.mirrored_bytes()
        for host in order:
            baseline = self.network.log.bytes_total
            try:
                links, attempts = self._fetch(
                    lambda h=host: h.crawlable_links(self.name)
                )
            except (SearchError, TransientError, RetryExhaustedError) as exc:
                # Unreachable host: record the failure but do not advance
                # its last-crawled clock, so the next pass retries it first.
                attempts = (
                    exc.attempts
                    if isinstance(exc, RetryExhaustedError) else 1
                )
                report.host_outcomes.append(
                    HostOutcome(host.name, ok=False, attempts=attempts,
                                reason=type(exc).__name__)
                )
                continue
            report.host_outcomes.append(
                HostOutcome(host.name, ok=True, attempts=attempts)
            )
            service.last_crawled[host.name] = service.clock
            for link in links:
                report.links_seen += 1
                known = service.links.get(link.url)
                if known is None or known.version < link.version:
                    service.index_link(link)
                    report.links_new_or_updated += 1
                    if (
                        self.mirror_budget_bytes
                        and mirrored_bytes + link.size_bytes
                        <= self.mirror_budget_bytes
                    ):
                        try:
                            dataset, __ = self._fetch(
                                lambda h=host, l=link: h.download(
                                    l.dataset_name, self.name
                                )
                            )
                        except (SearchError, TransientError,
                                RetryExhaustedError):
                            continue    # link stays indexed, just unmirrored
                        service.mirror(link, dataset)
                        mirrored_bytes += link.size_bytes
                        report.datasets_mirrored += 1
            report.bytes_fetched += self.network.log.bytes_total - baseline
        service.clock += 1
        return report


class GenomeSearchService:
    """The third-party search system over crawled metadata."""

    #: Features precomputed on every mirrored dataset (section 4.5:
    #: "possibly pre-computing some features of their regions").
    PRECOMPUTED_FEATURES = ("region_count", "mean_length", "covered_positions")

    def __init__(self) -> None:
        self.links: dict = {}       # url -> PublishedLink
        self.mirrors: dict = {}     # url -> Dataset
        self.last_crawled: dict = {}
        self.clock = 0
        self._documents: dict = {}  # url -> token list
        from repro.search.regions import RegionSearch

        self._features = RegionSearch()
        self._feature_urls: dict = {}  # (dataset_name, sample_id) -> url

    # -- indexing ------------------------------------------------------------------

    def index_link(self, link: PublishedLink) -> None:
        """(Re)index one published link's metadata."""
        self.links[link.url] = link
        tokens = []
        for attribute, value in link.metadata_pairs:
            tokens.extend(tokenize_value(attribute))
            tokens.extend(tokenize_value(value))
        tokens.extend(tokenize_value(link.dataset_name))
        self._documents[link.url] = tokens
        # Drop a stale mirror: it no longer matches the published version.
        self.mirrors.pop(link.url, None)

    def mirror(self, link: PublishedLink, dataset: Dataset) -> None:
        """Store a local copy of a dataset and precompute region features.

        Mirrored data is what feature-based search can rank without
        touching the owning host.
        """
        self.mirrors[link.url] = dataset
        self._features.add_dataset(dataset,
                                   precompute=self.PRECOMPUTED_FEATURES)
        for sample in dataset:
            self._feature_urls[(dataset.name, sample.id)] = link.url

    def feature_search(self, targets: dict, limit: int = 10) -> list:
        """Rank mirrored samples by region features (no host contact).

        Returns ``[{url, dataset, sample_id}, ...]`` best-first; only
        features in :attr:`PRECOMPUTED_FEATURES` are answerable from the
        mirror index -- anything else raises, telling the caller to
        download and compute locally.
        """
        unknown = set(targets) - set(self.PRECOMPUTED_FEATURES)
        if unknown:
            raise SearchError(
                f"features {sorted(unknown)} are not precomputed on mirrors; "
                f"download the datasets and compute locally"
            )
        ranked = self._features.search(targets, limit=limit)
        return [
            {
                "url": self._feature_urls[key],
                "dataset": key[0],
                "sample_id": key[1],
            }
            for key in ranked
        ]

    def mirrored_bytes(self) -> int:
        """Bytes of mirrored data currently held."""
        return sum(
            self.links[url].size_bytes for url in self.mirrors
        )

    # -- querying -------------------------------------------------------------------

    def search(self, query: str, limit: int = 10) -> list:
        """Ranked results with snippets and mirror indication.

        Each result is ``{url, host, dataset, score, mirrored, snippet}``
        -- "result snippets, with an indication of the presence of each
        dataset in the repository" (the paper's words).
        """
        ranked = tf_idf_scores(tokenize_value(query), self._documents)
        results = []
        for url, score in ranked[:limit]:
            link = self.links[url]
            query_tokens = set(tokenize_value(query))
            matching_pairs = [
                f"{a}={v}"
                for a, v in link.metadata_pairs
                if (set(tokenize_value(a)) | set(tokenize_value(v)))
                & query_tokens
            ]
            results.append(
                {
                    "url": url,
                    "host": link.host,
                    "dataset": link.dataset_name,
                    "score": score,
                    "mirrored": url in self.mirrors,
                    "snippet": "; ".join(matching_pairs[:3]),
                }
            )
        return results

    def locate(self, dataset_name: str) -> list:
        """Hosts publishing a dataset of this name (for async download)."""
        return sorted(
            link.host
            for link in self.links.values()
            if link.dataset_name == dataset_name
        )

    # -- health metrics ----------------------------------------------------------------

    def coverage(self, hosts: list) -> float:
        """Fraction of all published public links currently indexed."""
        published = 0
        indexed = 0
        for host in hosts:
            for link, __, public in host._published.values():
                if not public:
                    continue
                published += 1
                known = self.links.get(link.url)
                if known is not None:
                    indexed += 1
        return indexed / published if published else 1.0

    def freshness(self, hosts: list) -> float:
        """Fraction of indexed links whose version is current."""
        current = total = 0
        for host in hosts:
            for link, __, public in host._published.values():
                if not public:
                    continue
                known = self.links.get(link.url)
                if known is None:
                    continue
                total += 1
                if known.version == link.version:
                    current += 1
        return current / total if total else 1.0
