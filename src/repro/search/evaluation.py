"""Retrieval evaluation: "classical measures of precision and recall"
(paper, section 4.5)."""

from __future__ import annotations


def precision_recall(retrieved: list, relevant: set) -> dict:
    """Precision/recall/F1 of a retrieved list against a relevant set."""
    retrieved_set = set(retrieved)
    true_positives = len(retrieved_set & relevant)
    precision = true_positives / len(retrieved_set) if retrieved_set else 0.0
    recall = true_positives / len(relevant) if relevant else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def average_precision(ranked: list, relevant: set) -> float:
    """Mean of precision@k at each relevant hit (order-sensitive)."""
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for rank, key in enumerate(ranked, start=1):
        if key in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)


def precision_at_k(ranked: list, relevant: set, k: int) -> float:
    """Precision among the first *k* results."""
    if k <= 0:
        return 0.0
    top = ranked[:k]
    return sum(1 for key in top if key in relevant) / k
