"""Metadata search: keyword, free-text and ontology-expanded (section 4.5).

"Search methods should locate relevant samples within very large bodies,
using classical measures of precision and recall; keyword-based search or
free text querying should be supported."  Three modes over a
:class:`~repro.repository.index.MetadataIndex`:

* **keyword** -- boolean AND over exact tokens;
* **free text** -- TF-IDF ranking of samples as token documents;
* **ontology** -- free text expanded with ontology descendants, so
  "cancer" retrieves HeLa-S3 samples (experiment E10 quantifies the
  recall this buys).
"""

from __future__ import annotations

from repro.gdm import Dataset
from repro.ontology import Ontology, builtin_ontology, expand_query_terms
from repro.repository.index import MetadataIndex, tokenize_value
from repro.search.ranking import tf_idf_scores


class MetadataSearch:
    """Search service over the metadata of registered datasets."""

    def __init__(self, ontology: Ontology | None = None) -> None:
        self.index = MetadataIndex()
        self.ontology = ontology or builtin_ontology()
        self._documents: dict = {}  # key -> token list

    def add_dataset(self, dataset: Dataset) -> None:
        """Index a dataset's samples for all search modes."""
        self.index.add_dataset(dataset)
        for sample in dataset:
            tokens = []
            for attribute, value in sample.meta:
                tokens.extend(tokenize_value(attribute))
                tokens.extend(tokenize_value(value))
            self._documents[(dataset.name, sample.id)] = tokens

    def __len__(self) -> int:
        return len(self._documents)

    # -- modes --------------------------------------------------------------------

    def keyword_search(self, *keywords: str) -> list:
        """Samples whose metadata contains *every* keyword (AND semantics).

        Returns sorted (dataset, sample_id) keys.
        """
        if not keywords:
            return []
        result: set | None = None
        for keyword in keywords:
            hits = self.index.lookup_token(keyword)
            result = hits if result is None else result & hits
        return sorted(result or ())

    def free_text_search(self, query: str, limit: int | None = None) -> list:
        """TF-IDF-ranked samples for a free-text query."""
        tokens = tokenize_value(query)
        ranked = [key for key, __ in tf_idf_scores(tokens, self._documents)]
        return ranked[:limit] if limit is not None else ranked

    def ontology_search(self, query: str, limit: int | None = None) -> list:
        """Free-text search with ontology expansion.

        The query's concepts are expanded to all their descendants'
        labels, and the union of per-label TF-IDF rankings is merged by
        best score.
        """
        expanded_terms = expand_query_terms(query, self.ontology)
        expansion_tokens = list(tokenize_value(query))
        for term_id in expanded_terms:
            term = self.ontology.term(term_id)
            for label in term.labels():
                expansion_tokens.extend(tokenize_value(label))
        ranked = [
            key for key, __ in tf_idf_scores(expansion_tokens, self._documents)
        ]
        return ranked[:limit] if limit is not None else ranked

    # -- snippets -------------------------------------------------------------------

    def snippet(self, key: tuple, query: str, max_pairs: int = 3) -> str:
        """A result snippet: the metadata pairs matching the query first."""
        meta = self.index.metadata_of(key)
        query_tokens = set(tokenize_value(query))
        matching = []
        other = []
        for attribute, value in meta:
            tokens = set(tokenize_value(attribute)) | set(tokenize_value(value))
            (matching if tokens & query_tokens else other).append(
                f"{attribute}={value}"
            )
        chosen = (matching + other)[:max_pairs]
        return f"{key[0]}[{key[1]}]: " + "; ".join(chosen)
