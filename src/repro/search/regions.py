"""Feature-based region search (paper, section 4.5).

"For some regions ... it is possible to define a priori the typical
features, store them as attributes, and then use indexing; but in general
features should be computed.  We envision general search mechanisms where
the user selects interesting regions, then provides information about the
features of interest, then those features are computed, and finally
regions are ordered based on their computed features."

:class:`RegionSearch` implements both routes: a **feature cache** of
precomputed per-sample features, and a **compute-then-rank** loop that
evaluates requested features on demand (and caches them), interleaving
search and feature evaluation exactly as the paper envisions.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SearchError
from repro.gdm import Dataset, Sample

#: The built-in feature library: name -> fn(sample) -> float.
BUILTIN_FEATURES: dict = {
    "region_count": lambda sample: float(len(sample)),
    "mean_length": lambda sample: (
        sum(r.length for r in sample.regions) / len(sample)
        if len(sample)
        else 0.0
    ),
    "covered_positions": lambda sample: float(sample.covered_positions()),
    "max_length": lambda sample: float(
        max((r.length for r in sample.regions), default=0)
    ),
    "chromosome_count": lambda sample: float(len(sample.chromosomes())),
}


def _score_feature(sample_value: float, target: float) -> float:
    """Closeness of a feature value to the target, in (0, 1]."""
    scale = max(abs(target), 1.0)
    return 1.0 / (1.0 + abs(sample_value - target) / scale)


class RegionSearch:
    """Feature-computed, ranked retrieval of samples/regions."""

    def __init__(self, features: dict | None = None) -> None:
        self.features = dict(BUILTIN_FEATURES)
        if features:
            self.features.update(features)
        self._samples: dict = {}       # key -> Sample
        self._cache: dict = {}         # (key, feature) -> value
        self.computations = 0          # feature evaluations performed

    def register_feature(self, name: str, fn: Callable[[Sample], float]) -> None:
        """Add a user-defined feature."""
        self.features[name] = fn

    def add_dataset(self, dataset: Dataset, precompute: tuple = ()) -> None:
        """Register samples; optionally precompute (index) some features."""
        for sample in dataset:
            key = (dataset.name, sample.id)
            self._samples[key] = sample
            for feature in precompute:
                self._feature_value(key, feature)

    def __len__(self) -> int:
        return len(self._samples)

    def _feature_value(self, key: tuple, feature: str) -> float:
        if (key, feature) in self._cache:
            return self._cache[(key, feature)]
        try:
            fn = self.features[feature]
        except KeyError:
            raise SearchError(
                f"unknown feature {feature!r}; known: {sorted(self.features)}"
            ) from None
        value = float(fn(self._samples[key]))
        self._cache[(key, feature)] = value
        self.computations += 1
        return value

    def search(
        self,
        targets: dict,
        limit: int | None = None,
        candidates: list | None = None,
    ) -> list:
        """Rank samples by closeness to the target feature values.

        Parameters
        ----------
        targets:
            ``{feature_name: desired_value}``; the score is the mean
            per-feature closeness.
        limit:
            Return at most this many results.
        candidates:
            Restrict the search to these keys (e.g. a metadata-search
            result) -- this is the "search and feature evaluation have to
            intertwine" loop: features are computed only for candidates.
        """
        if not targets:
            raise SearchError("feature search needs at least one target")
        keys = candidates if candidates is not None else sorted(self._samples)
        scored = []
        for key in keys:
            if key not in self._samples:
                continue
            score = sum(
                _score_feature(self._feature_value(key, feature), target)
                for feature, target in targets.items()
            ) / len(targets)
            scored.append((key, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        results = [key for key, __ in scored]
        return results[:limit] if limit is not None else results

    def rank_regions(
        self,
        dataset: Dataset,
        feature_fn: Callable,
        top: int | None = None,
        descending: bool = True,
    ) -> list:
        """Rank individual *regions* by a computed feature.

        The per-region side of section 4.5's vision ("regions are ordered
        based on their computed features and presented to the user").
        Returns ``(sample_id, region, value)`` triples best-first.
        """
        scored = []
        for sample in dataset:
            for region in sample.regions:
                scored.append((sample.id, region, float(feature_fn(region))))
        scored.sort(key=lambda item: -item[2] if descending else item[2])
        return scored[:top] if top is not None else scored

    def cache_stats(self) -> dict:
        """Cache size and computation count (index-vs-compute ablation)."""
        return {
            "cached_values": len(self._cache),
            "computations": self.computations,
            "samples": len(self._samples),
        }
