"""Search methods and the Internet of Genomes (paper, section 4.5).

Metadata search (keyword / free text / ontology-expanded), feature-based
region search with the compute-then-rank loop, retrieval evaluation, and
the publish/crawl/index/search simulation of the Internet of Genomes.
"""

from repro.search.evaluation import (
    average_precision,
    precision_at_k,
    precision_recall,
)
from repro.search.iog import (
    CrawlReport,
    Crawler,
    GenomeHost,
    GenomeSearchService,
    HostOutcome,
    PublishedLink,
)
from repro.search.metadata import MetadataSearch
from repro.search.ranking import cosine_similarity, tf_idf_scores
from repro.search.regions import BUILTIN_FEATURES, RegionSearch

__all__ = [
    "BUILTIN_FEATURES",
    "CrawlReport",
    "Crawler",
    "GenomeHost",
    "GenomeSearchService",
    "HostOutcome",
    "MetadataSearch",
    "PublishedLink",
    "RegionSearch",
    "average_precision",
    "cosine_similarity",
    "precision_at_k",
    "precision_recall",
    "tf_idf_scores",
]
