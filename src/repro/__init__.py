"""repro: a full reproduction of "Data Management for Next Generation
Genomic Computing" (Ceri et al., EDBT 2016).

The package implements the paper's Genomic Data Model (GDM) and GenoMetric
Query Language (GMQL), the substrates they depend on (interval algebra,
format mediation, execution engines, an NGS pipeline simulator) and the
vision systems of section 4 (genome spaces and gene networks, ontologies,
repositories, federation, search and the Internet of Genomes).

Quickstart::

    from repro import gdm, gmql
    from repro.simulate import encode

    repo = encode.EncodeRepository.generate(seed=7, n_samples=40)
    result = gmql.run(
        '''
        PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
        PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
        RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
        MATERIALIZE RESULT;
        ''',
        datasets={"ANNOTATIONS": repo.annotations, "ENCODE": repo.encode},
    )["RESULT"]
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
