"""Command-line interface: run GMQL over on-disk datasets.

The CLI is the thin end of the paper's "simple interfaces" vision: GMQL
programs are short texts, datasets are directories in the GMQL repository
layout (see :mod:`repro.formats.meta`), and results come back as the same
kind of directory.

Subcommands::

    python -m repro run QUERY.gmql --source ENCODE=./encode_dir \
        --engine auto --out ./results [--stats] [--trace] [--workers N] \
        [--chaos SPEC]
    python -m repro check QUERY.gmql [--source NAME=DIR] [--strict] \
        [--effects] [--format json|sarif]
    python -m repro check --bench-scenarios --strict
    python -m repro explain QUERY.gmql
    python -m repro explain QUERY.gmql --analyze --source ENCODE=./encode_dir
    python -m repro bench --scale smoke --out benchmarks/BENCH_pr10.json
    python -m repro serve --source ENCODE=./encode_dir --port 8765 \
        --engine auto [--max-concurrency N] [--tenant-quota NAME=SPEC]
    python -m repro info DATASET_DIR
    python -m repro convert input.narrowPeak output.bed
    python -m repro formats

Exit codes distinguish failure families (documented in ``repro --help``):
0 success, 1 execution error, 2 GMQL syntax error, 3 GMQL semantic
error (``repro check`` findings, compile-time rejection).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import GmqlCompileError, GmqlSyntaxError, ReproError

#: Process exit codes; each failure family gets its own so scripts and
#: CI gates can tell a bad query from a bad run.
EXIT_EXECUTION = 1
EXIT_SYNTAX = 2
EXIT_SEMANTIC = 3

_EXIT_CODE_HELP = """\
exit codes:
  0   success
  1   execution error (I/O, engine, federation)
  2   GMQL syntax error
  3   GMQL semantic error (compile-time rejection, `check` findings)
"""


def _parse_source(text: str) -> tuple:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"sources are NAME=DIRECTORY, got {text!r}"
        )
    name, __, directory = text.partition("=")
    return (name, directory)


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for shtab-style tooling/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GDM/GMQL genomic data management "
                    "(EDBT 2016 reproduction)",
        epilog=_EXIT_CODE_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_cmd = commands.add_parser("run", help="execute a GMQL program")
    run_cmd.add_argument("program", help="path to the GMQL text, or '-' for stdin")
    run_cmd.add_argument(
        "--source", action="append", default=[], type=_parse_source,
        metavar="NAME=DIR", help="bind a source dataset directory",
    )
    run_cmd.add_argument("--engine", default="naive",
                         help="execution backend "
                              "(naive/columnar/parallel/sharded/auto)")
    run_cmd.add_argument("--out", default=None,
                         help="directory to materialise results into")
    run_cmd.add_argument("--no-optimize", action="store_true",
                         help="skip the logical optimizer")
    run_cmd.add_argument("--stats", action="store_true",
                         help="print per-operator engine statistics")
    run_cmd.add_argument("--trace", action="store_true",
                         help="print the execution span trace")
    run_cmd.add_argument("--workers", type=_positive_int, default=None,
                         metavar="N",
                         help="worker processes for parallel kernels "
                              "(default: REPRO_WORKERS or CPU-based)")
    run_cmd.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="arm deterministic fault injection for this run, e.g. "
             "'seed=7;transient@repository.load:*?times=1' "
             "(see docs/RESILIENCE.md for the spec language)",
    )
    run_cmd.add_argument(
        "--federate", type=_positive_int, default=None, metavar="N",
        help="execute over a local cluster of N worker node processes: "
             "sources are sharded by chromosome group across the nodes, "
             "each node runs the columnar kernels over its shards, and "
             "the partial results are streamed back and merged "
             "byte-identically to a single-node run",
    )
    run_cmd.add_argument(
        "--shards", type=_positive_int, default=None, metavar="K",
        help="with --federate: cap the plan at K chromosome shard "
             "groups (default: one group per chromosome)",
    )
    run_cmd.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="persistent columnar store root: blocks are served from "
             "memory-mapped segments when present and persisted "
             "(synchronously) after a build otherwise; results are "
             "cached on disk beside it (default: REPRO_STORE_DIR)",
    )

    check_cmd = commands.add_parser(
        "check",
        help="statically analyze a GMQL program: schema/type inference "
             "plus lint rules; exits 3 on findings, without executing",
    )
    check_cmd.add_argument(
        "program", nargs="?", default=None,
        help="path to the GMQL text, or '-' for stdin",
    )
    check_cmd.add_argument(
        "--source", action="append", default=[], type=_parse_source,
        metavar="NAME=DIR",
        help="bind a source dataset directory; sharpens the analysis "
             "from open-world to exact schemas",
    )
    check_cmd.add_argument(
        "--strict", action="store_true",
        help="treat warnings as errors (nonzero exit on any finding)",
    )
    check_cmd.add_argument(
        "--effects", action="store_true",
        help="also emit the GQL120-124 effect diagnostics: shardability, "
             "merge exactness, cache safety, cardinality bounds",
    )
    check_cmd.add_argument(
        "--format", default="text", choices=("text", "json", "sarif"),
        help="diagnostic output format (default: text with caret frames; "
             "sarif emits a SARIF 2.1.0 document for code-scanning upload)",
    )
    check_cmd.add_argument(
        "--rules", action="store_true",
        help="list the rule catalogue (codes and descriptions) and exit",
    )
    check_cmd.add_argument(
        "--bench-scenarios", action="store_true",
        help="check every benchmark-embedded scenario program instead of "
             "a program file (the CI gate over repro.bench.PROGRAMS)",
    )

    explain_cmd = commands.add_parser(
        "explain",
        help="show the (optimized) plan of a program; with --analyze, "
             "execute it and annotate the physical plan with actuals",
    )
    explain_cmd.add_argument("program")
    explain_cmd.add_argument("--no-optimize", action="store_true")
    explain_cmd.add_argument(
        "--analyze", action="store_true",
        help="execute the program and print the physical plan with "
             "chosen backend, estimated vs actual rows and per-node time",
    )
    explain_cmd.add_argument(
        "--source", action="append", default=[], type=_parse_source,
        metavar="NAME=DIR",
        help="bind a source dataset directory (required with --analyze)",
    )
    explain_cmd.add_argument("--engine", default="auto",
                             help="backend for --analyze "
                                  "(naive/columnar/parallel/auto)")
    explain_cmd.add_argument("--workers", type=_positive_int, default=None,
                             metavar="N",
                             help="worker processes for parallel kernels")
    explain_cmd.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="persistent columnar store root for --analyze runs "
             "(default: REPRO_STORE_DIR)",
    )

    bench_cmd = commands.add_parser(
        "bench",
        help="run the section-2 MAP/JOIN/COVER benchmark matrix across "
             "engines and write a BENCH JSON document",
    )
    bench_cmd.add_argument(
        "--out", default="benchmarks/BENCH_pr10.json",
        help="output JSON path (default: benchmarks/BENCH_pr10.json)",
    )
    bench_cmd.add_argument(
        "--scale", default="smoke",
        choices=("tiny", "smoke", "medium", "full"),
        help="data size (default: smoke; medium exercises the "
             "JOIN/MAP kernels and shared-memory fan-out)",
    )
    bench_cmd.add_argument(
        "--scenarios", default=None, metavar="NAMES",
        help="comma-separated scenario subset "
             "(map,map_avg,map_max,join,join_md1,join_up,cover,"
             "flat_summit,histogram)",
    )
    bench_cmd.add_argument(
        "--engines", default=None, metavar="NAMES",
        help="comma-separated variant subset (naive,columnar-nostore,"
             "columnar,auto,parallel,parallel-pickle,store-persisted,"
             "sharded)",
    )
    bench_cmd.add_argument(
        "--variant", default=None, metavar="NAMES",
        help="alias for --engines (the sharded cluster variant is "
             "usually selected this way)",
    )
    bench_cmd.add_argument(
        "--nodes", default="1,2,4", metavar="COUNTS",
        help="comma-separated cluster sizes for the sharded variant "
             "(default: 1,2,4)",
    )
    bench_cmd.add_argument(
        "--repeat", type=_positive_int, default=3, metavar="N",
        help="runs per variant; the first is cold, the rest warm "
             "(default: 3)",
    )
    bench_cmd.add_argument(
        "--cold-repeat", type=_positive_int, default=1, metavar="N",
        help="independent cold runs per variant (fresh sources, cleared "
             "caches); the minimum is reported, steadying cold ratios "
             "against scheduler noise (default: 1)",
    )
    bench_cmd.add_argument(
        "--bin-size", type=_positive_int, default=None, metavar="BP",
        help="zone-map bin size in base pairs "
             "(default: REPRO_BIN_SIZE or the store default)",
    )
    bench_cmd.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="worker processes for the parallel variant",
    )
    bench_cmd.add_argument("--seed", type=_positive_int, default=42,
                           help="data generation seed (default: 42)")
    bench_cmd.add_argument(
        "--clients", type=_positive_int, default=None, metavar="N",
        help="also run the concurrent-clients serving scenario with N "
             "client threads against a warm in-process query server, "
             "compared to one cold `repro run` subprocess per query",
    )
    bench_cmd.add_argument(
        "--client-requests", type=_positive_int, default=6, metavar="M",
        help="requests issued by each serving-bench client (default: 6)",
    )
    bench_cmd.add_argument(
        "--serve-engine", default="auto",
        help="backend the serving scenario's server runs (default: auto)",
    )

    serve_cmd = commands.add_parser(
        "serve",
        help="start a resident HTTP/JSON query server over warm state: "
             "datasets, store blocks, compiled plans and worker pools "
             "load once and serve concurrent queries (see docs/SERVING.md)",
    )
    serve_cmd.add_argument(
        "--source", action="append", default=[], type=_parse_source,
        metavar="NAME=DIR", required=True,
        help="bind a source dataset directory (repeatable)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="listen address (default: 127.0.0.1)")
    serve_cmd.add_argument(
        "--port", type=int, default=8765,
        help="listen port; 0 binds an ephemeral port, printed on startup "
             "(default: 8765)",
    )
    serve_cmd.add_argument("--engine", default="auto",
                           help="backend each scheduler slot runs "
                                "(naive/columnar/parallel/auto)")
    serve_cmd.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="worker processes in the shared pool "
             "(default: REPRO_WORKERS or CPU-based)",
    )
    serve_cmd.add_argument(
        "--max-concurrency", type=_positive_int, default=4, metavar="N",
        help="queries executing at once (backend slots; default: 4)",
    )
    serve_cmd.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="persistent columnar store root: blocks and disk-level "
             "result-cache entries survive server restarts "
             "(default: REPRO_STORE_DIR)",
    )
    serve_cmd.add_argument(
        "--bin-size", type=_positive_int, default=None, metavar="BP",
        help="zone-map bin size forwarded to every query context",
    )
    serve_cmd.add_argument(
        "--no-result-cache", action="store_true",
        help="disable the process-wide plan-fingerprint result cache",
    )
    serve_cmd.add_argument(
        "--default-quota", default=None, metavar="SPEC",
        help="quota for tenants without their own, e.g. "
             "'concurrent=4,rate=120,window=60,deadline=30'",
    )
    serve_cmd.add_argument(
        "--tenant-quota", action="append", default=[], metavar="NAME=SPEC",
        help="per-tenant quota override (repeatable), e.g. "
             "'smith-lab=concurrent=8,deadline=120'",
    )

    info_cmd = commands.add_parser("info", help="summarise a dataset directory")
    info_cmd.add_argument("directory")

    convert_cmd = commands.add_parser(
        "convert", help="convert a region file between registered formats"
    )
    convert_cmd.add_argument("source")
    convert_cmd.add_argument("destination")

    commands.add_parser("formats", help="list registered file formats")
    return parser


def _read_program(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _load_sources(pairs: list, injector=None) -> dict:
    from repro.formats import read_dataset

    sources = {}
    for name, directory in pairs:
        if injector is not None:
            from repro.resilience import (
                RetryPolicy,
                SimulatedClock,
                call_with_retry,
            )
            import random

            def load(name=name, directory=directory):
                injector.fire(f"repository.load:{name}")
                return read_dataset(directory, name)

            sources[name] = call_with_retry(
                load, RetryPolicy(), clock=SimulatedClock(),
                rng=random.Random(injector.seed),
            )
        else:
            sources[name] = read_dataset(directory, name)
    return sources


def _command_run(args) -> int:
    injector = None
    if args.chaos:
        from repro.resilience import FaultInjector, arm

        injector = arm(FaultInjector.from_spec(args.chaos))
    try:
        return _run_with_chaos(args, injector)
    finally:
        if injector is not None:
            from repro.resilience import disarm

            disarm()


def _run_with_chaos(args, injector) -> int:
    from repro.engine.context import ExecutionContext
    from repro.engine.dispatch import get_backend
    from repro.formats import write_dataset
    from repro.gmql.lang import Interpreter, compile_program, optimize

    from repro.store.persist import set_store_root

    if args.store_dir:
        # Synchronous persistence: a CLI process is short-lived, so a
        # background persist thread could die mid-write (the atomic
        # rename makes that harmless, but the work would be wasted).
        set_store_root(args.store_dir, sync=True)
    program = _read_program(args.program)
    sources = _load_sources(args.source, injector)
    # Compiling against the sources runs the semantic analyzer with
    # exact schemas: invalid programs are rejected (exit 3) before any
    # operator executes.
    compiled = compile_program(program, datasets=sources)
    if args.federate:
        try:
            return _run_sharded_cluster(args, program, sources, injector)
        finally:
            if args.store_dir:
                set_store_root(None)
    if not args.no_optimize:
        compiled = optimize(compiled)
    backend = get_backend(args.engine)
    context = ExecutionContext(workers=args.workers, result_cache=True)
    # Each `repro run` starts cold in memory: the cache still
    # deduplicates repeated subplans within this program, but one
    # invocation never inherits (or pollutes) the process-wide cache of
    # an embedding process.  With --store-dir, the disk level persists
    # across invocations -- that survival is the point.
    from repro.store.cache import reset_result_cache

    reset_result_cache()
    try:
        results = Interpreter(backend, sources, context=context).run_program(
            compiled
        )
    finally:
        # Release worker pools deterministically (not via __del__).
        backend.close()
        if args.store_dir:
            set_store_root(None)
    for name, dataset in results.items():
        summary = dataset.summary()
        print(
            f"{name}: {summary['samples']} sample(s), "
            f"{summary['regions']} region(s), schema {summary['schema']}"
        )
        if args.out:
            directory = os.path.join(args.out, name)
            write_dataset(dataset, directory)
            print(f"  materialised to {directory}")
    if args.stats:
        print()
        print("engine statistics:")
        for operator in sorted(backend.stats.operator_seconds):
            seconds = backend.stats.operator_seconds[operator]
            calls = backend.stats.operator_calls[operator]
            print(f"  {operator:<12} {calls:>3} call(s)  {seconds * 1000:8.1f} ms")
        print(f"  total kernel time: "
              f"{backend.stats.total_seconds() * 1000:.1f} ms")
        by_backend = backend.stats.by_backend()
        if len(by_backend) > 1:
            print("  time by backend:")
            for name in sorted(by_backend):
                print(f"    {name:<10} {by_backend[name] * 1000:8.1f} ms")
        if args.store_dir:
            totals = {"blocks_built": 0, "blocks_mapped": 0,
                      "blocks_evicted": 0, "resident_bytes": 0}
            for dataset in sources.values():
                for key, value in dataset.store_stats().items():
                    totals[key] += value
            print(
                f"  persistent store: {totals['blocks_mapped']} block "
                f"set(s) mapped, {totals['blocks_built']} built, "
                f"{totals['blocks_evicted']} evicted, "
                f"{totals['resident_bytes']:,} resident bytes"
            )
    if args.trace:
        print()
        print("execution trace:")
        print(context.tracer.render())
    if injector is not None:
        print(f"chaos: {injector.summary()}")
    return 0


def _run_sharded_cluster(args, program, sources, injector) -> int:
    """``repro run --federate N``: sharded execution over worker nodes."""
    from repro.engine.context import ExecutionContext
    from repro.federation import LocalCluster
    from repro.formats import write_dataset

    context = ExecutionContext(workers=args.workers)
    with LocalCluster(
        sources,
        nodes=args.federate,
        store_root=args.store_dir,
        context=context,
    ) as cluster:
        outcome = cluster.run(program, max_shards=args.shards)
    print(outcome.report())
    for name in sorted(outcome.datasets or {}):
        dataset = outcome.datasets[name]
        summary = dataset.summary()
        print(
            f"{name}: {summary['samples']} sample(s), "
            f"{summary['regions']} region(s), schema {summary['schema']}"
        )
        if args.out:
            directory = os.path.join(args.out, name)
            write_dataset(dataset, directory)
            print(f"  materialised to {directory}")
    if args.stats:
        print()
        print("cluster statistics:")
        counters = context.metrics
        print(
            f"  shards: placed={counters.counter('federation.shards_placed')} "
            f"skipped={counters.counter('federation.shards_skipped')}"
        )
        print(
            f"  bytes: streamed={counters.counter('federation.bytes_streamed')} "
            f"mapped={counters.counter('federation.bytes_mapped')}"
        )
        for node in sorted(outcome.node_seconds):
            print(f"  {node:<12} {outcome.node_seconds[node] * 1000:8.1f} ms")
        print(f"  merge: {outcome.merge_seconds * 1000:.1f} ms")
        print(f"  cluster critical path: "
              f"{outcome.cluster_seconds() * 1000:.1f} ms")
    if injector is not None:
        if injector.injected:
            print(f"chaos: {injector.summary()}")
        else:
            # Worker node processes inherit the armed injector at fork
            # and fire faults in their own address space; the client's
            # record stays empty even when faults landed remotely, so
            # an empty summary here must not read as "nothing fired".
            print(
                "chaos: armed (faults inject inside worker node "
                "processes; see the outcome line for their effect)"
            )
    return 0


def _command_explain(args) -> int:
    from repro.gmql.lang import compile_program, optimize

    program = _read_program(args.program)
    if args.analyze:
        from repro.engine.context import ExecutionContext
        from repro.gmql.lang import explain_analyze
        from repro.store.persist import set_store_root

        if args.store_dir:
            set_store_root(args.store_dir, sync=True)
        sources = _load_sources(args.source)
        context = ExecutionContext(workers=args.workers, result_cache=True)
        # Cold cache per invocation, mirroring `repro run`: the counters
        # below then describe this program alone.
        from repro.store.cache import reset_result_cache

        reset_result_cache()
        try:
            __, physical, context = explain_analyze(
                program,
                sources,
                engine=args.engine,
                optimized=not args.no_optimize,
                context=context,
            )
        finally:
            if args.store_dir:
                set_store_root(None)
        print(physical.explain(analyze=True))
        print(
            "store: partitions_pruned="
            f"{context.metrics.counter('store.partitions_pruned')}"
        )
        print(
            "result cache: "
            f"hits={context.metrics.counter('result_cache.hits')} "
            f"misses={context.metrics.counter('result_cache.misses')}"
        )
        shards_placed = context.metrics.counter("federation.shards_placed")
        shards_skipped = context.metrics.counter("federation.shards_skipped")
        bytes_streamed = context.metrics.counter("federation.bytes_streamed")
        if shards_placed or shards_skipped or bytes_streamed:
            print(
                f"federation: shards_placed={shards_placed} "
                f"shards_skipped={shards_skipped} "
                f"bytes_streamed={bytes_streamed}"
            )
        # The total line stays last: scripts tail it.
        print(f"total: {context.tracer.total_seconds() * 1000:.2f} ms")
        return 0
    sources = _load_sources(args.source)
    compiled = compile_program(program, datasets=sources or None)
    if not args.no_optimize:
        compiled = optimize(compiled)
    # Effect lines (`!! local exact-int cacheable ...`) ride along on
    # every explained node; source summaries sharpen the bounds.
    from repro.gmql.lang.effects import annotate_effects

    summaries = {name: ds.summary() for name, ds in sources.items()}
    annotate_effects(compiled, summaries=summaries or None)
    print(compiled.explain())
    return 0


def _sarif_document(entries: list) -> dict:
    """Minimal SARIF 2.1.0 document over ``(artifact, Analysis)`` pairs,
    shaped for GitHub code-scanning upload."""
    from repro.gmql.lang.semantics import RULES

    results = []
    seen_rules: dict = {}
    for artifact, analysis in entries:
        uri = "stdin" if artifact == "-" else artifact
        for diag in analysis.diagnostics:
            seen_rules[diag.code] = RULES.get(diag.code, "")
            location = {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                }
            }
            if diag.span is not None:
                location["physicalLocation"]["region"] = {
                    "startLine": diag.span.line,
                    "startColumn": diag.span.column,
                }
            results.append(
                {
                    "ruleId": diag.code,
                    "level": (
                        "error" if diag.severity == "error" else "warning"
                    ),
                    "message": {"text": diag.message},
                    "locations": [location],
                }
            )
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": [
                            {
                                "id": code,
                                "shortDescription": {
                                    "text": seen_rules[code]
                                },
                            }
                            for code in sorted(seen_rules)
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def _command_check(args) -> int:
    import json

    from repro.gmql.lang.semantics import RULES, analyze_program

    if args.rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    if args.bench_scenarios:
        from repro.bench import PROGRAMS

        entries = [
            (f"bench:{name}", analyze_program(text, effects=args.effects))
            for name, text in sorted(PROGRAMS.items())
        ]
    else:
        if args.program is None:
            print(
                "error: a program path is required "
                "(or --rules / --bench-scenarios)",
                file=sys.stderr,
            )
            return EXIT_EXECUTION
        program = _read_program(args.program)
        sources = _load_sources(args.source)
        try:
            analysis = analyze_program(
                program, datasets=sources or None, effects=args.effects
            )
        except GmqlSyntaxError as exc:
            if args.format == "json":
                print(json.dumps(
                    {"ok": False, "syntax_error": str(exc)}, indent=2
                ))
            else:
                print(f"syntax error: {exc}", file=sys.stderr)
            return EXIT_SYNTAX
        entries = [(args.program, analysis)]
    errors = [d for __, a in entries for d in a.errors()]
    warnings = [d for __, a in entries for d in a.warnings()]
    failed = bool(errors) or (args.strict and bool(warnings))
    if args.format == "json":
        print(json.dumps(
            {
                "ok": not failed,
                "errors": len(errors),
                "warnings": len(warnings),
                "diagnostics": [
                    d.to_dict() for __, a in entries for d in a.diagnostics
                ],
            },
            indent=2,
        ))
    elif args.format == "sarif":
        print(json.dumps(_sarif_document(entries), indent=2))
    else:
        any_findings = False
        for artifact, analysis in entries:
            if not analysis.diagnostics:
                continue
            if len(entries) > 1:
                print(f"-- {artifact} --")
            print(analysis.render())
            any_findings = True
        if any_findings:
            print(f"{len(errors)} error(s), {len(warnings)} warning(s)")
        else:
            print("ok: no findings")
    return EXIT_SEMANTIC if failed else 0


def _command_bench(args) -> int:
    from repro.bench import render_summary, run_bench, write_bench

    scenarios = (
        tuple(name.strip() for name in args.scenarios.split(",") if name.strip())
        if args.scenarios
        else None
    )
    selected = args.engines or args.variant
    variants = (
        tuple(name.strip() for name in selected.split(",") if name.strip())
        if selected
        else None
    )
    nodes = tuple(
        int(count.strip()) for count in args.nodes.split(",") if count.strip()
    )
    document = run_bench(
        scale=args.scale,
        scenarios=scenarios,
        variants=variants,
        repeat=args.repeat,
        bin_size=args.bin_size,
        workers=args.workers,
        seed=args.seed,
        cold_repeat=args.cold_repeat,
        nodes=nodes,
        clients=args.clients,
        client_requests=args.client_requests,
        serve_engine=args.serve_engine,
    )
    write_bench(document, args.out)
    print(render_summary(document))
    print(f"\nwritten to {args.out}")
    return 0


def _command_serve(args) -> int:
    """``repro serve``: run the resident query server until interrupted."""
    import asyncio
    import signal

    from repro.serve.admission import AdmissionController, TenantQuota
    from repro.serve.server import QueryServer
    from repro.serve.state import WarmState
    from repro.store.persist import set_store_root

    default_quota = (
        TenantQuota.parse(args.default_quota) if args.default_quota else None
    )
    quotas = {}
    for entry in args.tenant_quota:
        name, sep, spec = entry.partition("=")
        if not sep:
            print(f"error: --tenant-quota takes NAME=SPEC, got {entry!r}",
                  file=sys.stderr)
            return EXIT_EXECUTION
        quotas[name.strip()] = TenantQuota.parse(spec)
    if args.store_dir:
        # Async persistence would also work for a long-lived server, but
        # synchronous keeps restart-warm guarantees simple: once a block
        # was served, its segment is on disk.
        set_store_root(args.store_dir, sync=True)
    try:
        sources = _load_sources(args.source)
        state = WarmState(
            sources,
            engine=args.engine,
            workers=args.workers,
            store_dir=args.store_dir,
            result_cache_enabled=not args.no_result_cache,
            bin_size=args.bin_size,
        )
        server = QueryServer(
            state,
            admission=AdmissionController(
                default_quota=default_quota, quotas=quotas
            ),
            host=args.host,
            port=args.port,
            max_concurrency=args.max_concurrency,
        )

        async def main() -> None:
            loop = asyncio.get_running_loop()
            stop = asyncio.Event()
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop.set)
            await server.start()
            print(
                f"serving {len(sources)} dataset(s) on "
                f"http://{args.host}:{server.port} "
                f"(engine {args.engine}, warm in "
                f"{state.warm_seconds:.2f}s)",
                flush=True,
            )
            await stop.wait()
            print("shutting down...", flush=True)
            await server.stop()

        asyncio.run(main())
    finally:
        if args.store_dir:
            set_store_root(None)
    return 0


def _command_info(args) -> int:
    from repro.formats import read_dataset
    from repro.gdm import render_tables

    dataset = read_dataset(args.directory)
    summary = dataset.summary()
    print(f"dataset:        {summary['name']}")
    print(f"samples:        {summary['samples']}")
    print(f"regions:        {summary['regions']}")
    print(f"metadata pairs: {summary['metadata_pairs']}")
    print(f"schema:         {summary['schema']}")
    print(f"chromosomes:    {list(dataset.chromosomes())}")
    print(f"est. size:      {summary['size_bytes']:,} bytes")
    print()
    print(render_tables(dataset, max_rows=10))
    return 0


def _command_convert(args) -> int:
    from repro.formats import format_for_path

    source_format = format_for_path(args.source)
    destination_format = format_for_path(args.destination)
    with open(args.source) as handle:
        regions = source_format.parse(handle)
    # Remap values through the destination schema by attribute name.
    src_schema = source_format.schema()
    dst_schema = destination_format.schema()
    converted = []
    for region in regions:
        values = []
        for definition in dst_schema:
            if definition.name in src_schema:
                values.append(
                    region.values[src_schema.index_of(definition.name)]
                )
            else:
                values.append(None)
        converted.append(region.with_values(tuple(values)))
    with open(args.destination, "w") as handle:
        handle.write(destination_format.serialize(converted))
    print(f"converted {len(converted)} region(s): "
          f"{source_format.name} -> {destination_format.name}")
    return 0


def _command_formats(args) -> int:
    from repro.formats import available_formats, format_named

    for name in available_formats():
        fmt = format_named(name)
        extensions = ", ".join(fmt.extensions) or "-"
        print(f"{name:<12} {extensions}")
    return 0


_HANDLERS = {
    "run": _command_run,
    "check": _command_check,
    "explain": _command_explain,
    "bench": _command_bench,
    "serve": _command_serve,
    "info": _command_info,
    "convert": _command_convert,
    "formats": _command_formats,
}


def main(argv: list | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except GmqlSyntaxError as exc:
        print(f"syntax error: {exc}", file=sys.stderr)
        return EXIT_SYNTAX
    except GmqlCompileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SEMANTIC
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_EXECUTION
    except BrokenPipeError:
        # Output truncated by a downstream pager/head: not an error.
        return 0
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_EXECUTION


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
