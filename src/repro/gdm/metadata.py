"""Sample metadata: the second of the two GDM entities.

Metadata are "arbitrary, semi-structured attribute-value pairs, extended into
triples to include the sample identifier" (paper, section 2).  Inside the
library a sample's metadata are held as a multi-valued mapping from attribute
name to an ordered tuple of values; the triple form is recovered whenever the
sample id is known (see :meth:`Metadata.triples`).

Attributes are multi-valued because real repositories routinely attach, e.g.,
several ``treatment`` values to one sample, and because GMQL's metadata
union semantics require it.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import GdmError


class Metadata:
    """Immutable multi-valued attribute/value mapping for one sample.

    Values are kept as strings or numbers; comparisons in metadata
    predicates try numeric comparison first and fall back to string
    comparison (see :mod:`repro.gmql.predicates`).

    >>> meta = Metadata({"antibody": "CTCF", "cell": ("HeLa", "K562")})
    >>> meta.first("antibody")
    'CTCF'
    >>> sorted(meta.values("cell"))
    ['HeLa', 'K562']
    """

    __slots__ = ("_pairs",)

    def __init__(self, mapping: Mapping[str, Any] | None = None) -> None:
        pairs: dict = {}
        if mapping:
            for attribute, value in mapping.items():
                if isinstance(value, (tuple, list, set, frozenset)):
                    values = tuple(value)
                else:
                    values = (value,)
                if not attribute:
                    raise GdmError("empty metadata attribute name")
                if not values:
                    continue  # an attribute with no values is absent
                pairs[attribute] = values
        self._pairs = pairs

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple]) -> "Metadata":
        """Build metadata from an iterable of ``(attribute, value)`` pairs."""
        accumulated: dict = {}
        for attribute, value in pairs:
            accumulated.setdefault(attribute, []).append(value)
        return cls({k: tuple(v) for k, v in accumulated.items()})

    # -- read access ----------------------------------------------------------

    def attributes(self) -> tuple:
        """Attribute names, sorted for deterministic iteration."""
        return tuple(sorted(self._pairs))

    def values(self, attribute: str) -> tuple:
        """All values of *attribute* (empty tuple when absent)."""
        return self._pairs.get(attribute, ())

    def first(self, attribute: str, default: Any = None) -> Any:
        """First value of *attribute*, or *default* when absent."""
        values = self._pairs.get(attribute)
        return values[0] if values else default

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._pairs

    def __len__(self) -> int:
        """Number of (attribute, value) pairs, i.e. triples minus the id."""
        return sum(len(v) for v in self._pairs.values())

    def __iter__(self) -> Iterator[tuple]:
        """Iterate ``(attribute, value)`` pairs in sorted attribute order."""
        for attribute in sorted(self._pairs):
            for value in self._pairs[attribute]:
                yield (attribute, value)

    def triples(self, sample_id: int) -> Iterator[tuple]:
        """Iterate the GDM ``(id, attribute, value)`` triples."""
        for attribute, value in self:
            yield (sample_id, attribute, value)

    def to_dict(self) -> dict:
        """Plain ``{attribute: (values...)}`` dictionary copy."""
        return dict(self._pairs)

    # -- derivation -----------------------------------------------------------

    def with_pairs(self, pairs: Iterable[tuple]) -> "Metadata":
        """Copy with extra ``(attribute, value)`` pairs appended."""
        return Metadata.from_pairs(list(self) + list(pairs))

    def without(self, attributes: Iterable[str]) -> "Metadata":
        """Copy with the given attributes removed."""
        dropped = set(attributes)
        return Metadata(
            {k: v for k, v in self._pairs.items() if k not in dropped}
        )

    def project(self, attributes: Iterable[str]) -> "Metadata":
        """Copy keeping only the given attributes."""
        kept = set(attributes)
        return Metadata({k: v for k, v in self._pairs.items() if k in kept})

    def prefixed(self, prefix: str) -> "Metadata":
        """Copy with every attribute name prefixed (binary-operator semantics).

        GMQL binary operators keep both operands' metadata, disambiguated
        with prefixes such as ``left.`` and ``right.``.
        """
        return Metadata({f"{prefix}{k}": v for k, v in self._pairs.items()})

    def union(self, other: "Metadata") -> "Metadata":
        """Multiset union of two metadata sets (duplicate pairs collapse)."""
        merged: dict = {}
        for source in (self._pairs, other._pairs):
            for attribute, values in source.items():
                existing = merged.setdefault(attribute, [])
                for value in values:
                    if value not in existing:
                        existing.append(value)
        return Metadata({k: tuple(v) for k, v in merged.items()})

    def matches(self, attribute: str, value: Any) -> bool:
        """True when *attribute* carries *value* (string-insensitive compare)."""
        for candidate in self._pairs.get(attribute, ()):
            if candidate == value or str(candidate) == str(value):
                return True
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Metadata):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, v) for k, v in self)))

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self)
        return f"Metadata({body})"
