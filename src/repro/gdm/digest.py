"""Content digests over materialised query results.

One digest definition shared by every consumer that makes a
byte-identity claim: the ``repro bench`` harness compares engine
variants with it, the sharded cluster bench compares merged partials
against single-node runs, and the query server returns it with every
response so clients (and the CI smoke gate) can hold served results to
the single-shot CLI bar without shipping the rows twice.
"""

from __future__ import annotations

import hashlib


def dataset_digest(dataset) -> str:
    """Order-sensitive digest of one dataset's region rows."""
    h = hashlib.blake2b(digest_size=16)
    for row in dataset.region_rows():
        h.update(repr(row).encode())
    return h.hexdigest()


def results_digest(results: dict) -> str:
    """Engine-independent digest of every materialised dataset's rows.

    *results* is the ``{output name: Dataset}`` mapping an interpreter
    run produces; names participate so renaming an output changes the
    digest even when the rows do not.
    """
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(results):
        h.update(name.encode())
        for row in results[name].region_rows():
            h.update(repr(row).encode())
    return h.hexdigest()
