"""Text rendering of GDM datasets: tables and ASCII genome-browser tracks.

The paper's Figure 2 shows a dataset as two tables (regions and metadata
triples); :func:`render_tables` reproduces that layout.  :func:`render_tracks`
draws samples as character tracks along a chromosome window, standing in for
the genome-browser views of Figures 3 and 4.
"""

from __future__ import annotations

from typing import Iterable

from repro.gdm.dataset import Dataset


def _format_table(headers: Iterable[str], rows: Iterable[tuple]) -> str:
    headers = list(headers)
    str_rows = [[("" if cell is None else str(cell)) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_tables(dataset: Dataset, max_rows: int = 50) -> str:
    """Render a dataset in the two-table layout of the paper's Figure 2.

    The upper table lists region rows (fixed attributes then the variable
    schema), the lower table lists metadata triples.  At most *max_rows*
    rows are shown per table.
    """
    region_headers = ["id", "chr", "left", "right", "strand"] + list(
        dataset.schema.names
    )
    region_rows = list(dataset.region_rows())
    truncated_regions = len(region_rows) - max_rows
    meta_rows = list(dataset.metadata_triples())
    truncated_meta = len(meta_rows) - max_rows

    parts = [f"Dataset {dataset.name!r} -- {len(dataset)} sample(s)"]
    parts.append("")
    parts.append("Regions:")
    parts.append(_format_table(region_headers, region_rows[:max_rows]))
    if truncated_regions > 0:
        parts.append(f"... {truncated_regions} more region row(s)")
    parts.append("")
    parts.append("Metadata:")
    parts.append(_format_table(["id", "attribute", "value"], meta_rows[:max_rows]))
    if truncated_meta > 0:
        parts.append(f"... {truncated_meta} more metadata triple(s)")
    return "\n".join(parts)


def render_tracks(
    dataset: Dataset,
    chrom: str,
    window_left: int,
    window_right: int,
    width: int = 80,
) -> str:
    """Render samples as ASCII tracks over a chromosome window.

    Each sample becomes one line; a region covering a position paints it
    with ``=`` (forward strand), ``-`` (reverse) or ``#`` (unstranded).
    Used by the CTCF-loop and gene-network examples to visualise query
    inputs the way the paper's Figure 3 does.
    """
    if window_right <= window_left:
        raise ValueError("empty rendering window")
    span = window_right - window_left
    scale = width / span
    glyphs = {"+": "=", "-": "-", "*": "#"}

    lines = [f"{chrom}:{window_left:,}-{window_right:,} ({span:,} bp)"]
    ruler = [" "] * width
    for tick in range(0, width, 10):
        ruler[tick] = "|"
    lines.append("".join(ruler))
    for sample in dataset:
        track = [" "] * width
        for region in sample.regions:
            if region.chrom != chrom:
                continue
            if region.right <= window_left or region.left >= window_right:
                continue
            start = max(0, int((region.left - window_left) * scale))
            stop = min(width, max(start + 1, int((region.right - window_left) * scale)))
            for col in range(start, stop):
                track[col] = glyphs[region.strand]
        label = str(sample.meta.first("name", f"sample {sample.id}"))
        lines.append("".join(track) + f"  {label}")
    return "\n".join(lines)
